//! The benchmark registry types.

use dpf_core::{CommPattern, Ctx, LocalAccess, ProblemClass, Verify};

/// The three benchmark groups of the suite (paper §1.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Group {
    /// Library functions for communication (paper §2).
    Communication,
    /// Library functions for linear algebra (paper §3).
    LinearAlgebra,
    /// Applications-oriented codes (paper §4).
    Application,
}

impl std::fmt::Display for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Group::Communication => "communication",
            Group::LinearAlgebra => "linear algebra",
            Group::Application => "application",
        })
    }
}

/// The code-version axis of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Version {
    /// "Typical user code" — idiomatic data-parallel spelling.
    Basic,
    /// Hand-optimized source in the same language.
    Optimized,
    /// Source-language library routines.
    Library,
    /// CMSSL (scientific library) calls.
    Cmssl,
    /// Node-level C/DPEAC kernels.
    CDpeac,
}

impl Version {
    /// Table 1 column order.
    pub const ALL: [Version; 5] = [
        Version::Basic,
        Version::Optimized,
        Version::Library,
        Version::Cmssl,
        Version::CDpeac,
    ];

    /// Table 1 column header.
    pub fn name(self) -> &'static str {
        match self {
            Version::Basic => "basic",
            Version::Optimized => "optimized",
            Version::Library => "library",
            Version::Cmssl => "CMSSL",
            Version::CDpeac => "C/DPEAC",
        }
    }
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Problem-size tier for the harness (each benchmark maps these to its
/// own parameters).
///
/// The legacy three-tier axis (`Small`/`Medium`/`Large`) is joined by
/// [`Size::Class`], the NAS-style parameterized axis: every runner
/// derives its shapes from the [`ProblemClass`] descriptor's scaling
/// rules, anchored so class S is parameter-for-parameter identical to
/// `Small`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Size {
    /// Seconds-scale CI runs and pattern classification.
    Small,
    /// The default evaluation size.
    Medium,
    /// Benchmark-grade.
    Large,
    /// Parameterized problem class (S = `Small`, then W/A/B/C scale up).
    Class(ProblemClass),
}

impl Size {
    /// Stable lower-case label (class sizes keep their letter).
    pub fn label(self) -> &'static str {
        match self {
            Size::Small => "small",
            Size::Medium => "medium",
            Size::Large => "large",
            Size::Class(c) => c.name(),
        }
    }
}

impl std::fmt::Display for Size {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Size {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "small" => Ok(Size::Small),
            "medium" => Ok(Size::Medium),
            "large" => Ok(Size::Large),
            other => other.parse::<ProblemClass>().map(Size::Class).map_err(|_| {
                format!("unknown size {s:?} (want small|medium|large or a class S|W|A|B|C)")
            }),
        }
    }
}

/// What a benchmark runner reports back (the harness adds the timing and
/// instrumentation snapshot around it).
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Human-readable problem description, e.g. `"n=1024, dtype=d"`.
    pub problem: String,
    /// Correctness outcome.
    pub verify: Verify,
    /// Problem size in data points (for FLOPs-per-point, §1.5 attr. 5).
    pub points: u64,
    /// Main-loop iterations executed (for per-iteration normalization).
    pub iterations: u64,
}

/// A runnable code version.
pub struct Variant {
    /// Version label.
    pub version: Version,
    /// The runner.
    pub run: fn(&Ctx, Size) -> RunOutput,
}

/// One registry entry: static characterization (the paper's tables) plus
/// the runnable variants.
pub struct BenchEntry {
    /// Benchmark name as in Table 1.
    pub name: &'static str,
    /// Which group it belongs to.
    pub group: Group,
    /// Table 1 row: the versions the original suite shipped.
    pub paper_versions: &'static [Version],
    /// Data representation / layout strings (Tables 2 and 5).
    pub layouts: &'static [&'static str],
    /// Local-memory-access class (Tables 4 and 6).
    pub local_access: LocalAccess,
    /// Dominating communication patterns (Tables 3 and 7).
    pub patterns: &'static [CommPattern],
    /// Implementation technique notes (Table 8), `(pattern, technique)`.
    pub techniques: &'static [(&'static str, &'static str)],
    /// The paper's FLOP-count formula (Table 4/6), as text.
    pub flops_formula: &'static str,
    /// The paper's memory formula, as text.
    pub memory_formula: &'static str,
    /// The paper's per-iteration communication, as text.
    pub comm_formula: &'static str,
    /// Runnable versions in this reproduction (Basic always first).
    pub variants: &'static [Variant],
}

impl BenchEntry {
    /// The basic-version runner.
    pub fn run_basic(&self, ctx: &Ctx, size: Size) -> RunOutput {
        (self.variants[0].run)(ctx, size)
    }

    /// Find a runnable variant by version.
    pub fn variant(&self, version: Version) -> Option<&Variant> {
        self.variants.iter().find(|v| v.version == version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_order_matches_table1_columns() {
        let names: Vec<&str> = Version::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(
            names,
            vec!["basic", "optimized", "library", "CMSSL", "C/DPEAC"]
        );
    }

    #[test]
    fn sizes_parse_and_label_round_trip() {
        for s in ["small", "medium", "large", "S", "W", "A", "B", "C"] {
            let size: Size = s.parse().unwrap();
            assert_eq!(size.label(), s, "label must round-trip");
            assert_eq!(size.to_string(), s);
        }
        assert_eq!("s".parse::<Size>().unwrap(), Size::Class(ProblemClass::S));
        assert!("huge".parse::<Size>().is_err());
    }

    #[test]
    fn groups_display_like_the_paper_sections() {
        assert_eq!(Group::Communication.to_string(), "communication");
        assert_eq!(Group::LinearAlgebra.to_string(), "linear algebra");
        assert_eq!(Group::Application.to_string(), "application");
    }
}
