//! The atomic artifact writer: the one sanctioned path for writing
//! campaign artifacts (`campaign.json`, `tables.md`, `tables.json`) and
//! any other machine-read file the suite produces.
//!
//! A bare `fs::write` is not crash-consistent: a process killed mid-write
//! leaves a truncated file under the *final* name, and the next
//! `dpf tables --campaign` run reads garbage. [`write_atomic`] instead
//! writes a same-directory temp file, fsyncs it, renames it over the
//! target (rename within one directory is atomic on POSIX filesystems)
//! and fsyncs the directory so the rename itself is durable. Readers
//! therefore observe either the old complete file or the new complete
//! file — never a torn one.
//!
//! The `atomic-artifact` lint rule (crates/dpf-lint) flags direct
//! `fs::write`/`File::create` calls outside this module so artifact
//! paths cannot quietly regress to the torn-write shape.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::Path;

use dpf_core::DpfError;

/// Map an I/O failure on `path` into the typed artifact error class.
fn io_err(path: &Path, op: &str, e: std::io::Error) -> DpfError {
    DpfError::Artifact {
        path: path.display().to_string(),
        what: format!("{op}: {e}"),
    }
}

/// Durably replace `path` with `content`: write `.{name}.tmp` in the
/// same directory, fsync it, rename it over `path`, then fsync the
/// directory. After this returns `Ok`, a crash at any later point leaves
/// the complete new content; a crash at any earlier point leaves the
/// previous state of `path` untouched (the temp file may linger, and is
/// overwritten by the next attempt).
pub fn write_atomic(path: &Path, content: &str) -> Result<(), DpfError> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let name = path.file_name().ok_or_else(|| {
        io_err(
            path,
            "resolve file name",
            std::io::Error::other("no file name"),
        )
    })?;
    let tmp = match dir {
        Some(d) => d.join(format!(".{}.tmp", name.to_string_lossy())),
        None => Path::new(&format!(".{}.tmp", name.to_string_lossy())).to_path_buf(),
    };
    {
        let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, "create temp", e))?;
        f.write_all(content.as_bytes())
            .map_err(|e| io_err(&tmp, "write", e))?;
        // Data must be on disk *before* the rename publishes the name;
        // otherwise the rename can survive a crash that the bytes do not.
        f.sync_all().map_err(|e| io_err(&tmp, "fsync", e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, "rename temp over target", e))?;
    sync_dir(dir.unwrap_or_else(|| Path::new(".")));
    Ok(())
}

/// Fsync a directory so a just-performed rename inside it is durable.
/// Best-effort: not every platform or filesystem supports opening a
/// directory for sync (the rename is still atomic without it).
fn sync_dir(dir: &Path) {
    #[cfg(unix)]
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    #[cfg(not(unix))]
    let _ = dir;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        // Unit tests don't get CARGO_TARGET_TMPDIR; scratch under the
        // workspace target dir so nothing is written outside the repo.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-tmp")
            .join(name);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces_content() {
        let dir = scratch("artifact-basic");
        let path = dir.join("a.json");
        write_atomic(&path, "first\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first\n");
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second\n");
        // The temp name never survives a successful write.
        assert!(!dir.join(".a.json.tmp").exists());
    }

    #[test]
    fn missing_directory_is_a_typed_artifact_error() {
        let dir = scratch("artifact-missing");
        let path = dir.join("no-such-subdir").join("a.json");
        let err = write_atomic(&path, "x").unwrap_err();
        assert!(
            matches!(err, DpfError::Artifact { .. }),
            "expected Artifact error, got {err}"
        );
        assert!(err.to_string().contains("artifact I/O error"));
    }
}
