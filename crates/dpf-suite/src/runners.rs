//! Size-tiered runner functions for every benchmark (the glue between the
//! registry and the implementation crates).

use dpf_array::PAR;
use dpf_core::{Ctx, DpfError, Verify};

use crate::benchmark::{RunOutput, Size};

/// Restore budget for checkpoint-aware runners (per run, not per window).
const MAX_RESTORES: usize = 32;

/// A checkpoint-aware runner exhausted its restore budget (or hit an
/// unrecoverable error): report a failing verification instead of
/// unwinding, so the suite sweep keeps going.
fn recovery_failed(problem: String, e: DpfError, points: u64) -> RunOutput {
    RunOutput {
        problem: format!("{problem}: {e}"),
        verify: Verify::check("checkpoint recovery", f64::INFINITY, 0.0),
        points,
        iterations: 0,
    }
}

// ---------------------------------------------------------------- linalg

/// `matrix-vector`, basic version (`SUM(SPREAD(x) * A, dim)`).
pub fn matvec_basic(ctx: &Ctx, size: Size) -> RunOutput {
    matvec_impl(ctx, size, false)
}

/// `matrix-vector`, library version (blocked dot-product kernel).
pub fn matvec_library(ctx: &Ctx, size: Size) -> RunOutput {
    matvec_impl(ctx, size, true)
}

fn matvec_impl(ctx: &Ctx, size: Size, library: bool) -> RunOutput {
    use dpf_linalg::matvec;
    let (ni, n, m) = match size {
        Size::Small => (2, 16, 16),
        Size::Medium => (4, 128, 128),
        Size::Large => (4, 512, 512),
        Size::Class(c) => (c.linear(2), c.pow2(16), c.pow2(16)),
    };
    let (a, x) = matvec::workload(ctx, matvec::MvLayout::Instances, ni, n, m);
    let y = if library {
        matvec::matvec_library(ctx, &a, &x)
    } else {
        matvec::matvec_basic(ctx, &a, &x)
    };
    RunOutput {
        problem: format!("i={ni}, n={n}, m={m}, d"),
        verify: matvec::verify(&a, &x, &y, 1e-10),
        points: (ni * n * m) as u64,
        iterations: 1,
    }
}

/// `lu` — factor + solve, timed as separate phases.
pub fn lu(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_linalg::lu;
    let (n, r) = match size {
        Size::Small => (16, 2),
        Size::Medium => (96, 4),
        Size::Large => (256, 8),
        Size::Class(c) => (c.linear(16), c.linear(2)),
    };
    let (a, b) = lu::workload(ctx, n, r);
    let f = ctx.phase("lu:factor", || lu::lu_factor(ctx, &a));
    let x = ctx.phase("lu:solve", || lu::lu_solve(ctx, &f, &b));
    RunOutput {
        problem: format!("n={n}, r={r}, d"),
        verify: lu::verify(&a, &b, &x, 1e-7 * n as f64),
        points: (n * n) as u64,
        iterations: n as u64,
    }
}

/// `lu`, CMSSL (blocked) version.
pub fn lu_blocked(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_linalg::lu;
    let (n, r, nb) = match size {
        Size::Small => (16, 2, 4),
        Size::Medium => (96, 4, 16),
        Size::Large => (256, 8, 32),
        Size::Class(c) => (c.linear(16), c.linear(2), c.linear(4)),
    };
    let (a, b) = lu::workload(ctx, n, r);
    let f = ctx.phase("lu:factor", || lu::lu_factor_blocked(ctx, &a, nb));
    let x = ctx.phase("lu:solve", || lu::lu_solve(ctx, &f, &b));
    RunOutput {
        problem: format!("n={n}, r={r}, nb={nb}, d (blocked)"),
        verify: lu::verify(&a, &b, &x, 1e-7 * n as f64),
        points: (n * n) as u64,
        iterations: n as u64,
    }
}

/// `qr` — factor + solve phases.
pub fn qr(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_linalg::qr;
    let (m, n, r) = match size {
        Size::Small => (24, 12, 2),
        Size::Medium => (128, 64, 4),
        Size::Large => (384, 192, 4),
        Size::Class(c) => (c.linear(24), c.linear(12), c.linear(2)),
    };
    let (a, b, x_true) = qr::workload(ctx, m, n, r);
    let f = ctx.phase("qr:factor", || qr::qr_factor(ctx, &a));
    let x = ctx.phase("qr:solve", || qr::qr_solve(ctx, &f, &b));
    RunOutput {
        problem: format!("m={m}, n={n}, r={r}, d"),
        verify: qr::verify(&x, &x_true, 1e-6),
        points: (m * n) as u64,
        iterations: n as u64,
    }
}

/// `gauss-jordan`.
pub fn gauss_jordan(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_linalg::gauss_jordan as gj;
    let n = match size {
        Size::Small => 16,
        Size::Medium => 96,
        Size::Large => 256,
        Size::Class(c) => c.linear(16),
    };
    let (a, b) = gj::workload(ctx, n);
    let x = gj::gauss_jordan_solve(ctx, &a, &b);
    RunOutput {
        problem: format!("n={n}, d"),
        verify: gj::verify(&a, &b, &x, 1e-8 * n as f64),
        points: (n * n) as u64,
        iterations: n as u64,
    }
}

/// `pcr`, variant (1): a single 1-D system.
pub fn pcr_1d(ctx: &Ctx, size: Size) -> RunOutput {
    pcr_impl(ctx, size, 1)
}

/// `pcr`, variant (2): batched 2-D systems.
pub fn pcr_2d(ctx: &Ctx, size: Size) -> RunOutput {
    pcr_impl(ctx, size, 2)
}

/// `pcr`, variant (3): batched 3-D systems.
pub fn pcr_3d(ctx: &Ctx, size: Size) -> RunOutput {
    pcr_impl(ctx, size, 3)
}

fn pcr_impl(ctx: &Ctx, size: Size, rank: usize) -> RunOutput {
    use dpf_linalg::pcr;
    let shape: Vec<usize> = match (rank, size) {
        (1, Size::Small) => vec![64],
        (1, Size::Medium) => vec![4096],
        (1, Size::Large) => vec![1 << 18],
        (2, Size::Small) => vec![4, 32],
        (2, Size::Medium) => vec![16, 512],
        (2, Size::Large) => vec![64, 4096],
        (3, Size::Small) => vec![2, 4, 16],
        (3, Size::Medium) => vec![8, 16, 64],
        (3, Size::Large) => vec![16, 64, 256],
        // Class axis: only the solved (last) dimension must stay a power
        // of two; batch dimensions grow linearly to bound memory.
        (1, Size::Class(c)) => vec![c.pow2(64)],
        (2, Size::Class(c)) => vec![c.linear(4), c.pow2(32)],
        (3, Size::Class(c)) => vec![c.linear(2), c.linear(4), c.pow2(16)],
        _ => unreachable!(),
    };
    let axes = vec![PAR; shape.len()];
    let sys = pcr::workload(ctx, &shape, &axes);
    let x = pcr::pcr_solve(ctx, &sys);
    let n = shape[shape.len() - 1];
    RunOutput {
        problem: format!("shape={shape:?}, d"),
        verify: pcr::verify(&sys, &x, 1e-8),
        points: sys.diag.len() as u64,
        iterations: (usize::BITS - (n - 1).leading_zeros()) as u64,
    }
}

/// `conj-grad`.
pub fn conj_grad(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_linalg::conj_grad as cg;
    let n = match size {
        Size::Small => 128,
        Size::Medium => 4096,
        Size::Large => 1 << 16,
        Size::Class(c) => c.pow2(128),
    };
    let sys = cg::workload(ctx, n);
    let every = ctx.faults.checkpoint_every();
    if every > 0 {
        return match cg::cg_solve_checkpointed(ctx, &sys, 1e-11, 10 * n, every, MAX_RESTORES) {
            Ok((out, stats)) => RunOutput {
                problem: format!("n={n}, d (ck={every}, restores={})", stats.restores),
                verify: cg::verify(&sys, &out.x, 1e-8),
                points: n as u64,
                iterations: out.iterations as u64,
            },
            Err(e) => recovery_failed(format!("n={n}, d"), e, n as u64),
        };
    }
    let out = cg::cg_solve(ctx, &sys, 1e-11, 10 * n);
    RunOutput {
        problem: format!("n={n}, d"),
        verify: cg::verify(&sys, &out.x, 1e-8),
        points: n as u64,
        iterations: out.iterations as u64,
    }
}

/// `conj-grad`, optimized (fused-kernel) version.
pub fn conj_grad_optimized(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_linalg::conj_grad as cg;
    let n = match size {
        Size::Small => 128,
        Size::Medium => 4096,
        Size::Large => 1 << 16,
        Size::Class(c) => c.pow2(128),
    };
    let sys = cg::workload(ctx, n);
    let out = cg::cg_solve_optimized(ctx, &sys, 1e-11, 10 * n);
    RunOutput {
        problem: format!("n={n}, d (fused)"),
        verify: cg::verify(&sys, &out.x, 1e-8),
        points: n as u64,
        iterations: out.iterations as u64,
    }
}

/// `jacobi`.
pub fn jacobi(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_linalg::jacobi as jc;
    let n = match size {
        Size::Small => 8,
        Size::Medium => 24,
        Size::Large => 48,
        Size::Class(c) => c.linear(8),
    };
    let a = jc::workload(ctx, n);
    let every = ctx.faults.checkpoint_every();
    if every > 0 {
        return match jc::jacobi_eigen_checkpointed(ctx, &a, 1e-11, 40, every, MAX_RESTORES) {
            Ok((out, stats)) => RunOutput {
                problem: format!("n={n}, d (ck={every}, restores={})", stats.restores),
                verify: jc::verify(&a, &out, 1e-7),
                points: (n * n) as u64,
                iterations: out.iterations as u64,
            },
            Err(e) => recovery_failed(format!("n={n}, d"), e, (n * n) as u64),
        };
    }
    let out = jc::jacobi_eigen(ctx, &a, 1e-11, 40);
    RunOutput {
        problem: format!("n={n}, d"),
        verify: jc::verify(&a, &out, 1e-7),
        points: (n * n) as u64,
        iterations: out.iterations as u64,
    }
}

/// `fft` — 1-D, 2-D and 3-D round trips (Table 4's three rows).
pub fn fft(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_linalg::fft_bench as fb;
    let shapes: [Vec<usize>; 3] = match size {
        Size::Small => [vec![256], vec![16, 16], vec![8, 8, 8]],
        Size::Medium => [vec![1 << 16], vec![256, 256], vec![32, 32, 32]],
        Size::Large => [vec![1 << 20], vec![1024, 1024], vec![64, 64, 64]],
        // Scale the leading axis only: every dimension stays a power of
        // two and the 3-D round trip grows geometrically, not cubed.
        Size::Class(c) => [
            vec![c.pow2(256)],
            vec![c.pow2(16), 16],
            vec![c.pow2(8), 8, 8],
        ],
    };
    let mut worst = Verify::NotApplicable;
    let mut points = 0u64;
    for shape in &shapes {
        let a = fb::workload(ctx, shape);
        points += a.len() as u64;
        let (_, v) = ctx.phase(&format!("fft:{}d", shape.len()), || {
            fb::run_roundtrip(ctx, &a)
        });
        if !v.is_pass() {
            worst = v;
        }
    }
    if matches!(worst, Verify::NotApplicable) {
        worst = Verify::check("fft all round trips", 0.0, 1e-8);
    }
    RunOutput {
        problem: "1-D/2-D/3-D, z".to_string(),
        verify: worst,
        points,
        iterations: 3,
    }
}

// ------------------------------------------------------------------ apps

/// `boson`.
pub fn boson(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::boson as b;
    let p = match size {
        Size::Small => b::Params {
            nt: 4,
            nx: 8,
            sweeps: 3,
            ..Default::default()
        },
        Size::Medium => b::Params::default(),
        Size::Large => b::Params {
            nt: 16,
            nx: 32,
            sweeps: 20,
            ..Default::default()
        },
        Size::Class(c) => b::Params {
            nt: c.pow2(4),
            nx: c.pow2(8),
            sweeps: c.linear(3),
            ..Default::default()
        },
    };
    let (_, verify) = b::run(ctx, &p);
    RunOutput {
        problem: format!("nt={}, nx={}, sweeps={}", p.nt, p.nx, p.sweeps),
        verify,
        points: (p.nt * p.nx * p.nx) as u64,
        iterations: p.sweeps as u64,
    }
}

/// `diff-1D`.
pub fn diff_1d(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::diff_1d as d;
    let p = match size {
        Size::Small => d::Params {
            nx: 64,
            steps: 4,
            ..Default::default()
        },
        Size::Medium => d::Params::default(),
        Size::Large => d::Params {
            nx: 1 << 16,
            steps: 16,
            ..Default::default()
        },
        Size::Class(c) => d::Params {
            nx: c.pow2(64),
            steps: c.linear(4),
            ..Default::default()
        },
    };
    let every = ctx.faults.checkpoint_every();
    if every > 0 {
        return match d::run_checkpointed(ctx, &p, every, MAX_RESTORES) {
            Ok((_, verify, stats)) => RunOutput {
                problem: format!(
                    "nx={}, steps={} (ck={every}, restores={})",
                    p.nx, p.steps, stats.restores
                ),
                verify,
                points: p.nx as u64,
                iterations: p.steps as u64,
            },
            Err(e) => recovery_failed(format!("nx={}, steps={}", p.nx, p.steps), e, p.nx as u64),
        };
    }
    let (_, verify) = d::run(ctx, &p);
    RunOutput {
        problem: format!("nx={}, steps={}", p.nx, p.steps),
        verify,
        points: p.nx as u64,
        iterations: p.steps as u64,
    }
}

/// `diff-2D`.
pub fn diff_2d(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::diff_2d as d;
    let p = match size {
        Size::Small => d::Params {
            nx: 16,
            steps: 3,
            ..Default::default()
        },
        Size::Medium => d::Params::default(),
        Size::Large => d::Params {
            nx: 512,
            steps: 10,
            ..Default::default()
        },
        Size::Class(c) => d::Params {
            nx: c.linear(16),
            steps: c.linear(3),
            ..Default::default()
        },
    };
    let every = ctx.faults.checkpoint_every();
    if every > 0 {
        return match d::run_checkpointed(ctx, &p, every, MAX_RESTORES) {
            Ok((_, verify, stats)) => RunOutput {
                problem: format!(
                    "nx={}, steps={} (ck={every}, restores={})",
                    p.nx, p.steps, stats.restores
                ),
                verify,
                points: (p.nx * p.nx) as u64,
                iterations: p.steps as u64,
            },
            Err(e) => recovery_failed(
                format!("nx={}, steps={}", p.nx, p.steps),
                e,
                (p.nx * p.nx) as u64,
            ),
        };
    }
    let (_, verify) = d::run(ctx, &p);
    RunOutput {
        problem: format!("nx={}, steps={}", p.nx, p.steps),
        verify,
        points: (p.nx * p.nx) as u64,
        iterations: p.steps as u64,
    }
}

/// `diff-3D`.
pub fn diff_3d(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::diff_3d as d;
    let p = match size {
        Size::Small => d::Params {
            n: 8,
            steps: 3,
            ..Default::default()
        },
        Size::Medium => d::Params::default(),
        Size::Large => d::Params {
            n: 96,
            steps: 20,
            ..Default::default()
        },
        Size::Class(c) => d::Params {
            n: c.linear(8),
            steps: c.linear(3),
            ..Default::default()
        },
    };
    let every = ctx.faults.checkpoint_every();
    if every > 0 {
        return match d::run_checkpointed(ctx, &p, every, MAX_RESTORES) {
            Ok((_, verify, stats)) => RunOutput {
                problem: format!(
                    "n={}, steps={} (ck={every}, restores={})",
                    p.n, p.steps, stats.restores
                ),
                verify,
                points: (p.n * p.n * p.n) as u64,
                iterations: p.steps as u64,
            },
            Err(e) => recovery_failed(
                format!("n={}, steps={}", p.n, p.steps),
                e,
                (p.n * p.n * p.n) as u64,
            ),
        };
    }
    let (_, verify) = d::run(ctx, &p);
    RunOutput {
        problem: format!("n={}, steps={}", p.n, p.steps),
        verify,
        points: (p.n * p.n * p.n) as u64,
        iterations: p.steps as u64,
    }
}

/// `diff-3D`, optimized (fused node-level kernel) version.
pub fn diff_3d_optimized(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::diff_3d as d;
    let p = match size {
        Size::Small => d::Params {
            n: 8,
            steps: 3,
            ..Default::default()
        },
        Size::Medium => d::Params::default(),
        Size::Large => d::Params {
            n: 96,
            steps: 20,
            ..Default::default()
        },
        Size::Class(c) => d::Params {
            n: c.linear(8),
            steps: c.linear(3),
            ..Default::default()
        },
    };
    let (_, verify) = d::run_optimized(ctx, &p);
    RunOutput {
        problem: format!("n={}, steps={} (fused)", p.n, p.steps),
        verify,
        points: (p.n * p.n * p.n) as u64,
        iterations: p.steps as u64,
    }
}

/// `ellip-2D`.
pub fn ellip_2d(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::ellip_2d as e;
    let p = match size {
        Size::Small => e::Params {
            n: 16,
            ..Default::default()
        },
        Size::Medium => e::Params::default(),
        Size::Large => e::Params {
            n: 192,
            max_iter: 4000,
            ..Default::default()
        },
        Size::Class(c) => e::Params {
            n: c.linear(16),
            ..Default::default()
        },
    };
    let (_, iters, verify) = e::run(ctx, &p);
    RunOutput {
        problem: format!("n={}", p.n),
        verify,
        points: (p.n * p.n) as u64,
        iterations: iters as u64,
    }
}

/// `fem-3D`.
pub fn fem_3d(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::fem_3d as f;
    let p = match size {
        Size::Small => f::Params {
            nv_side: 4,
            ..Default::default()
        },
        Size::Medium => f::Params::default(),
        Size::Large => f::Params {
            nv_side: 14,
            max_iter: 1500,
            ..Default::default()
        },
        Size::Class(c) => f::Params {
            nv_side: c.linear(4),
            max_iter: c.linear(500),
            ..Default::default()
        },
    };
    let (_, iters, verify) = f::run(ctx, &p);
    RunOutput {
        problem: format!("vertices={}^3", p.nv_side),
        verify,
        points: (p.nv_side.pow(3)) as u64,
        iterations: iters as u64,
    }
}

/// `fermion`.
pub fn fermion(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::fermion as f;
    let p = match size {
        Size::Small => f::Params {
            sites: 16,
            l: 4,
            chain: 2,
        },
        Size::Medium => f::Params::default(),
        Size::Large => f::Params {
            sites: 1024,
            l: 12,
            chain: 8,
        },
        Size::Class(c) => f::Params {
            sites: c.pow2(16),
            l: c.linear(4),
            chain: c.linear(2),
        },
    };
    let (_, verify) = f::run(ctx, &p);
    RunOutput {
        problem: format!("sites={}, l={}, chain={}", p.sites, p.l, p.chain),
        verify,
        points: (p.sites * p.l * p.l) as u64,
        iterations: p.chain as u64,
    }
}

/// `fermion`, optimized (rayon + pre-resolved indirection) version.
pub fn fermion_optimized(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::fermion as f;
    let p = match size {
        Size::Small => f::Params {
            sites: 16,
            l: 4,
            chain: 2,
        },
        Size::Medium => f::Params::default(),
        Size::Large => f::Params {
            sites: 1024,
            l: 12,
            chain: 8,
        },
        Size::Class(c) => f::Params {
            sites: c.pow2(16),
            l: c.linear(4),
            chain: c.linear(2),
        },
    };
    let (_, verify) = f::run_optimized(ctx, &p);
    RunOutput {
        problem: format!("sites={}, l={}, chain={} (par)", p.sites, p.l, p.chain),
        verify,
        points: (p.sites * p.l * p.l) as u64,
        iterations: p.chain as u64,
    }
}

/// `gmo`.
pub fn gmo(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::gmo as g;
    let p = match size {
        Size::Small => g::Params {
            ns: 64,
            ntr: 16,
            t0: 20.0,
            ..Default::default()
        },
        Size::Medium => g::Params::default(),
        Size::Large => g::Params {
            ns: 2048,
            ntr: 512,
            t0: 512.0,
            ..Default::default()
        },
        Size::Class(c) => g::Params {
            ns: c.pow2(64),
            ntr: c.pow2(16),
            t0: c.pow2(20) as f64,
            ..Default::default()
        },
    };
    let (_, verify) = g::run(ctx, &p);
    RunOutput {
        problem: format!("ns={}, ntr={}", p.ns, p.ntr),
        verify,
        points: (p.ns * p.ntr) as u64,
        iterations: 1,
    }
}

/// `ks-spectral`.
pub fn ks_spectral(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::ks_spectral as k;
    let p = match size {
        Size::Small => k::Params {
            ne: 2,
            nx: 32,
            steps: 5,
            ..Default::default()
        },
        Size::Medium => k::Params::default(),
        Size::Large => k::Params {
            ne: 8,
            nx: 512,
            steps: 50,
            ..Default::default()
        },
        Size::Class(c) => k::Params {
            ne: c.linear(2),
            nx: c.pow2(32),
            steps: c.linear(5),
            ..Default::default()
        },
    };
    let (_, verify) = k::run(ctx, &p);
    RunOutput {
        problem: format!("ne={}, nx={}, steps={}", p.ne, p.nx, p.steps),
        verify,
        points: (p.ne * p.nx) as u64,
        iterations: p.steps as u64,
    }
}

/// `md`.
pub fn md(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::md as m;
    let p = match size {
        Size::Small => m::Params {
            side: 2,
            steps: 5,
            ..Default::default()
        },
        Size::Medium => m::Params::default(),
        Size::Large => m::Params {
            side: 6,
            steps: 20,
            ..Default::default()
        },
        Size::Class(c) => m::Params {
            side: c.linear(2),
            steps: c.linear(5),
            ..Default::default()
        },
    };
    let every = ctx.faults.checkpoint_every();
    if every > 0 {
        return match m::run_checkpointed(ctx, &p, every, MAX_RESTORES) {
            Ok((_, verify, stats)) => RunOutput {
                problem: format!(
                    "np={}, steps={} (ck={every}, restores={})",
                    p.side.pow(3),
                    p.steps,
                    stats.restores
                ),
                verify,
                points: p.side.pow(3) as u64,
                iterations: p.steps as u64,
            },
            Err(e) => recovery_failed(
                format!("np={}, steps={}", p.side.pow(3), p.steps),
                e,
                p.side.pow(3) as u64,
            ),
        };
    }
    let (_, verify) = m::run(ctx, &p);
    RunOutput {
        problem: format!("np={}, steps={}", p.side.pow(3), p.steps),
        verify,
        points: p.side.pow(3) as u64,
        iterations: p.steps as u64,
    }
}

/// `mdcell`.
pub fn mdcell(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::mdcell as m;
    let p = match size {
        Size::Small => m::Params {
            nc: 3,
            steps: 2,
            ..Default::default()
        },
        Size::Medium => m::Params::default(),
        Size::Large => m::Params {
            nc: 8,
            cap: 8,
            fill: 3.0,
            steps: 8,
            ..Default::default()
        },
        Size::Class(c) => m::Params {
            nc: c.linear(3),
            steps: c.linear(2),
            ..Default::default()
        },
    };
    let (_, verify) = m::run(ctx, &p);
    RunOutput {
        problem: format!("cells={}^3, cap={}, steps={}", p.nc, p.cap, p.steps),
        verify,
        points: (p.nc.pow(3) * p.cap) as u64,
        iterations: p.steps as u64,
    }
}

/// `n-body`, basic (broadcast) version.
pub fn n_body_broadcast(ctx: &Ctx, size: Size) -> RunOutput {
    n_body_impl(ctx, size, dpf_apps::n_body::Variant::Broadcast)
}

/// `n-body`, optimized (cshift with symmetry) version.
pub fn n_body_symmetry(ctx: &Ctx, size: Size) -> RunOutput {
    n_body_impl(ctx, size, dpf_apps::n_body::Variant::CshiftSymmetry)
}

fn n_body_impl(ctx: &Ctx, size: Size, variant: dpf_apps::n_body::Variant) -> RunOutput {
    use dpf_apps::n_body as nb;
    let n = match size {
        Size::Small => 24,
        Size::Medium => 128,
        Size::Large => 512,
        Size::Class(c) => c.pow2(24),
    };
    let p = nb::Params { n, eps2: 1e-2 };
    let (_, _, verify) = nb::run(ctx, &p, variant);
    RunOutput {
        problem: format!("n={n}, variant={}", variant.name()),
        verify,
        points: n as u64,
        iterations: 1,
    }
}

/// `pic-simple`.
pub fn pic_simple(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::pic_simple as p;
    let pars = match size {
        Size::Small => p::Params {
            np: 128,
            ng: 8,
            steps: 3,
            ..Default::default()
        },
        Size::Medium => p::Params::default(),
        Size::Large => p::Params {
            np: 1 << 14,
            ng: 128,
            steps: 10,
            ..Default::default()
        },
        Size::Class(c) => p::Params {
            np: c.pow2(128),
            ng: c.pow2(8),
            steps: c.linear(3),
            ..Default::default()
        },
    };
    let (_, verify) = p::run(ctx, &pars);
    RunOutput {
        problem: format!("np={}, ng={}, steps={}", pars.np, pars.ng, pars.steps),
        verify,
        points: pars.np as u64,
        iterations: pars.steps as u64,
    }
}

/// `pic-gather-scatter`.
pub fn pic_gather_scatter(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::pic_gather_scatter as p;
    let pars = match size {
        Size::Small => p::Params {
            np: 128,
            ng: 4,
            steps: 2,
        },
        Size::Medium => p::Params::default(),
        Size::Large => p::Params {
            np: 1 << 16,
            ng: 16,
            steps: 8,
        },
        Size::Class(c) => p::Params {
            np: c.pow2(128),
            ng: c.linear(4),
            steps: c.linear(2),
        },
    };
    let (_, verify) = p::run(ctx, &pars);
    RunOutput {
        problem: format!("np={}, ng={}^3, steps={}", pars.np, pars.ng, pars.steps),
        verify,
        points: pars.np as u64,
        iterations: pars.steps as u64,
    }
}

/// `qcd-kernel`.
pub fn qcd_kernel(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::qcd_kernel as q;
    let p = match size {
        Size::Small => q::Params {
            n: 2,
            ..Default::default()
        },
        Size::Medium => q::Params::default(),
        Size::Large => q::Params {
            n: 6,
            max_iter: 400,
            ..Default::default()
        },
        Size::Class(c) => q::Params {
            n: c.linear(2),
            max_iter: c.linear(200),
            ..Default::default()
        },
    };
    let (_, iters, verify) = q::run(ctx, &p);
    RunOutput {
        problem: format!("lattice={}^4, m={}", p.n, p.mass),
        verify,
        points: (p.n.pow(4)) as u64,
        iterations: iters as u64,
    }
}

/// `qmc`.
pub fn qmc(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::qmc as q;
    let p = match size {
        Size::Small => q::Params {
            n_walkers: 512,
            blocks: 12,
            ..Default::default()
        },
        Size::Medium => q::Params::default(),
        Size::Large => q::Params {
            n_walkers: 8192,
            blocks: 60,
            ..Default::default()
        },
        Size::Class(c) => q::Params {
            n_walkers: c.pow2(512),
            blocks: c.linear(12),
            ..Default::default()
        },
    };
    let blocks = p.blocks;
    let walkers = p.n_walkers;
    let (_, verify) = q::run(ctx, &p);
    RunOutput {
        problem: format!("walkers={walkers}, blocks={blocks}"),
        verify,
        points: walkers as u64,
        iterations: blocks as u64,
    }
}

/// `qptransport`.
pub fn qptransport(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::qptransport as q;
    let p = match size {
        Size::Small => q::Params {
            n_src: 8,
            n_dst: 6,
            n_edges: 64,
            iters: 40,
        },
        Size::Medium => q::Params::default(),
        Size::Large => q::Params {
            n_src: 128,
            n_dst: 96,
            n_edges: 1 << 14,
            iters: 120,
        },
        Size::Class(c) => q::Params {
            n_src: c.linear(8),
            n_dst: c.linear(6),
            n_edges: c.pow2(64),
            iters: c.linear(40),
        },
    };
    let iters = p.iters;
    let edges = p.n_edges;
    let (_, verify) = q::run(ctx, &p);
    RunOutput {
        problem: format!("edges={edges}, iters={iters}"),
        verify,
        points: edges as u64,
        iterations: iters as u64,
    }
}

/// `rp`.
pub fn rp(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::rp as r;
    let p = match size {
        Size::Small => r::Params {
            n: 6,
            max_iter: 200,
            ..Default::default()
        },
        Size::Medium => r::Params::default(),
        Size::Large => r::Params {
            n: 32,
            max_iter: 1500,
            ..Default::default()
        },
        Size::Class(c) => r::Params {
            n: c.linear(6),
            max_iter: c.linear(200),
            ..Default::default()
        },
    };
    let (_, iters, verify) = r::run(ctx, &p);
    RunOutput {
        problem: format!("grid={}^3", p.n),
        verify,
        points: (p.n.pow(3)) as u64,
        iterations: iters as u64,
    }
}

/// `step4`.
pub fn step4(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::step4 as s;
    let p = match size {
        Size::Small => s::Params {
            n: 16,
            steps: 3,
            ..Default::default()
        },
        Size::Medium => s::Params::default(),
        Size::Large => s::Params {
            n: 256,
            steps: 30,
            ..Default::default()
        },
        Size::Class(c) => s::Params {
            n: c.pow2(16),
            steps: c.linear(3),
            ..Default::default()
        },
    };
    let (_, verify) = s::run(ctx, &p);
    RunOutput {
        problem: format!("n={}, steps={}", p.n, p.steps),
        verify,
        points: (s::FIELDS * p.n * p.n) as u64,
        iterations: p.steps as u64,
    }
}

/// `step4`, optimized (fused C/DPEAC-style kernel) version.
pub fn step4_optimized(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::step4 as s4;
    let p = match size {
        Size::Small => s4::Params {
            n: 16,
            steps: 3,
            ..Default::default()
        },
        Size::Medium => s4::Params::default(),
        Size::Large => s4::Params {
            n: 256,
            steps: 30,
            ..Default::default()
        },
        Size::Class(c) => s4::Params {
            n: c.pow2(16),
            steps: c.linear(3),
            ..Default::default()
        },
    };
    let (_, verify) = s4::run_optimized(ctx, &p);
    RunOutput {
        problem: format!("n={}, steps={} (fused)", p.n, p.steps),
        verify,
        points: (s4::FIELDS * p.n * p.n) as u64,
        iterations: p.steps as u64,
    }
}

/// `wave-1D`.
pub fn wave_1d(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::wave_1d as w;
    let p = match size {
        Size::Small => w::Params {
            nx: 64,
            steps: 10,
            ..Default::default()
        },
        Size::Medium => w::Params::default(),
        Size::Large => w::Params {
            nx: 1 << 14,
            steps: 100,
            ..Default::default()
        },
        Size::Class(c) => w::Params {
            nx: c.pow2(64),
            steps: c.linear(10),
            ..Default::default()
        },
    };
    let every = ctx.faults.checkpoint_every();
    if every > 0 {
        return match w::run_checkpointed(ctx, &p, every, MAX_RESTORES) {
            Ok((_, verify, stats)) => RunOutput {
                problem: format!(
                    "nx={}, steps={} (ck={every}, restores={})",
                    p.nx, p.steps, stats.restores
                ),
                verify,
                points: p.nx as u64,
                iterations: p.steps as u64,
            },
            Err(e) => recovery_failed(format!("nx={}, steps={}", p.nx, p.steps), e, p.nx as u64),
        };
    }
    let (_, verify) = w::run(ctx, &p);
    RunOutput {
        problem: format!("nx={}, steps={}", p.nx, p.steps),
        verify,
        points: p.nx as u64,
        iterations: p.steps as u64,
    }
}

/// `wave-1D`, optimized (fused flux kernel) version.
pub fn wave_1d_optimized(ctx: &Ctx, size: Size) -> RunOutput {
    use dpf_apps::wave_1d as w;
    let p = match size {
        Size::Small => w::Params {
            nx: 64,
            steps: 10,
            ..Default::default()
        },
        Size::Medium => w::Params::default(),
        Size::Large => w::Params {
            nx: 1 << 14,
            steps: 100,
            ..Default::default()
        },
        Size::Class(c) => w::Params {
            nx: c.pow2(64),
            steps: c.linear(10),
            ..Default::default()
        },
    };
    let mut st = w::workload(ctx, &p);
    for _ in 0..p.steps {
        w::step_optimized(ctx, &p, &mut st);
    }
    // Same d'Alembert check as the basic runner.
    let want = (p.nx as f64 / 4.0 + p.courant * p.steps as f64) % p.nx as f64;
    let peak = st
        .now
        .as_slice()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i as f64)
        .unwrap();
    let mut d = (peak - want).abs();
    d = dpf_core::nan_min(d, p.nx as f64 - d);
    RunOutput {
        problem: format!("nx={}, steps={} (fused)", p.nx, p.steps),
        verify: dpf_core::Verify::check("wave-1D optimized pulse", d, 2.0),
        points: p.nx as u64,
        iterations: p.steps as u64,
    }
}

// ----------------------------------------------------------- re-exported

pub use crate::comm_bench::{run_gather, run_reduction, run_scatter, run_transpose};

#[cfg(test)]
mod tests {
    use super::*;
    use dpf_core::Machine;

    #[test]
    fn every_linalg_runner_verifies_small() {
        #[allow(clippy::type_complexity)]
        let runners: [(&str, fn(&Ctx, Size) -> RunOutput); 9] = [
            ("matvec-basic", matvec_basic),
            ("matvec-library", matvec_library),
            ("lu", lu),
            ("qr", qr),
            ("gauss-jordan", gauss_jordan),
            ("pcr", pcr_1d),
            ("conj-grad", conj_grad),
            ("jacobi", jacobi),
            ("fft", fft),
        ];
        for (name, f) in runners {
            let ctx = Ctx::new(Machine::cm5(8));
            let out = f(&ctx, Size::Small);
            assert!(out.verify.is_pass(), "{name}: {}", out.verify);
            assert!(out.points > 0);
        }
    }

    #[test]
    fn pcr_variants_all_verify() {
        for f in [pcr_1d, pcr_2d, pcr_3d] {
            let ctx = Ctx::new(Machine::cm5(8));
            assert!(f(&ctx, Size::Small).verify.is_pass());
        }
    }

    #[test]
    fn n_body_variants_verify() {
        for f in [n_body_broadcast, n_body_symmetry] {
            let ctx = Ctx::new(Machine::cm5(8));
            assert!(f(&ctx, Size::Small).verify.is_pass());
        }
    }
}
