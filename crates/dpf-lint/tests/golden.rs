//! Golden-file tests for the lint engine.
//!
//! Every `tests/fixtures/<name>.rs` is a known-bad (or deliberately
//! suppressed) source snippet; `tests/fixtures/<name>.expected` holds
//! the exact `render_text` output the engine must produce for it. A
//! fixture's first line may carry a `// lint-path: <repo-relative
//! path>` directive so path-scoped rules (metered-send, untimed-clock,
//! flop-conventions) see the path they key on.
//!
//! Regenerate expectations after an intentional rule change with
//! `UPDATE_GOLDEN=1 cargo test -p dpf-lint --test golden` and review
//! the diff like any other golden update.

use std::fs;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_sources() -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(fixture_dir())
        .expect("tests/fixtures exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    out.sort();
    out
}

/// The repo-relative path the fixture wants to be linted under.
fn lint_path_of(src: &str, stem: &str) -> String {
    src.lines()
        .find_map(|l| l.trim().strip_prefix("// lint-path:"))
        .map(|p| p.trim().to_string())
        .unwrap_or_else(|| format!("crates/dpf-fixture/src/{stem}.rs"))
}

#[test]
fn fixtures_match_expected_text() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut checked = 0;
    for path in fixture_sources() {
        let stem = path.file_stem().unwrap().to_string_lossy().to_string();
        let src = fs::read_to_string(&path).unwrap();
        let rendered =
            dpf_lint::render_text(&dpf_lint::lint_source(&lint_path_of(&src, &stem), &src));
        let expected_path = path.with_extension("expected");
        if update {
            fs::write(&expected_path, &rendered).unwrap();
            continue;
        }
        let expected = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "{} is missing; run UPDATE_GOLDEN=1 cargo test -p dpf-lint --test golden",
                expected_path.display()
            )
        });
        assert_eq!(
            rendered,
            expected,
            "fixture {stem}: rendered diagnostics drifted from {}",
            expected_path.display()
        );
        checked += 1;
    }
    if !update {
        assert!(
            checked >= 7,
            "expected at least 7 fixtures, found {checked}"
        );
    }
}

/// Fixtures with violations must actually fail the run, and the
/// fully-suppressed fixture must not: the golden text alone would pass
/// even if `is_failing` regressed.
#[test]
fn fixture_failure_classes() {
    for path in fixture_sources() {
        let stem = path.file_stem().unwrap().to_string_lossy().to_string();
        let src = fs::read_to_string(&path).unwrap();
        let diags = dpf_lint::lint_source(&lint_path_of(&src, &stem), &src);
        if stem == "suppressed" {
            assert!(diags.is_empty(), "{stem}: {diags:?}");
            assert!(!dpf_lint::is_failing(&diags, true));
        } else {
            assert!(
                dpf_lint::is_failing(&diags, true),
                "{stem} should fail under --deny warnings"
            );
        }
    }
}

/// Diagnostics carry a real `file:line` anchor — the acceptance
/// contract is that a regression names the offending site, not just
/// the rule.
#[test]
fn diagnostics_name_file_and_line() {
    let src = fs::read_to_string(fixture_dir().join("nan_fold.rs")).unwrap();
    let lint_path = lint_path_of(&src, "nan_fold");
    let diags = dpf_lint::lint_source(&lint_path, &src);
    assert!(!diags.is_empty());
    for d in &diags {
        assert_eq!(d.file, lint_path);
        assert!(d.line > 0, "{d:?}");
        // The reported line really holds the construct the rule names.
        let line_text = src.lines().nth(d.line as usize - 1).unwrap();
        assert!(
            line_text.contains("max") || line_text.contains("min"),
            "{d:?} points at {line_text:?}"
        );
    }
}

// ---------------------------------------------------- tree-level tests

/// A miniature repo checkout under tests/fixtures/tree: exercises the
/// directory walk, cross-file try-parity, and output determinism.
fn tree_root() -> PathBuf {
    fixture_dir().join("tree")
}

#[test]
fn tree_walk_finds_cross_file_parity_breaks() {
    let diags = dpf_lint::lint_tree(&tree_root()).unwrap();
    // The in-file direction: alpha exports try_solve with no solve.
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "try-parity" && d.message.contains("try_solve")),
        "{}",
        dpf_lint::render_text(&diags)
    );
    // The tree-wide direction: the mini tree has none of the required
    // comm/linalg twin pairs, so every pair is reported missing.
    let missing = diags
        .iter()
        .filter(|d| d.file == "(tree)" && d.rule == "try-parity")
        .count();
    assert_eq!(missing, dpf_lint::rules::REQUIRED_TWINS.len());
}

/// A second mini tree holding only a registry/tables pair with every
/// deliberate `comm-inventory` defect: drifted pattern set, unknown
/// pattern name, missing inventory entry, duplicate entry, stale
/// benchmark. The golden file pins the exact rendered diagnostics.
#[test]
fn comm_inventory_tree_matches_golden() {
    let root = fixture_dir().join("tree_inventory");
    let diags: Vec<_> = dpf_lint::lint_tree(&root)
        .unwrap()
        .into_iter()
        .filter(|d| d.rule == "comm-inventory")
        .collect();
    let rendered = dpf_lint::render_text(&diags);
    let expected_path = fixture_dir().join("tree_inventory.expected");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&expected_path, &rendered).unwrap();
        return;
    }
    let expected = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
        panic!(
            "{} is missing; run UPDATE_GOLDEN=1 cargo test -p dpf-lint --test golden",
            expected_path.display()
        )
    });
    assert_eq!(rendered, expected, "comm-inventory diagnostics drifted");
    // Spot-check the defect classes so the golden cannot silently go
    // empty: drift, unknown pattern, missing entry, duplicate, stale.
    for needle in [
        "inventory says",
        "unknown communication pattern `Warp`",
        "no §1.5 COMM_INVENTORY entry",
        "twice",
        "not in the registry",
    ] {
        assert!(
            diags.iter().any(|d| d.message.contains(needle)),
            "no diagnostic matching {needle:?} in:\n{rendered}"
        );
    }
    assert!(dpf_lint::is_failing(&diags, false));
}

/// A registry with no `COMM_INVENTORY` anywhere is itself a finding —
/// the inventory cannot silently disappear. (The alpha/beta mini tree
/// has neither file, so it stays silent: rule scoped to real trees.)
#[test]
fn registry_without_inventory_is_reported_and_no_registry_is_silent() {
    let src =
        fs::read_to_string(fixture_dir().join("tree_inventory/crates/dpf-suite/src/registry.rs"))
            .unwrap();
    let diags = dpf_lint::rules::check_comm_inventory(
        Some(("crates/dpf-suite/src/registry.rs", src.as_str())),
        None,
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("no COMM_INVENTORY"));
    assert!(dpf_lint::rules::check_comm_inventory(None, None).is_empty());
    let tree_diags = dpf_lint::lint_tree(&tree_root()).unwrap();
    assert!(
        !tree_diags.iter().any(|d| d.rule == "comm-inventory"),
        "mini tree without a registry must stay silent"
    );
}

#[test]
fn tree_output_is_sorted_and_deterministic() {
    let first = dpf_lint::lint_tree(&tree_root()).unwrap();
    let second = dpf_lint::lint_tree(&tree_root()).unwrap();
    assert_eq!(
        dpf_lint::render_json(&first),
        dpf_lint::render_json(&second),
        "JSON output must be byte-identical across runs"
    );
    assert_eq!(
        dpf_lint::render_text(&first),
        dpf_lint::render_text(&second)
    );
    let keys: Vec<_> = first
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys, sorted,
        "diagnostics must be sorted by (file, line, rule)"
    );
}

#[test]
fn json_parses_as_stable_shape() {
    let diags = dpf_lint::lint_tree(&tree_root()).unwrap();
    let json = dpf_lint::render_json(&diags);
    // No JSON parser in the dependency set: check the stable envelope
    // and per-diagnostic field order textually.
    assert!(json.starts_with("{\n  \"diagnostics\": ["));
    assert!(json.trim_end().ends_with('}'));
    assert!(json.contains("\"summary\": {\"errors\":"));
    for d in &diags {
        assert!(json.contains(&format!("\"line\": {}, \"rule\": \"{}\"", d.line, d.rule)));
    }
}
