// lint-path: crates/dpf-core/src/flops.rs
// The §1.5 FLOP-weight table with a drifted DIV weight and the
// reduction helper deleted.

pub const ADD: u64 = 1;
pub const SUB: u64 = 1;
pub const MUL: u64 = 1;
pub const DIV: u64 = 2;
pub const SQRT: u64 = 4;
pub const LOG: u64 = 8;
pub const TRIG: u64 = 8;
pub const EXP: u64 = 8;
