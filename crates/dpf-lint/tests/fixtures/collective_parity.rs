// Fixture for the collective-parity rule: collectives reached under
// rank-dependent control flow inside SPMD regions (run_workers worker
// closures and `*_exec` protocol fns) must execute on every rank.

/// Positive: a barrier only rank 0 reaches inside a worker closure —
/// the other ranks never arrive, so the program deadlocks statically.
pub fn spawn_gated(m: &Machine) {
    run_workers(m, |rank, comm| {
        if rank == 0 {
            comm.barrier();
        }
        comm.fold_exec(rank, 1.0);
    });
}

/// Positive: a divergent early return before a collective in a
/// protocol fn — odd ranks leave, even ranks block in the barrier.
pub fn gate_exec(rank: usize, comm: &Comm) {
    if rank % 2 == 1 {
        return;
    }
    comm.barrier();
}

/// Suppressed: a documented asymmetric prologue.
pub fn seeded_exec(rank: usize, comm: &Comm) {
    if rank == 0 {
        // dpf-lint: allow(collective-parity, reason = "fixture: demonstrating pragma suppression of an asymmetric prologue")
        comm.route_exec(0);
    }
    comm.barrier();
}

/// Clean: both branches of a rank test perform the same collectives,
/// so every rank arrives no matter which way the test goes.
pub fn balanced_exec(rank: usize, comm: &Comm) {
    if rank == 0 {
        comm.barrier();
        comm.fold_exec(rank, 0.0);
    } else {
        comm.barrier();
        comm.fold_exec(rank, 1.0);
    }
}

/// Clean: rank-gated point-to-point traffic is legitimate SPMD idiom —
/// send/recv are not collectives and peers block in recv_from instead.
pub fn broadcast_like(m: &Machine) {
    run_workers(m, |rank, comm| {
        if rank == 0 {
            comm.send(1, 42.0);
        }
        let v = comm.recv_from(0);
        comm.barrier();
        v
    });
}
