// lint-path: crates/dpf-apps/src/clock.rs
// Raw clock read outside the sanctioned instr/harness modules: §1.5
// busy/elapsed accounting must stay centralized.

pub fn step(dt: f64) -> f64 {
    let t0 = Instant::now();
    dt * t0.elapsed().as_secs_f64()
}
