// lint-path: crates/dpf-apps/src/pragmas.rs
// A reason-less pragma is malformed (bad-pragma); a well-formed pragma
// that suppresses nothing is stale (unused-pragma).
// dpf-lint: allow(nan-unsafe-fold)
// dpf-lint: allow(hot-path-alloc, reason = "the allocation this excused is gone")

fn f() {}
