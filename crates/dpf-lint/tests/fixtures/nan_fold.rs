// lint-path: crates/dpf-apps/src/nan_fold.rs
// Worst-error folds written the NaN-dropping way: every shape the
// nan-unsafe-fold rule must catch.

pub fn check(errs: &[f64]) -> Verify {
    let worst = errs.iter().fold(0.0, |m, v| m.max(v.abs()));
    Verify::check("residual", worst, 1e-9)
}

pub fn reduce_all(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0f64, f64::max)
}

pub fn verify_drift(ds: &[f64]) -> f64 {
    let mut m = 0.0;
    for d in ds {
        m = m.min(*d);
    }
    m
}
