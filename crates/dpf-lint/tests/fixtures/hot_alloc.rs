// lint-path: crates/dpf-comm/src/hot_alloc.rs
// Allocation inside a zero-allocation `_into` hot path (PR 1 buffer
// discipline). The non-`_into` sibling may allocate freely.

pub fn axpy_into(out: &mut [f64], xs: &[f64], a: f64) {
    let mut tmp: Vec<f64> = Vec::new();
    let doubled: Vec<f64> = xs.iter().map(|v| v * a).collect();
    for (o, d) in out.iter_mut().zip(doubled) {
        *o = d;
    }
    tmp.clear();
}

pub fn axpy(xs: &[f64], a: f64) -> Vec<f64> {
    xs.iter().map(|v| v * a).collect()
}
