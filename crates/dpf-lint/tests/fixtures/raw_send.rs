// lint-path: crates/dpf-core/src/spmd.rs
// A raw channel send in the transport module that bypasses the
// LinkMeter/envelope path. `transmit` and `Router::send` stay legal.

fn broadcast(txs: &[Sender<Frame>], frame: Frame) {
    for tx in txs {
        tx.send(frame.clone()).unwrap();
    }
}

fn transmit(&self, dst: usize, frame: Frame) {
    self.txs[dst].send(frame).unwrap();
}

fn forward(router: &mut Router, dst: usize, msg: Message) {
    router.send(dst, msg.len(), msg);
}
