// Known-bad: cloning a DistArray argument inside an `_into` hot path —
// a whole-block copy exactly where the buffer-reuse discipline forbids
// allocation. The metadata clone through an accessor stays legal.

pub fn scale_into(ctx: &Ctx, a: &DistArray<f64>, out: &mut DistArray<f64>) {
    let staging = a.clone();
    let lay = out.layout().clone();
    for (o, s) in out.as_mut_slice().iter_mut().zip(staging.as_slice()) {
        *o = 2.0 * s;
    }
    let _ = (ctx, lay);
}
