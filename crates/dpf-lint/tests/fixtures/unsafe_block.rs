// lint-path: crates/dpf-core/src/unsafe_block.rs
// Unsafe with no SAFETY comment: non-suppressible, even with a pragma
// directly above it.

pub fn peek(xs: &[f64], n: usize) -> f64 {
    // dpf-lint: allow(unsafe-forbid, reason = "a pragma alone must not excuse this")
    unsafe { *xs.get_unchecked(n) }
}
