// lint-path: crates/dpf-suite/src/registry.rs
// Fixture for the registry-coverage rule: every paper version listed
// for a registry entry must map to a runnable variant, or carry a
// documented-gap pragma.

pub fn registry() -> Vec<BenchEntry> {
    vec![
        // Positive: paper lists Cmssl but only Basic is runnable.
        BenchEntry {
            name: "fixture-gap",
            paper_versions: &[Basic, Cmssl],
            variants: variants!(Basic => r::gap),
        },
        // Positive: a version name outside the paper's five classes.
        BenchEntry {
            name: "fixture-typo",
            paper_versions: &[Basic, Cmsl],
            variants: variants!(Basic => r::typo),
        },
        // Suppressed: a documented gap.
        BenchEntry {
            name: "fixture-documented",
            // dpf-lint: allow(registry-coverage, reason = "fixture: demonstrating a documented coverage gap")
            paper_versions: &[Basic, CDpeac],
            variants: variants!(Basic => r::documented),
        },
        // Clean: every paper version has a runnable variant (extras ok).
        BenchEntry {
            name: "fixture-covered",
            paper_versions: &[Basic, Optimized],
            variants: variants!(Basic => r::covered, Optimized => r::covered_opt, Library => r::covered_lib),
        },
    ]
}
