//! Mini tables fixture: the declared inventory `beta` disagrees with
//! the registry, `delta` is listed twice, and `stale` names a
//! benchmark the registry no longer has.

pub const COMM_INVENTORY: &[(&str, &[CommPattern])] = &[
    ("alpha", &[CommPattern::Reduction, CommPattern::Cshift]),
    ("beta", &[CommPattern::Stencil, CommPattern::Aapc]),
    (
        "delta",
        &[CommPattern::Sort, CommPattern::Scan],
    ),
    ("delta", &[CommPattern::Sort]),
    ("stale", &[CommPattern::Get]),
];
