//! Mini registry fixture for the tree-wide `comm-inventory` rule.
//! `alpha` agrees with the inventory (order differs, sets match),
//! `beta` drifted, `gamma` names a pattern that does not exist and has
//! no inventory entry at all, `delta` exercises the multi-line form.

pub fn registry() -> Vec<Entry> {
    vec![
        Entry {
            name: "alpha",
            patterns: &[P::Cshift, P::Reduction],
        },
        Entry {
            name: "beta",
            patterns: &[P::Stencil],
        },
        Entry {
            name: "gamma",
            patterns: &[P::Warp],
        },
        Entry {
            name: "delta",
            patterns: &[
                P::Sort,
                P::Scan,
            ],
        },
    ]
}
