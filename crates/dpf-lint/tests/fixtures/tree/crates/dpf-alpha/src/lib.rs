// Mini-tree fixture crate "alpha": exports a fallible primitive with
// no panicking twin anywhere in the tree.

pub fn try_solve(n: usize) -> Result<usize, ()> {
    Ok(n)
}

pub fn helper(n: usize) -> usize {
    n + 1
}
