// Mini-tree fixture crate "beta": a NaN-dropping fold, so tree output
// mixes per-file and tree-wide diagnostics.

pub fn worst(errs: &[f64]) -> f64 {
    errs.iter().copied().fold(0.0f64, f64::max)
}
