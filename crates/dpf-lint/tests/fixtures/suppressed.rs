// lint-path: crates/dpf-apps/src/suppressed.rs
// Every violation below carries a justifying pragma, so the file lints
// clean: line-scoped allow, and file-wide allow-file.
// dpf-lint: allow-file(untimed-clock, reason = "fixture exercising file-wide suppression")

pub fn check(errs: &[f64]) -> Verify {
    let t0 = Instant::now();
    // dpf-lint: allow(nan-unsafe-fold, reason = "fixture exercising line-scoped suppression")
    let worst = errs.iter().fold(0.0, |m, v| m.max(v.abs()));
    // dpf-lint: allow(determinism-taint, reason = "fixture exercising suppression of a clock-tainted verify")
    Verify::check("residual", worst, t0.elapsed().as_secs_f64())
}
