// Fixture for the lock-order rule: two locks taken in both orders
// across the file form a cycle in the lock-acquisition graph, the
// classic AB/BA deadlock recipe.

/// First direction: deaths before waits.
pub fn reap(&self) {
    let d = self.deaths.lock();
    let w = self.waits.lock();
    d.push(w.len());
}

/// Positive: same pair, inverted — waits before deaths.
pub fn stall(&self) {
    let w = self.waits.lock();
    let d = self.deaths.lock();
    w.push(d.len());
}

/// Suppressed: a documented inversion (e.g. both sides gated by a
/// third outer lock the analysis cannot see).
pub fn audit(&self) {
    let s = self.state.lock();
    let h = self.heal.lock();
    s.note(h.epoch());
}

pub fn heal(&self) {
    let h = self.heal.lock();
    // dpf-lint: allow(lock-order, reason = "fixture: demonstrating pragma suppression of a documented inversion")
    let s = self.state.lock();
    h.note(s.epoch());
}

/// Clean: a temporary guard dies at the end of its statement, so the
/// second lock is never taken while the first is held.
pub fn snapshot(&self) -> usize {
    let n = self.deaths.lock().len();
    let m = self.waits.lock().len();
    n + m
}

/// Clean: consistent ordering everywhere else.
pub fn drain(&self) {
    let d = self.deaths.lock();
    let w = self.waits.lock();
    w.extend(d.drain());
}
