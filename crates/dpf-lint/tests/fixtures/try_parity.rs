// lint-path: crates/dpf-comm/src/try_parity.rs
// A fallible primitive whose panicking twin was deleted from the file.

pub fn try_gather_rows(a: &Array, rows: &[usize]) -> Result<Array, DpfError> {
    Ok(a.clone())
}

pub fn try_scatter_rows(a: &Array, rows: &[usize]) -> Result<Array, DpfError> {
    Ok(a.clone())
}

pub fn scatter_rows(a: &Array, rows: &[usize]) -> Array {
    try_scatter_rows(a, rows).unwrap()
}
