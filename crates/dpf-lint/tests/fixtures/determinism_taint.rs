// Fixture for the determinism-taint rule: values derived from
// nondeterministic sources (hash-order iteration, wall clocks, thread
// ids, unordered float reduces) must not flow into Verify results,
// instrumentation counters, or serialized artifacts.

/// Positive: HashMap iteration order feeds a Verify fold — the
/// residual depends on hash seeding, so verification is flaky.
pub fn verify_from_hash(map: &HashMap<String, f64>) -> Verify {
    let mut acc = 0.0;
    for v in map.values() {
        acc += v;
    }
    Verify::Residual(acc)
}

/// Positive: a wall-clock read charged to an instrumentation counter.
pub fn time_charge(instr: &mut Instr) {
    // dpf-lint: allow(untimed-clock, reason = "fixture: the clock read itself is the taint source under test")
    let t = Instant::now();
    instr.charge_comm(t.elapsed().as_nanos() as u64);
}

/// Positive: an unordered parallel reduce with a float identity — the
/// combining tree varies run to run, so the sum is not bit-stable.
pub fn par_sum(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * x).reduce(|| 0.0, |p, q| p + q)
}

/// Suppressed: a documented replayable reduce.
pub fn blessed_sum(xs: &[f64]) -> f64 {
    // dpf-lint: allow(determinism-taint, reason = "fixture: demonstrating pragma suppression of a replay-pinned reduce")
    xs.par_iter().map(|x| x + 1.0).reduce(|| 0.0, |p, q| p + q)
}

/// Clean: sorting the keys first makes the fold order-deterministic,
/// and a BTreeMap never had the problem.
pub fn verify_sorted(map: &BTreeMap<String, f64>) -> Verify {
    let mut acc = 0.0;
    for v in map.values() {
        acc += v;
    }
    Verify::Residual(acc)
}

/// Clean: integer identities are order-insensitive, so an unordered
/// reduce over counters is fine.
pub fn count_par(xs: &[u64]) -> u64 {
    xs.par_iter().map(|x| x + 1).reduce(|| 0u64, |p, q| p + q)
}
