// lint-path: crates/dpf-cli/src/report.rs
// Bare file writes outside the atomic artifact writer: a crash
// mid-write leaves a torn file under the final name, which the next
// `dpf tables --campaign` run chokes on.

pub fn save(dir: &Path, report: &CampaignReport) {
    std::fs::write(dir.join("campaign.json"), report.render_json()).unwrap();
    let mut f = File::create(dir.join("tables.md")).unwrap();
    f.write_all(b"| table |\n").unwrap();
}
