//! Standalone entry point: `cargo run -p dpf-lint -- [--format text|json]
//! [--deny warnings] [--root PATH]`. Exit code 0 when clean, 2 when the
//! lint fails (configuration/convention class, distinct from the
//! benchmark-failure exit 1 of `dpf run`/`dpf all`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dpf_lint_main(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("dpf-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Shared driver for the standalone binary (also mirrored by
/// `dpf lint` in dpf-cli).
fn dpf_lint_main(args: &[String]) -> Result<ExitCode, String> {
    let mut format_json = false;
    let mut deny_warnings = false;
    let mut root: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => return Err(format!("bad --format {other:?} (want text|json)")),
            },
            "--deny" => match it.next().map(String::as_str) {
                Some("warnings") => deny_warnings = true,
                other => return Err(format!("bad --deny {other:?} (want warnings)")),
            },
            "--root" => {
                root = Some(
                    it.next()
                        .map(std::path::PathBuf::from)
                        .ok_or("bad --root (want a path)")?,
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            dpf_lint::find_root(&cwd)
                .ok_or("no DPF repo root found above the current directory (want crates/dpf-core/src); pass --root")?
        }
    };
    let diags = dpf_lint::lint_tree(&root).map_err(|e| e.to_string())?;
    if format_json {
        print!("{}", dpf_lint::render_json(&diags));
    } else {
        print!("{}", dpf_lint::render_text(&diags));
    }
    if dpf_lint::is_failing(&diags, deny_warnings) {
        Ok(ExitCode::from(2))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}
