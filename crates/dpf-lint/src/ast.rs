//! A brace-tree AST over the token stream — the control-flow skeleton
//! the deep rules (collective-parity, lock-order, determinism-taint)
//! walk. It is deliberately *not* a Rust parser: it recovers only the
//! structure those rules reason about — `if`/`else if`/`else` chains
//! with their condition spans, `match` arms with pattern (and guard)
//! spans, `loop`/`while`/`for` bodies, and plain blocks — and leaves
//! everything else as flat leaf runs of tokens.
//!
//! Two properties matter for rule soundness:
//!
//! * every node's [`Span`] covers its entire token range, so scanning a
//!   branch's span sees all nested calls, however deep;
//! * macro invocations (`matches!(x, Some(p) if p > 0)`, `vec![...]`)
//!   and `#[...]` attributes are consumed as opaque groups, so an `if`
//!   or `=>` *inside* a macro body never opens a phantom region.
//!
//! Spans are half-open token-index ranges into the `Vec<Token>` the
//! tree was parsed from; lines come from the underlying tokens.

use crate::lex::{Tok, Token};

/// Half-open token-index range `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First token index.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
}

impl Span {
    /// Does this span contain token index `i`?
    pub fn contains(&self, i: usize) -> bool {
        self.start <= i && i < self.end
    }

    /// Does this span fully contain `other`?
    pub fn encloses(&self, other: Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

/// One node of the brace tree.
#[derive(Debug)]
pub enum Node {
    /// `{ ... }`.
    Block(Block),
    /// `if cond { ... } else ...`.
    If(IfNode),
    /// `match scrutinee { arms }`.
    Match(MatchNode),
    /// `loop`/`while`/`for` with body.
    Loop(LoopNode),
    /// A flat run of tokens with no structure we track.
    Leaf(Span),
}

impl Node {
    /// The node's full token span (header + body + tail).
    pub fn span(&self) -> Span {
        match self {
            Node::Block(b) => b.span,
            Node::If(n) => n.span,
            Node::Match(n) => n.span,
            Node::Loop(n) => n.span,
            Node::Leaf(s) => *s,
        }
    }
}

/// A braced block and its children, in source order.
#[derive(Debug)]
pub struct Block {
    /// Token span including both braces.
    pub span: Span,
    /// Child nodes in source order.
    pub children: Vec<Node>,
}

/// `if cond { then } else <block-or-if>`.
#[derive(Debug)]
pub struct IfNode {
    /// Line of the `if` keyword.
    pub line: u32,
    /// Whole-construct span (through the final `else` branch).
    pub span: Span,
    /// Condition span (between `if` and the `{`; covers `if let` too).
    pub cond: Span,
    /// The then-block.
    pub then_branch: Block,
    /// `else { ... }` (a `Block`) or `else if ...` (an `If`), if any.
    pub else_branch: Option<Box<Node>>,
}

/// `match scrutinee { pat [if guard] => body, ... }`.
#[derive(Debug)]
pub struct MatchNode {
    /// Line of the `match` keyword.
    pub line: u32,
    /// Whole-construct span.
    pub span: Span,
    /// Scrutinee span (between `match` and the `{`).
    pub scrutinee: Span,
    /// The arms in source order.
    pub arms: Vec<Arm>,
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Line the pattern starts on.
    pub line: u32,
    /// Pattern span, *including* any `if` guard (up to the `=>`).
    pub pat: Span,
    /// The arm body (block, nested structure, or expression leaf).
    pub body: Node,
}

/// `loop { .. }`, `while cond { .. }`, `for pat in iter { .. }`.
#[derive(Debug)]
pub struct LoopNode {
    /// Line of the loop keyword.
    pub line: u32,
    /// Whole-construct span.
    pub span: Span,
    /// Header span (condition / iterator; empty for bare `loop`).
    pub header: Span,
    /// The loop body.
    pub body: Block,
}

/// Parse a token stream into a brace tree. Never fails: unparseable
/// stretches degrade into leaf runs, and unbalanced braces close at
/// end of stream.
pub fn parse(tokens: &[Token]) -> Block {
    let mut p = Parser { t: tokens, i: 0 };
    let children = p.nodes(false);
    Block {
        span: Span {
            start: 0,
            end: tokens.len(),
        },
        children,
    }
}

/// Visit every node of the tree in source order.
pub fn walk<'a>(block: &'a Block, visit: &mut impl FnMut(&'a Node)) {
    for child in &block.children {
        walk_node(child, visit);
    }
}

fn walk_node<'a>(node: &'a Node, visit: &mut impl FnMut(&'a Node)) {
    visit(node);
    match node {
        Node::Block(b) => walk(b, visit),
        Node::If(n) => {
            walk(&n.then_branch, visit);
            if let Some(e) = &n.else_branch {
                walk_node(e, visit);
            }
        }
        Node::Match(n) => {
            for arm in &n.arms {
                walk_node(&arm.body, visit);
            }
        }
        Node::Loop(n) => walk(&n.body, visit),
        Node::Leaf(_) => {}
    }
}

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
}

impl Parser<'_> {
    fn tok(&self, k: usize) -> Option<&Tok> {
        self.t.get(k).map(|t| &t.tok)
    }

    fn line(&self, k: usize) -> u32 {
        self.t.get(k).map(|t| t.line).unwrap_or(0)
    }

    fn is_ident(&self, k: usize, s: &str) -> bool {
        matches!(self.tok(k), Some(Tok::Ident(i)) if i == s)
    }

    fn is_punct(&self, k: usize, c: char) -> bool {
        matches!(self.tok(k), Some(Tok::Punct(p)) if *p == c)
    }

    /// `for` in `impl Trait for Type` / `for<'a>` HRTBs is not a loop:
    /// a statement-position `for` never follows an identifier, a `>`
    /// (generics close) or `)`.
    fn for_is_loop(&self, k: usize) -> bool {
        // `for<'a>` (HRTB) opens on `<`; a loop's pattern never does.
        if self.is_punct(k + 1, '<') {
            return false;
        }
        if k == 0 {
            return true;
        }
        !matches!(
            self.tok(k - 1),
            Some(Tok::Ident(_)) | Some(Tok::Punct('>')) | Some(Tok::Punct(')'))
        )
    }

    /// Keyword in statement position (not a field/method named like one).
    fn keyword_position(&self, k: usize) -> bool {
        k == 0 || !matches!(self.tok(k - 1), Some(Tok::Punct('.')))
    }

    /// Parse nodes until end of stream or (when `in_block`) the closing
    /// `}` of the current block, which is left unconsumed.
    fn nodes(&mut self, in_block: bool) -> Vec<Node> {
        let mut out = Vec::new();
        let mut leaf_start = self.i;
        macro_rules! flush_leaf {
            () => {
                if leaf_start < self.i {
                    out.push(Node::Leaf(Span {
                        start: leaf_start,
                        end: self.i,
                    }));
                }
            };
        }
        while self.i < self.t.len() {
            if in_block && self.is_punct(self.i, '}') {
                break;
            }
            match self.tok(self.i) {
                Some(Tok::Punct('{')) => {
                    flush_leaf!();
                    out.push(Node::Block(self.block()));
                    leaf_start = self.i;
                }
                Some(Tok::Punct('#')) if self.is_punct(self.i + 1, '[') => {
                    // Attribute: stays inside the current leaf run, but
                    // its group must not be parsed as structure.
                    self.i += 1;
                    self.skip_group();
                }
                Some(Tok::Ident(_))
                    if self.is_punct(self.i + 1, '!')
                        && matches!(
                            self.tok(self.i + 2),
                            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{'))
                        ) =>
                {
                    // Macro invocation: opaque. (`matches!(x, p if g)`
                    // must not open an if-node.)
                    self.i += 2;
                    self.skip_group();
                }
                Some(Tok::Ident(kw)) if kw == "if" && self.keyword_position(self.i) => {
                    flush_leaf!();
                    let n = self.if_node();
                    out.push(Node::If(n));
                    leaf_start = self.i;
                }
                Some(Tok::Ident(kw)) if kw == "match" && self.keyword_position(self.i) => {
                    flush_leaf!();
                    let n = self.match_node();
                    out.push(Node::Match(n));
                    leaf_start = self.i;
                }
                Some(Tok::Ident(kw))
                    if (kw == "loop" || kw == "while")
                        && self.keyword_position(self.i)
                        // `loop`/`while` must head a `{`-terminated
                        // construct; a stray use degrades to leaf.
                        && self.has_brace_ahead(self.i + 1) =>
                {
                    flush_leaf!();
                    let n = self.loop_node();
                    out.push(Node::Loop(n));
                    leaf_start = self.i;
                }
                Some(Tok::Ident(kw))
                    if kw == "for"
                        && self.keyword_position(self.i)
                        && self.for_is_loop(self.i)
                        && self.has_brace_ahead(self.i + 1) =>
                {
                    flush_leaf!();
                    let n = self.loop_node();
                    out.push(Node::Loop(n));
                    leaf_start = self.i;
                }
                _ => self.i += 1,
            }
        }
        flush_leaf!();
        out
    }

    /// Is there a `{` at delimiter depth 0 before the next `;` (or the
    /// enclosing block's `}`)? Distinguishes `while cond {` from stray
    /// identifier uses of the keywords.
    fn has_brace_ahead(&self, mut k: usize) -> bool {
        let mut depth = 0i32;
        while k < self.t.len() {
            match self.tok(k).unwrap() {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('{') if depth == 0 => return true,
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') if depth <= 0 => return false,
                Tok::Punct('}') => depth -= 1,
                Tok::Punct(';') if depth == 0 => return false,
                _ => {}
            }
            k += 1;
        }
        false
    }

    /// Consume a balanced delimiter group starting at the opening
    /// delimiter under the cursor.
    fn skip_group(&mut self) {
        let mut depth = 0i32;
        while self.i < self.t.len() {
            match self.tok(self.i).unwrap() {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    depth -= 1;
                    if depth <= 0 {
                        self.i += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Scan a construct header (if-condition, match scrutinee, loop
    /// header) up to the body's `{` at delimiter depth 0.
    fn scan_header(&mut self) -> Span {
        let start = self.i;
        let mut depth = 0i32;
        while self.i < self.t.len() {
            match self.tok(self.i).unwrap() {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('{') if depth == 0 => break,
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                _ => {}
            }
            self.i += 1;
        }
        Span { start, end: self.i }
    }

    fn block(&mut self) -> Block {
        let start = self.i;
        if !self.is_punct(self.i, '{') {
            return Block {
                span: Span { start, end: start },
                children: Vec::new(),
            };
        }
        self.i += 1;
        let children = self.nodes(true);
        if self.is_punct(self.i, '}') {
            self.i += 1;
        }
        Block {
            span: Span { start, end: self.i },
            children,
        }
    }

    fn if_node(&mut self) -> IfNode {
        let start = self.i;
        let line = self.line(start);
        self.i += 1; // `if`
        let cond = self.scan_header();
        let then_branch = self.block();
        let mut else_branch = None;
        if self.is_ident(self.i, "else") {
            self.i += 1;
            if self.is_ident(self.i, "if") {
                else_branch = Some(Box::new(Node::If(self.if_node())));
            } else if self.is_punct(self.i, '{') {
                else_branch = Some(Box::new(Node::Block(self.block())));
            }
        }
        IfNode {
            line,
            span: Span { start, end: self.i },
            cond,
            then_branch,
            else_branch,
        }
    }

    fn loop_node(&mut self) -> LoopNode {
        let start = self.i;
        let line = self.line(start);
        self.i += 1; // keyword
        let header = self.scan_header();
        let body = self.block();
        LoopNode {
            line,
            span: Span { start, end: self.i },
            header,
            body,
        }
    }

    fn match_node(&mut self) -> MatchNode {
        let start = self.i;
        let line = self.line(start);
        self.i += 1; // `match`
        let scrutinee = self.scan_header();
        let mut arms = Vec::new();
        if self.is_punct(self.i, '{') {
            self.i += 1;
            while self.i < self.t.len() && !self.is_punct(self.i, '}') {
                match self.arm() {
                    Some(arm) => arms.push(arm),
                    None => break,
                }
            }
            if self.is_punct(self.i, '}') {
                self.i += 1;
            }
        }
        MatchNode {
            line,
            span: Span { start, end: self.i },
            scrutinee,
            arms,
        }
    }

    fn arm(&mut self) -> Option<Arm> {
        let pat_start = self.i;
        let line = self.line(self.i);
        // Pattern (struct patterns may contain braces; guards contain
        // `if` which stays inside the pattern span) up to `=>`.
        let mut depth = 0i32;
        loop {
            match self.tok(self.i)? {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('}') if depth == 0 => return None, // match's `}`
                Tok::Punct('}') => depth -= 1,
                Tok::Punct('=') if depth == 0 && self.is_punct(self.i + 1, '>') => break,
                _ => {}
            }
            self.i += 1;
        }
        let pat = Span {
            start: pat_start,
            end: self.i,
        };
        self.i += 2; // `=>`
        let body = if self.is_punct(self.i, '{') {
            Node::Block(self.block())
        } else if self.is_ident(self.i, "if") && self.keyword_position(self.i) {
            Node::If(self.if_node())
        } else if self.is_ident(self.i, "match") && self.keyword_position(self.i) {
            Node::Match(self.match_node())
        } else if (self.is_ident(self.i, "loop")
            || self.is_ident(self.i, "while")
            || self.is_ident(self.i, "for"))
            && self.has_brace_ahead(self.i + 1)
        {
            Node::Loop(self.loop_node())
        } else {
            // Expression body to the `,` (or the match's `}`).
            let s = self.i;
            let mut depth = 0i32;
            while self.i < self.t.len() {
                match self.tok(self.i).unwrap() {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                    Tok::Punct('}') if depth == 0 => break,
                    Tok::Punct('}') => depth -= 1,
                    Tok::Punct(',') if depth == 0 => break,
                    _ => {}
                }
                self.i += 1;
            }
            Node::Leaf(Span {
                start: s,
                end: self.i,
            })
        };
        if self.is_punct(self.i, ',') {
            self.i += 1;
        }
        Some(Arm { line, pat, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn tree(src: &str) -> (Vec<Token>, Block) {
        let (tokens, _) = lex(src);
        let b = parse(&tokens);
        (tokens, b)
    }

    fn collect(b: &Block) -> Vec<&Node> {
        let mut out = Vec::new();
        walk(b, &mut |n| out.push(n));
        out
    }

    fn text(tokens: &[Token], span: Span) -> String {
        tokens[span.start..span.end]
            .iter()
            .map(|t| match &t.tok {
                Tok::Ident(s) => s.clone(),
                Tok::Punct(c) => c.to_string(),
                Tok::Int(s) | Tok::Float(s) => s.clone(),
                Tok::Str(_) => "\"\"".into(),
                Tok::Char => "' '".into(),
                Tok::Lifetime => "'_".into(),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    #[test]
    fn if_else_chain_structure() {
        let (toks, b) = tree("fn f() { if a == 1 { x(); } else if b { y(); } else { z(); } }");
        let ifs: Vec<&IfNode> = collect(&b)
            .into_iter()
            .filter_map(|n| match n {
                Node::If(i) => Some(i),
                _ => None,
            })
            .collect();
        assert_eq!(ifs.len(), 2);
        assert_eq!(text(&toks, ifs[0].cond), "a = = 1");
        // The outer if's span runs through the final else block.
        let outer = ifs[0];
        assert!(matches!(outer.else_branch.as_deref(), Some(Node::If(_))));
        let inner = match outer.else_branch.as_deref().unwrap() {
            Node::If(i) => i,
            _ => unreachable!(),
        };
        assert!(matches!(inner.else_branch.as_deref(), Some(Node::Block(_))));
        assert!(outer.span.encloses(inner.span));
    }

    #[test]
    fn nested_closures_keep_block_structure() {
        let src = "fn f() { run(|rank, w| { if rank == 0 { g(); } h(|| { i(); }); }); }";
        let (toks, b) = tree(src);
        let nodes = collect(&b);
        let ifs: Vec<&IfNode> = nodes
            .iter()
            .filter_map(|n| match n {
                Node::If(i) => Some(i),
                _ => None,
            })
            .collect();
        assert_eq!(ifs.len(), 1);
        assert_eq!(text(&toks, ifs[0].cond), "rank = = 0");
        // Three nested blocks: fn body, outer closure, inner closure,
        // plus the if's then-block.
        let blocks = nodes.iter().filter(|n| matches!(n, Node::Block(_))).count();
        assert!(blocks >= 3, "blocks = {blocks}");
    }

    #[test]
    fn match_guards_stay_in_pattern_span() {
        let src = "fn f() { match r { 0 => a(), n if n > 3 => { b(); } Some(X { v, .. }) => c(v), _ => (), } }";
        let (toks, b) = tree(src);
        let m = collect(&b)
            .into_iter()
            .find_map(|n| match n {
                Node::Match(m) => Some(m),
                _ => None,
            })
            .unwrap();
        assert_eq!(m.arms.len(), 4);
        assert_eq!(text(&toks, m.arms[1].pat), "n if n > 3");
        // Struct pattern braces do not end the arm early.
        assert!(text(&toks, m.arms[2].pat).contains("X { v"));
        // The guard's `if` did not become an IfNode.
        let guard_ifs = collect(&b)
            .into_iter()
            .filter(|n| matches!(n, Node::If(_)))
            .count();
        assert_eq!(guard_ifs, 0);
    }

    #[test]
    fn macro_bodies_are_opaque() {
        let src = r#"fn f() {
            assert!(matches!(x, Some(p) if p > 0));
            let v = vec![if cfg { 1 } else { 2 }];
            writeln!(w, "a => b").unwrap();
            if real { g(); }
        }"#;
        let (toks, b) = tree(src);
        let ifs: Vec<&IfNode> = collect(&b)
            .into_iter()
            .filter_map(|n| match n {
                Node::If(i) => Some(i),
                _ => None,
            })
            .collect();
        // Only the `if real` survives; the `if` inside matches! and
        // vec! are swallowed by the macro groups.
        assert_eq!(ifs.len(), 1);
        assert_eq!(text(&toks, ifs[0].cond), "real");
    }

    #[test]
    fn loops_and_impl_for_disambiguate() {
        let src = "impl Fmt for Router { fn go(&self) { for x in 0..3 { a(); } while x < 2 { b(); } loop { break; } } }";
        let (_, b) = tree(src);
        let loops = collect(&b)
            .into_iter()
            .filter(|n| matches!(n, Node::Loop(_)))
            .count();
        // `for` in `impl Fmt for Router` is not a loop.
        assert_eq!(loops, 3);
    }

    #[test]
    fn unbalanced_input_degrades_gracefully() {
        let (_, b) = tree("fn f() { if x { y(); ");
        // No panic; the if exists with an unterminated then-block.
        assert!(collect(&b).into_iter().any(|n| matches!(n, Node::If(_))));
    }

    #[test]
    fn if_let_condition_span() {
        let (toks, b) = tree("fn f() { if let Some(g) = m.lock() { use_it(g); } }");
        let i = collect(&b)
            .into_iter()
            .find_map(|n| match n {
                Node::If(i) => Some(i),
                _ => None,
            })
            .unwrap();
        assert!(text(&toks, i.cond).contains("let Some ( g ) = m . lock ( )"));
    }
}
