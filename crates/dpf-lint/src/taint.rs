//! The **determinism-taint** rule: an intra-procedural taint analysis
//! that seeds at nondeterminism sources and flags flows into the
//! repo's determinism-critical sinks, turning the differential suite's
//! bit-identity guarantee (§1.5 byte-reproducible metrics) into a
//! statically checked property.
//!
//! Sources:
//! * `HashMap`/`HashSet` iteration (`.iter()`, `.keys()`, `.values()`,
//!   `.drain()`, ...) over a variable whose hash-typed declaration is
//!   visible in the same function — hash iteration order is
//!   per-process random;
//! * `Instant::now()` / `SystemTime::now()` (outside the sanctioned
//!   instrumentation files, where wall time *is* the measurement);
//! * `thread::current().id()` — scheduler-dependent identity;
//! * unordered parallel `reduce` with a non-integer identity — FP
//!   addition is not associative, so rayon's work-stealing split makes
//!   the sum run-dependent. Integer identities (`|| 0u64`) are
//!   order-immune and skipped; the blessed bit-replay helpers carry a
//!   pragma documenting their replay obligation. This source is
//!   flagged *directly* (its result almost always escapes the
//!   function).
//!
//! Sinks: `Verify::*` constructors, instrumentation recording
//! (`.record*`/`.note_*`/`.charge_*` and calls on `*meter`
//! receivers), and artifact/journal serialization (`write_atomic`,
//! `render_json`, `to_json`).
//!
//! The analysis is deliberately shallow: taint propagates through
//! `let` bindings and plain assignments inside one function, fixpoint
//! over the statement list. Cross-function flows are the differential
//! suite's job; this rule catches the in-function class the reviewer
//! checklist kept re-litigating.

use crate::lex::Tok;
use crate::{Diagnostic, Severity, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Files where wall-clock reads are the product, not a hazard (the
/// same set the untimed-clock rule sanctions).
const CLOCK_SANCTIONED: &[&str] = &["instr.rs", "harness.rs"];

#[derive(Debug)]
struct TaintSource {
    idx: usize,
    line: u32,
    desc: String,
}

/// The determinism-taint rule entry point.
pub fn check_determinism_taint(f: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Group token indices by innermost enclosing named fn.
    let mut per_fn: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, enc) in f.enclosing.iter().enumerate() {
        if let Some(k) = enc {
            per_fn.entry(*k).or_default().push(i);
        }
    }
    let hash_params = hash_typed_params(f);
    for (k, idxs) in &per_fn {
        let fn_name = f.fns[*k].name.as_str();
        diags.extend(check_fn(
            f,
            idxs,
            hash_params.get(fn_name).cloned().unwrap_or_default(),
        ));
    }
    diags.sort_by_key(|d| (d.line, d.message.clone()));
    diags.dedup_by(|a, b| a.line == b.line && a.message == b.message);
    diags
}

/// Hash-typed parameter names per function, from signature scans
/// (signatures precede the body brace, so they are outside the body's
/// `enclosing` range).
fn hash_typed_params(f: &SourceFile) -> BTreeMap<String, BTreeSet<String>> {
    let toks = &f.tokens;
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        let is_fn = matches!(&toks[i].tok, Tok::Ident(s) if s == "fn");
        if !is_fn {
            i += 1;
            continue;
        }
        let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) else {
            i += 1;
            continue;
        };
        // Scan the parameter list: `ident : ... HashMap/HashSet ...`
        // up to the matching `)`.
        let mut j = i + 2;
        while j < toks.len() && !matches!(&toks[j].tok, Tok::Punct('(')) {
            if matches!(&toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
                break;
            }
            j += 1;
        }
        if !matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('('))) {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut param: Option<String> = None;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => {
                    depth -= 1;
                    if depth <= 0 {
                        break;
                    }
                }
                Tok::Punct(',') if depth == 1 => param = None,
                Tok::Punct(':') if depth == 1 => {
                    // `param: Type` — remember which param the type
                    // tokens belong to (set just below by the Ident arm
                    // preceding this `:`).
                }
                Tok::Ident(s) if s == "HashMap" || s == "HashSet" => {
                    if let Some(p) = &param {
                        out.entry(name.clone()).or_default().insert(p.clone());
                    }
                }
                // First ident of a parameter before its `:`.
                Tok::Ident(s) if depth == 1 && param.is_none() => {
                    param = Some(s.clone());
                }
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
    out
}

/// Per-function analysis over its (possibly gapped) token index list.
fn check_fn(f: &SourceFile, idxs: &[usize], mut hash_vars: BTreeSet<String>) -> Vec<Diagnostic> {
    let toks = &f.tokens;
    let at = |p: usize| idxs.get(p).map(|&i| &toks[i].tok);

    // ---- pass 1: hash-typed locals -------------------------------
    for (p, &i) in idxs.iter().enumerate() {
        if !matches!(&toks[i].tok, Tok::Ident(s) if s == "let") {
            continue;
        }
        let mut q = p + 1;
        if matches!(at(q), Some(Tok::Ident(s)) if s == "mut") {
            q += 1;
        }
        let Some(Tok::Ident(var)) = at(q) else {
            continue;
        };
        let var = var.clone();
        // Scan the statement for a hash-typed constructor/annotation.
        let mut r = q + 1;
        while r < idxs.len() {
            match at(r) {
                Some(Tok::Punct(';')) => break,
                Some(Tok::Ident(s)) if s == "HashMap" || s == "HashSet" => {
                    hash_vars.insert(var.clone());
                    break;
                }
                _ => r += 1,
            }
        }
    }

    // ---- pass 2: sources ------------------------------------------
    let mut sources: Vec<TaintSource> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let clock_ok = CLOCK_SANCTIONED.iter().any(|s| f.path.ends_with(s));
    for (p, &i) in idxs.iter().enumerate() {
        match &toks[i].tok {
            Tok::Ident(v) if hash_vars.contains(v) => {
                // `v.iter()` / `v.values()` ...
                if matches!(at(p + 1), Some(Tok::Punct('.')))
                    && matches!(at(p + 2), Some(Tok::Ident(m)) if ITER_METHODS.contains(&m.as_str()))
                    && matches!(at(p + 3), Some(Tok::Punct('(')))
                {
                    sources.push(TaintSource {
                        idx: i,
                        line: toks[i].line,
                        desc: format!("hash-order iteration over `{v}`"),
                    });
                }
                // `for x in v` — hash iteration via IntoIterator.
                if p >= 1
                    && matches!(at(p - 1), Some(Tok::Ident(s)) if s == "in")
                    && !matches!(at(p + 1), Some(Tok::Punct('.')))
                {
                    sources.push(TaintSource {
                        idx: i,
                        line: toks[i].line,
                        desc: format!("hash-order iteration over `{v}`"),
                    });
                }
            }
            Tok::Ident(v)
                if !clock_ok
                    && (v == "Instant" || v == "SystemTime")
                    && matches!(at(p + 1), Some(Tok::Punct(':')))
                    && matches!(at(p + 2), Some(Tok::Punct(':')))
                    && matches!(at(p + 3), Some(Tok::Ident(m)) if m == "now") =>
            {
                sources.push(TaintSource {
                    idx: i,
                    line: toks[i].line,
                    desc: format!("wall-clock read (`{v}::now`)"),
                });
            }
            // `thread::current().id()`
            Tok::Ident(v)
                if v == "current"
                    && matches!(at(p + 1), Some(Tok::Punct('(')))
                    && matches!(at(p + 2), Some(Tok::Punct(')')))
                    && matches!(at(p + 3), Some(Tok::Punct('.')))
                    && matches!(at(p + 4), Some(Tok::Ident(m)) if m == "id") =>
            {
                sources.push(TaintSource {
                    idx: i,
                    line: toks[i].line,
                    desc: "scheduler-dependent thread id".into(),
                });
            }
            Tok::Ident(v) if v == "reduce" => {
                if let Some(d) = check_par_reduce(f, idxs, p) {
                    diags.push(d);
                }
            }
            _ => {}
        }
    }

    // ---- pass 3: taint fixpoint over statements -------------------
    // Statements are `;`-separated runs; a statement taints its bound
    // or assigned variable when its expression mentions a source site
    // or an already-tainted variable.
    let mut stmts: Vec<(Option<String>, usize, usize)> = Vec::new(); // (var, start, end) in idxs positions
    {
        let mut start = 0usize;
        for p in 0..idxs.len() {
            let boundary = matches!(
                at(p),
                Some(Tok::Punct(';')) | Some(Tok::Punct('{')) | Some(Tok::Punct('}'))
            );
            if boundary || p + 1 == idxs.len() {
                let end = if boundary { p } else { p + 1 };
                if end > start {
                    let var = stmt_target(f, idxs, start, end);
                    stmts.push((var, start, end));
                }
                start = p + 1;
            }
        }
    }
    let mut tainted: BTreeMap<String, (u32, String)> = BTreeMap::new(); // var -> (source line, desc)
    for _ in 0..8 {
        let mut changed = false;
        for (var, s, e) in &stmts {
            let Some(var) = var else { continue };
            if tainted.contains_key(var) {
                continue;
            }
            if let Some((line, desc)) = stmt_taint(f, idxs, *s, *e, &sources, &tainted) {
                tainted.insert(var.clone(), (line, desc));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // ---- pass 4: sinks --------------------------------------------
    for (p, &i) in idxs.iter().enumerate() {
        let sink: Option<String> = match &toks[i].tok {
            Tok::Ident(v) if v == "Verify" => {
                if matches!(at(p + 1), Some(Tok::Punct(':')))
                    && matches!(at(p + 2), Some(Tok::Punct(':')))
                    && matches!(at(p + 3), Some(Tok::Ident(_)))
                    && matches!(at(p + 4), Some(Tok::Punct('(')))
                {
                    Some("a Verify result".into())
                } else {
                    None
                }
            }
            Tok::Ident(m)
                if (m.starts_with("record")
                    || m.starts_with("note_")
                    || m.starts_with("charge_"))
                    && p >= 1
                    && matches!(at(p - 1), Some(Tok::Punct('.')))
                    && matches!(at(p + 1), Some(Tok::Punct('('))) =>
            {
                Some(format!("instrumentation counter (`{m}`)"))
            }
            Tok::Ident(m)
                if (m == "write_atomic" || m == "render_json" || m == "to_json")
                    && matches!(at(p + 1), Some(Tok::Punct('('))) =>
            {
                Some(format!("artifact/journal serialization (`{m}`)"))
            }
            _ => None,
        };
        let Some(sink_desc) = sink else { continue };
        // Argument span: from the opening paren to its match.
        let open = idxs
            .iter()
            .skip(p)
            .position(|&j| matches!(&toks[j].tok, Tok::Punct('(')))
            .map(|off| p + off);
        let Some(open) = open else { continue };
        let mut depth = 0i32;
        let mut close = open;
        for q in open..idxs.len() {
            match at(q) {
                Some(Tok::Punct('(')) => depth += 1,
                Some(Tok::Punct(')')) => {
                    depth -= 1;
                    if depth == 0 {
                        close = q;
                        break;
                    }
                }
                _ => {}
            }
        }
        // Does the argument list mention a source site or tainted var?
        let mut hit: Option<(u32, String)> = None;
        for &j in &idxs[open..=close] {
            if let Some(src) = sources.iter().find(|s| s.idx == j) {
                hit = Some((src.line, src.desc.clone()));
                break;
            }
            if let Tok::Ident(v) = &toks[j].tok {
                if let Some((line, desc)) = tainted.get(v) {
                    hit = Some((*line, format!("{desc} via `{v}`")));
                    break;
                }
            }
        }
        if let Some((src_line, src_desc)) = hit {
            diags.push(Diagnostic::new(
                &f.path,
                toks[i].line,
                "determinism-taint",
                Severity::Error,
                format!(
                    "{src_desc} (line {src_line}) flows into {sink_desc}: the §1.5 \
                     byte-reproducibility guarantee (differential bit-identity suite) \
                     breaks on re-run"
                ),
                "derive the value from a deterministic ordering (sort keys, BTreeMap, \
                 the bit-replay helpers), or keep nondeterminism out of verified state"
                    .into(),
            ));
        }
    }
    diags
}

/// `.reduce(` on a parallel-iterator chain with a non-integer identity:
/// flagged directly. Returns the diagnostic if it fires.
fn check_par_reduce(f: &SourceFile, idxs: &[usize], p: usize) -> Option<Diagnostic> {
    let toks = &f.tokens;
    let at = |q: usize| idxs.get(q).map(|&i| &toks[i].tok);
    let i = idxs[p];
    if p == 0
        || !matches!(at(p - 1), Some(Tok::Punct('.')))
        || !matches!(at(p + 1), Some(Tok::Punct('(')))
    {
        return None;
    }
    // A rayon chain: some `par_*` / `into_par_iter` adapter upstream in
    // the same receiver chain. Walk backwards, skipping balanced groups
    // (closure bodies with braces, call argument lists), stopping at a
    // statement boundary or on leaving the chain's own sub-expression.
    let mut par = false;
    let mut q = p;
    let mut depth = 0i32;
    let mut steps = 0;
    while q > 0 && steps < 400 {
        q -= 1;
        steps += 1;
        match at(q) {
            Some(Tok::Punct('}')) | Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => depth += 1,
            Some(Tok::Punct('{')) | Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            Some(Tok::Punct(';')) | Some(Tok::Punct(',')) if depth == 0 => break,
            Some(Tok::Ident(s))
                if depth == 0 && (s.starts_with("par_") || s == "into_par_iter") =>
            {
                par = true;
                break;
            }
            _ => {}
        }
    }
    if !par {
        return None;
    }
    // Identity argument: `|| 0u64` or a leading integer literal means
    // an order-immune integer reduction — skip.
    let id_start = p + 2;
    let int_identity = match at(id_start) {
        Some(Tok::Int(_)) => true,
        Some(Tok::Punct('|')) => {
            matches!(at(id_start + 1), Some(Tok::Punct('|')))
                && matches!(at(id_start + 2), Some(Tok::Int(_)))
        }
        _ => false,
    };
    if int_identity {
        return None;
    }
    Some(Diagnostic::new(
        &f.path,
        toks[i].line,
        "determinism-taint",
        Severity::Error,
        "unordered parallel `reduce` with a non-integer identity: rayon's \
         work-stealing split makes FP reduction order (and thus the result's \
         low bits) run-dependent"
            .to_string(),
        "use an integer identity, a deterministic fixed-split reduction (the \
         bit-replay helpers), or document the replay obligation with a pragma"
            .into(),
    ))
}

/// The variable a statement binds (`let [mut] x = ...`) or assigns
/// (`x = ...`, `x += ...`), if any.
fn stmt_target(f: &SourceFile, idxs: &[usize], s: usize, e: usize) -> Option<String> {
    let toks = &f.tokens;
    let at = |q: usize| {
        if q < e {
            idxs.get(q).map(|&i| &toks[i].tok)
        } else {
            None
        }
    };
    if matches!(at(s), Some(Tok::Ident(k)) if k == "let") {
        let mut q = s + 1;
        if matches!(at(q), Some(Tok::Ident(k)) if k == "mut") {
            q += 1;
        }
        if let Some(Tok::Ident(v)) = at(q) {
            return Some(v.clone());
        }
        return None;
    }
    // `for x in <tainted iterable>` binds x per element.
    if matches!(at(s), Some(Tok::Ident(k)) if k == "for") {
        if let Some(Tok::Ident(v)) = at(s + 1) {
            if matches!(at(s + 2), Some(Tok::Ident(k)) if k == "in") {
                return Some(v.clone());
            }
        }
        return None;
    }
    // `x.push(tainted)` & co.: building a container from tainted data
    // taints the container.
    if let Some(Tok::Ident(v)) = at(s) {
        if matches!(at(s + 1), Some(Tok::Punct('.')))
            && matches!(at(s + 2), Some(Tok::Ident(_)))
            && matches!(at(s + 3), Some(Tok::Punct('(')))
        {
            return Some(v.clone());
        }
    }
    // `x = ...` / `x op= ...` (not `x == ...`).
    if let Some(Tok::Ident(v)) = at(s) {
        let mut q = s + 1;
        if matches!(at(q), Some(Tok::Punct(c)) if matches!(c, '+' | '-' | '*' | '/')) {
            q += 1;
        }
        if matches!(at(q), Some(Tok::Punct('='))) && !matches!(at(q + 1), Some(Tok::Punct('='))) {
            return Some(v.clone());
        }
    }
    None
}

/// Does the statement's expression mention a source site or a tainted
/// variable? Returns the originating (line, description).
fn stmt_taint(
    f: &SourceFile,
    idxs: &[usize],
    s: usize,
    e: usize,
    sources: &[TaintSource],
    tainted: &BTreeMap<String, (u32, String)>,
) -> Option<(u32, String)> {
    let toks = &f.tokens;
    for (q, &j) in idxs.iter().enumerate().take(e).skip(s) {
        if let Some(src) = sources.iter().find(|src| src.idx == j) {
            return Some((src.line, src.desc.clone()));
        }
        if let Tok::Ident(v) = &toks[j].tok {
            // The target itself appearing on the RHS is fine to match:
            // `x += tainted` re-taints x, harmlessly.
            if q > s {
                if let Some(t) = tainted.get(v) {
                    return Some(t.clone());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/dpf-suite/src/apps/demo.rs", src);
        check_determinism_taint(&f)
    }

    #[test]
    fn hash_iteration_feeding_verify_is_flagged() {
        let d = lint(
            "fn check(n: usize) -> Verify {\n\
             let mut m: HashMap<usize, f64> = HashMap::new();\n\
             m.insert(n, 1.0);\n\
             let worst = m.values().fold(0.0, |a, b| a + b);\n\
             Verify::check(\"worst\", worst, 1e-9)\n\
             }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "determinism-taint");
        assert!(d[0].message.contains("hash-order iteration over `m`"));
        assert!(d[0].message.contains("Verify"));
    }

    #[test]
    fn hash_param_for_loop_into_serialization_is_flagged() {
        let d = lint(
            "fn dump(rows: HashMap<String, u64>) {\n\
             let mut out = Vec::new();\n\
             for r in rows { out.push(r); }\n\
             write_atomic(&path, &render_json(&out));\n\
             }",
        );
        assert!(!d.is_empty(), "{d:?}");
        assert!(d[0].message.contains("rows"));
    }

    #[test]
    fn sorted_hash_access_is_clean() {
        // Iteration taints, but sorting before the sink is the fix...
        // at this analysis depth the taint survives `.sort()` on the
        // same variable only if rebound; a BTreeMap never taints.
        let d = lint(
            "fn check(n: usize) -> Verify {\n\
             let m: BTreeMap<usize, f64> = BTreeMap::new();\n\
             let worst = m.values().fold(0.0, |a, b| a + b);\n\
             Verify::check(\"worst\", worst, 1e-9)\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn thread_id_into_meter_is_flagged() {
        let d = lint(
            "fn tag(meter: &LinkMeter) {\n\
             let id = thread::current().id();\n\
             meter.record_origin(id);\n\
             }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("thread id"));
    }

    #[test]
    fn clock_read_outside_sink_is_clean() {
        let d = lint("fn pace() { let t0 = Instant::now(); spin_until(t0 + step); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn clock_read_into_verify_is_flagged() {
        let d = lint(
            "fn check() -> Verify { let t = Instant::now().elapsed().as_secs_f64(); Verify::check(\"t\", t, 0.0) }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn par_reduce_float_identity_is_flagged_integer_is_not() {
        let d = lint(
            "fn dot(a: &[f64]) -> f64 { a.par_iter().map(|x| x * x).reduce(|| 0.0, |p, q| p + q) }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("unordered parallel `reduce`"));
        let d2 = lint(
            "fn count(a: &[u64]) -> u64 { a.par_iter().map(|x| x + 1).reduce(|| 0u64, |p, q| p + q) }",
        );
        assert!(d2.is_empty(), "{d2:?}");
        // Sequential reduce is not rayon's problem.
        let d3 = lint("fn s(a: &[f64]) -> f64 { a.iter().copied().reduce(|p, q| p + q).unwrap() }");
        assert!(d3.is_empty(), "{d3:?}");
    }
}
