//! Control-flow rules over the brace tree: **collective-parity** and
//! **lock-order**.
//!
//! * collective-parity — inside `run_workers` worker closures and the
//!   `*_exec` protocol layer, a collective operation (barrier, the
//!   `*_exec` protocols, the recovery rendezvous) reached under a
//!   rank-dependent branch with no matching call on the sibling branch
//!   is a *static* deadlock: every worker must arrive or none may. The
//!   runtime heartbeat detector only sees this class as a 2-second
//!   stall with a wait-for-graph dump; here it is a compile gate.
//!   Point-to-point `send`/`recv_from` are deliberately out of scope —
//!   asymmetric rank-0 sends (e.g. `broadcast_scalar_exec`) are the
//!   legitimate building blocks of the protocols.
//!
//! * lock-order — extract the lock-acquisition graph (which guards are
//!   held when another is taken) across all functions of a file and
//!   report pairwise ordering inversions. Guard lifetimes follow
//!   edition-2021 semantics: a `let`-bound guard lives to the end of
//!   its block; a temporary in an `if` condition or `match` scrutinee
//!   lives through the *whole* construct (the classic pre-2024
//!   footgun), and any other temporary dies at its statement's `;`.

use crate::ast::{self, Block, Node, Span};
use crate::lex::Tok;
use crate::{Diagnostic, Severity, SourceFile};
use std::collections::BTreeMap;

// ---------------------------------------------------- collective parity

/// Operations where every worker of the gang must participate.
const COLLECTIVES: &[&str] = &[
    "barrier",
    "heal_bar_wait",
    "fold_exec",
    "pull_exec",
    "route_exec",
    "axis_exec",
    "broadcast_scalar_exec",
    "run_workers",
];

fn is_call(f: &SourceFile, i: usize) -> bool {
    matches!(f.tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
}

/// Collective call sites `(name, line)` within a token span.
fn collective_calls(f: &SourceFile, span: Span) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in span.start..span.end.min(f.tokens.len()) {
        if let Tok::Ident(name) = &f.tokens[i].tok {
            if COLLECTIVES.contains(&name.as_str()) && is_call(f, i) {
                out.push((name.clone(), f.tokens[i].line));
            }
        }
    }
    out
}

/// Does the span mention a rank-like identifier (`rank`, `wrank`,
/// `my_rank`, ...)? Worker closures universally bind the gang index
/// under a `rank`-suffixed name, so this is the divergence signal.
fn mentions_rank(f: &SourceFile, span: Span) -> bool {
    f.tokens[span.start..span.end.min(f.tokens.len())]
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s.to_ascii_lowercase().contains("rank")))
}

/// Regions where collective parity must hold: every `run_workers(...)`
/// argument list (the worker closure lives there) and the body of every
/// `*_exec` protocol function.
fn parity_regions(f: &SourceFile) -> Vec<(String, Span)> {
    let mut out = Vec::new();
    for i in 0..f.tokens.len() {
        if matches!(&f.tokens[i].tok, Tok::Ident(s) if s == "run_workers") && is_call(f, i) {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < f.tokens.len() {
                match &f.tokens[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                        depth -= 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            out.push((
                "run_workers closure".to_string(),
                Span {
                    start: i + 2,
                    end: j,
                },
            ));
        }
    }
    // `*_exec` function bodies, from the enclosing-fn index.
    let mut ranges: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    for (i, enc) in f.enclosing.iter().enumerate() {
        if let Some(k) = enc {
            if f.fns[*k].name.ends_with("_exec") {
                let e = ranges.entry(*k).or_insert((i, i));
                e.1 = i;
            }
        }
    }
    for (k, (lo, hi)) in ranges {
        out.push((
            format!("fn {}", f.fns[k].name),
            Span {
                start: lo,
                end: hi + 1,
            },
        ));
    }
    out
}

/// First exit token (`return`/`break`/`continue`) in a branch that
/// actually leaves the region: `break`/`continue` inside a loop nested
/// *within* the branch only exits that loop, so tokens inside nested
/// loop spans are skipped.
fn first_exit(f: &SourceFile, node: &Node) -> Option<(String, u32)> {
    match node {
        Node::Block(b) => first_exit_in_block(f, b),
        Node::If(n) => first_exit_in_block(f, &n.then_branch)
            .or_else(|| n.else_branch.as_deref().and_then(|e| first_exit(f, e))),
        _ => None,
    }
}

fn first_exit_in_block(f: &SourceFile, block: &Block) -> Option<(String, u32)> {
    let mut loop_spans: Vec<Span> = Vec::new();
    ast::walk(block, &mut |n| {
        if let Node::Loop(l) = n {
            loop_spans.push(l.span);
        }
    });
    let span = block.span;
    for i in span.start..span.end.min(f.tokens.len()) {
        if loop_spans.iter().any(|l| l.contains(i)) {
            continue;
        }
        if let Tok::Ident(s) = &f.tokens[i].tok {
            if s == "return" || s == "break" || s == "continue" {
                return Some((s.clone(), f.tokens[i].line));
            }
        }
    }
    None
}

/// A per-collective dynamic execution-count interval `[min, max]` for
/// one region of code: exact on straight-line code, widened through
/// branches (`min` of either side .. `max` of either side) and loops
/// (at-least-once assumed when the body participates). Two sibling
/// branches diverge only when some collective's intervals are
/// *disjoint* — a balanced `if` nested inside one branch (static count
/// 2, dynamic count 1) therefore never trips its parent.
type CountRange = BTreeMap<String, (u64, u64)>;

/// "Unbounded" loop iterations, kept finite so arithmetic stays simple.
const MANY: u64 = 1 << 30;

fn range_of_span(f: &SourceFile, span: Span) -> CountRange {
    let mut m = CountRange::new();
    for (name, _) in collective_calls(f, span) {
        let e = m.entry(name).or_insert((0, 0));
        e.0 += 1;
        e.1 += 1;
    }
    m
}

fn merge_seq(into: &mut CountRange, other: CountRange) {
    for (name, (lo, hi)) in other {
        let e = into.entry(name).or_insert((0, 0));
        e.0 = e.0.saturating_add(lo);
        e.1 = e.1.saturating_add(hi);
    }
}

fn merge_alt(branches: Vec<CountRange>) -> CountRange {
    let mut out = CountRange::new();
    let mut names: Vec<String> = branches.iter().flat_map(|b| b.keys().cloned()).collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for b in &branches {
            let (l, h) = b.get(&name).copied().unwrap_or((0, 0));
            lo = lo.min(l);
            hi = hi.max(h);
        }
        out.insert(name, (lo, hi));
    }
    out
}

fn range_of_node(f: &SourceFile, node: &Node) -> CountRange {
    match node {
        Node::Leaf(s) => range_of_span(f, *s),
        Node::Block(b) => range_of_block(f, b),
        Node::If(n) => {
            let mut header = range_of_span(f, n.cond);
            let then_r = range_of_block(f, &n.then_branch);
            let else_r = n
                .else_branch
                .as_deref()
                .map(|e| range_of_node(f, e))
                .unwrap_or_default();
            merge_seq(&mut header, merge_alt(vec![then_r, else_r]));
            header
        }
        Node::Match(n) => {
            let mut header = range_of_span(f, n.scrutinee);
            let arms: Vec<CountRange> = n.arms.iter().map(|a| range_of_node(f, &a.body)).collect();
            if !arms.is_empty() {
                merge_seq(&mut header, merge_alt(arms));
            }
            header
        }
        Node::Loop(n) => {
            // A loop whose body participates is assumed to run at least
            // once and possibly many times: a rank-gated loop around a
            // barrier is still a divergence.
            let mut header = range_of_span(f, n.header);
            let mut body = range_of_block(f, &n.body);
            for (_, (_, hi)) in body.iter_mut() {
                if *hi > 0 {
                    *hi = MANY;
                }
            }
            merge_seq(&mut header, body);
            header
        }
    }
}

fn range_of_block(f: &SourceFile, b: &Block) -> CountRange {
    let mut out = CountRange::new();
    for child in &b.children {
        merge_seq(&mut out, range_of_node(f, child));
    }
    out
}

/// Names whose intervals in `a` and `b` are disjoint (true divergence).
fn disjoint_names(a: &CountRange, b: &CountRange) -> Vec<String> {
    let mut names: Vec<&String> = a.keys().chain(b.keys()).collect();
    names.sort_unstable();
    names.dedup();
    names
        .into_iter()
        .filter(|name| {
            let (al, ah) = a.get(*name).copied().unwrap_or((0, 0));
            let (bl, bh) = b.get(*name).copied().unwrap_or((0, 0));
            ah < bl || bh < al
        })
        .cloned()
        .collect()
}

/// The collective-parity rule.
pub fn check_collective_parity(f: &SourceFile) -> Vec<Diagnostic> {
    let regions = parity_regions(f);
    if regions.is_empty() {
        return Vec::new();
    }
    let tree = ast::parse(&f.tokens);
    let mut nodes: Vec<&Node> = Vec::new();
    ast::walk(&tree, &mut |n| nodes.push(n));
    // `else if` arms are branches of their chain head, not independent
    // rank gates: skip them at top level (the chain walk covers them).
    let mut chained: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for node in &nodes {
        if let Node::If(n) = node {
            if let Some(Node::If(e)) = n.else_branch.as_deref() {
                chained.insert(e.span.start);
            }
        }
    }
    let mut diags = Vec::new();
    let mut seen: std::collections::BTreeSet<(u32, String)> = std::collections::BTreeSet::new();
    for (label, region) in &regions {
        for node in &nodes {
            if !region.encloses(node.span()) {
                continue;
            }
            match node {
                Node::If(n) if !chained.contains(&n.span.start) => {
                    // Flatten the whole else-if chain into branches.
                    let mut branch_blocks: Vec<&Block> = Vec::new();
                    let mut rank_dep = false;
                    let mut has_final_else = false;
                    let mut cur = n;
                    loop {
                        rank_dep |= mentions_rank(f, cur.cond);
                        branch_blocks.push(&cur.then_branch);
                        match cur.else_branch.as_deref() {
                            Some(Node::If(e)) => cur = e,
                            Some(Node::Block(b)) => {
                                branch_blocks.push(b);
                                has_final_else = true;
                                break;
                            }
                            _ => break,
                        }
                    }
                    if !rank_dep {
                        continue;
                    }
                    let mut ranges: Vec<CountRange> =
                        branch_blocks.iter().map(|b| range_of_block(f, b)).collect();
                    if !has_final_else {
                        ranges.push(CountRange::new()); // the implicit empty else
                    }
                    let mut flagged = false;
                    for bi in 0..ranges.len() {
                        for bj in bi + 1..ranges.len() {
                            for name in disjoint_names(&ranges[bi], &ranges[bj]) {
                                // Anchor at the first call site of the
                                // richer branch.
                                let richer = if ranges[bi].get(&name).map_or(0, |r| r.0)
                                    >= ranges[bj].get(&name).map_or(0, |r| r.0)
                                {
                                    bi
                                } else {
                                    bj
                                };
                                let line = branch_blocks
                                    .get(richer)
                                    .and_then(|b| {
                                        collective_calls(f, b.span)
                                            .into_iter()
                                            .find(|(n2, _)| *n2 == name)
                                            .map(|(_, l)| l)
                                    })
                                    .unwrap_or(n.line);
                                if seen.insert((line, name.clone())) {
                                    flagged = true;
                                    diags.push(Diagnostic::new(
                                        &f.path,
                                        line,
                                        "collective-parity",
                                        Severity::Error,
                                        format!(
                                            "collective `{name}` is reached on one branch \
                                             of the rank-dependent `if` at line {} but not \
                                             on a sibling branch ({label}): ranks taking \
                                             the other path never arrive and the gang \
                                             deadlocks",
                                            n.line
                                        ),
                                        "hoist the collective out of the branch, or make \
                                         every rank execute a matching call"
                                            .into(),
                                    ));
                                }
                            }
                        }
                    }
                    if !flagged {
                        // Balanced collectives: still check for a
                        // rank-dependent early exit that skips
                        // collectives later in the region.
                        check_exit_divergence(f, n, *region, label, &mut seen, &mut diags);
                    }
                }
                Node::Match(n) => {
                    let rank_dep = mentions_rank(f, n.scrutinee)
                        || n.arms.iter().any(|a| mentions_rank(f, a.pat));
                    if !rank_dep || n.arms.is_empty() {
                        continue;
                    }
                    let ranges: Vec<CountRange> =
                        n.arms.iter().map(|a| range_of_node(f, &a.body)).collect();
                    'outer: for ai in 0..ranges.len() {
                        for aj in ai + 1..ranges.len() {
                            if let Some(name) = disjoint_names(&ranges[ai], &ranges[aj]).first() {
                                let richer = if ranges[ai].get(name).map_or(0, |r| r.0)
                                    >= ranges[aj].get(name).map_or(0, |r| r.0)
                                {
                                    ai
                                } else {
                                    aj
                                };
                                let line = collective_calls(f, n.arms[richer].body.span())
                                    .into_iter()
                                    .find(|(n2, _)| n2 == name)
                                    .map(|(_, l)| l)
                                    .unwrap_or(n.line);
                                if seen.insert((line, name.clone())) {
                                    diags.push(Diagnostic::new(
                                        &f.path,
                                        line,
                                        "collective-parity",
                                        Severity::Error,
                                        format!(
                                            "match on a rank-dependent value at line {} \
                                             reaches collective `{name}` in the arm at \
                                             line {} but not in the arm at line {} \
                                             ({label}): ranks taking the bare arm never \
                                             arrive",
                                            n.line,
                                            n.arms[richer].line,
                                            n.arms[if richer == ai { aj } else { ai }].line
                                        ),
                                        "give every arm the same collective sequence, or \
                                         lift the collective out of the match"
                                            .into(),
                                    ));
                                }
                                break 'outer;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    diags
}

/// A rank-dependent branch that exits early (return/break/continue)
/// while collectives remain later in the region strands the other
/// ranks at those collectives.
fn check_exit_divergence(
    f: &SourceFile,
    n: &ast::IfNode,
    region: Span,
    label: &str,
    seen: &mut std::collections::BTreeSet<(u32, String)>,
    diags: &mut Vec<Diagnostic>,
) {
    let then_exit = first_exit_in_block(f, &n.then_branch);
    let else_exit = n.else_branch.as_deref().and_then(|e| first_exit(f, e));
    let exit = match (then_exit, else_exit) {
        (Some(e), None) => e,
        (None, Some(e)) => e,
        _ => return, // symmetric (both or neither exit)
    };
    let rest = Span {
        start: n.span.end,
        end: region.end,
    };
    let later = collective_calls(f, rest);
    if let Some((name, cline)) = later.first() {
        let (kw, line) = exit;
        if seen.insert((line, name.clone())) {
            diags.push(Diagnostic::new(
                &f.path,
                line,
                "collective-parity",
                Severity::Error,
                format!(
                    "rank-dependent `{kw}` at line {line} skips collective `{name}` at \
                     line {cline} ({label}): exiting ranks never arrive and the rest \
                     of the gang blocks forever"
                ),
                "exit only after the remaining collectives, or exit on every rank".into(),
            ));
        }
    }
}

// ----------------------------------------------------------- lock order

/// One lock acquisition: which lock, where, and how long the guard
/// lives (token index one past the last held position).
#[derive(Debug)]
struct Acquisition {
    id: String,
    idx: usize,
    line: u32,
    scope_end: usize,
}

/// The lock-order rule: build the held-while-acquiring graph for one
/// file and report pairwise inversions.
pub fn check_lock_order(f: &SourceFile) -> Vec<Diagnostic> {
    let acqs = find_acquisitions(f);
    if acqs.len() < 2 {
        return Vec::new();
    }
    // edge (held → taken) -> (line taken under hold, line of hold)
    let mut edges: BTreeMap<(String, String), (u32, u32)> = BTreeMap::new();
    for a in &acqs {
        for b in &acqs {
            if b.idx > a.idx && b.idx < a.scope_end && b.id != a.id {
                edges
                    .entry((a.id.clone(), b.id.clone()))
                    .or_insert((b.line, a.line));
            }
        }
    }
    let mut diags = Vec::new();
    for ((x, y), &(xy_line, x_line)) in &edges {
        if x >= y {
            continue; // report each unordered pair once, from its sorted side
        }
        if let Some(&(yx_line, y_line)) = edges.get(&(y.clone(), x.clone())) {
            // Anchor at the later-in-file acquisition so a pragma sits
            // next to one concrete site.
            let line = xy_line.max(yx_line);
            diags.push(Diagnostic::new(
                &f.path,
                line,
                "lock-order",
                Severity::Error,
                format!(
                    "lock ordering inversion between `{x}` and `{y}`: `{y}` is taken \
                     while holding `{x}` (line {x_line} → {xy_line}) but `{x}` is taken \
                     while holding `{y}` (line {y_line} → {yx_line}); two threads \
                     interleaving these paths deadlock"
                ),
                "pick one acquisition order for this lock pair and use it on every path".into(),
            ));
        }
    }
    diags
}

/// Find every `Mutex`/`RwLock` acquisition (`.lock()`, and `.read()` /
/// `.write()` with empty argument lists) and compute its guard scope.
fn find_acquisitions(f: &SourceFile) -> Vec<Acquisition> {
    let toks = &f.tokens;
    // Innermost enclosing-block close index per token, by brace matching.
    let mut close_of: Vec<usize> = vec![toks.len(); toks.len()];
    {
        let mut stack: Vec<usize> = Vec::new();
        let mut opens: Vec<Option<usize>> = vec![None; toks.len()];
        for (i, t) in toks.iter().enumerate() {
            match &t.tok {
                Tok::Punct('{') => stack.push(i),
                Tok::Punct('}') => {
                    if let Some(open) = stack.pop() {
                        opens[open] = Some(i);
                    }
                }
                _ => {}
            }
        }
        let mut live: Vec<(usize, usize)> = Vec::new(); // (open, close)
        for i in 0..toks.len() {
            while let Some(&(_, c)) = live.last() {
                if i > c {
                    live.pop();
                } else {
                    break;
                }
            }
            if let Tok::Punct('{') = &toks[i].tok {
                if let Some(c) = opens[i] {
                    live.push((i, c));
                }
            }
            close_of[i] = live.last().map(|&(_, c)| c).unwrap_or(toks.len());
        }
    }
    // Construct spans whose header temporaries outlive the header:
    // if-conditions and match scrutinees hold guards through the whole
    // construct (edition-2021), while-let likewise through the loop.
    let tree = ast::parse(toks);
    let mut header_scopes: Vec<(Span, usize)> = Vec::new(); // (header, construct end)
    collect_headers(&tree, &mut header_scopes);

    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 3 < toks.len() {
        let is_acq = matches!(&toks[i].tok, Tok::Punct('.'))
            && matches!(&toks[i + 1].tok, Tok::Ident(m) if m == "lock" || m == "read" || m == "write")
            && matches!(&toks[i + 2].tok, Tok::Punct('('))
            && matches!(&toks[i + 3].tok, Tok::Punct(')'));
        if !is_acq {
            i += 1;
            continue;
        }
        let Some(id) = receiver_name(toks, i) else {
            i += 1;
            continue;
        };
        let line = toks[i + 1].line;
        let after = i + 4; // one past `()`
        let scope_end = guard_scope(f, i, after, &close_of, &header_scopes);
        out.push(Acquisition {
            id,
            idx: i + 1,
            line,
            scope_end,
        });
        i = after;
    }
    out
}

fn collect_headers(block: &Block, out: &mut Vec<(Span, usize)>) {
    let mut visit = |n: &Node| match n {
        Node::If(i) => out.push((i.cond, i.span.end)),
        Node::Match(m) => out.push((m.scrutinee, m.span.end)),
        Node::Loop(l) => out.push((l.header, l.span.end)),
        _ => {}
    };
    ast::walk(block, &mut visit);
}

/// The lock's name: the field identifier the accessor is called on,
/// skipping index expressions (`self.sup.waits[rank].lock()` → `waits`)
/// and call parentheses (`self.shelf(k).lock()` → `shelf`).
fn receiver_name(toks: &[crate::lex::Token], dot: usize) -> Option<String> {
    let mut j = dot; // points at `.`
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match &toks[j].tok {
            Tok::Ident(name) => return Some(name.clone()),
            Tok::Punct(']') | Tok::Punct(')') => {
                // Walk back over the balanced group, then continue.
                let mut depth = 1i32;
                while depth > 0 && j > 0 {
                    j -= 1;
                    match &toks[j].tok {
                        Tok::Punct(']') | Tok::Punct(')') => depth += 1,
                        Tok::Punct('[') | Tok::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
            }
            _ => return None,
        }
    }
}

/// How long the guard taken at token `dot` lives, as a token index.
fn guard_scope(
    f: &SourceFile,
    dot: usize,
    after: usize,
    close_of: &[usize],
    headers: &[(Span, usize)],
) -> usize {
    // Inside an if-condition / match-scrutinee / loop header: the
    // temporary lives through the whole construct. Pick the innermost.
    if let Some(end) = headers
        .iter()
        .filter(|(h, _)| h.contains(dot))
        .map(|&(_, e)| e)
        .min()
    {
        return end;
    }
    let toks = &f.tokens;
    // `let g = recv.lock();` (possibly `.unwrap()`/`.expect("...")`)
    // binds the guard to the enclosing block.
    let mut j = after;
    loop {
        match toks.get(j).map(|t| &t.tok) {
            Some(Tok::Punct('.')) => {
                let adapter = matches!(
                    toks.get(j + 1).map(|t| &t.tok),
                    Some(Tok::Ident(m)) if m == "unwrap" || m == "expect"
                );
                if adapter && matches!(toks.get(j + 2).map(|t| &t.tok), Some(Tok::Punct('('))) {
                    // Skip the adapter's argument group.
                    let mut depth = 0i32;
                    j += 2;
                    while j < toks.len() {
                        match &toks[j].tok {
                            Tok::Punct('(') => depth += 1,
                            Tok::Punct(')') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    j += 1;
                } else {
                    break;
                }
            }
            Some(Tok::Punct(';')) => {
                // Statement ends right after the acquisition chain: if
                // it started with `let`, the guard is named and block-
                // scoped.
                if stmt_is_let(toks, dot) {
                    return close_of[dot];
                }
                return j + 1;
            }
            _ => break,
        }
    }
    // Temporary inside a larger expression: dies at the statement `;`.
    let mut k = after;
    let mut depth = 0i32;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('}') => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            Tok::Punct(';') if depth <= 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    toks.len()
}

/// Does the statement containing token `i` begin with `let`? Scan back
/// to the previous statement boundary.
fn stmt_is_let(toks: &[crate::lex::Token], i: usize) -> bool {
    let mut j = i;
    let mut depth = 0i32;
    while j > 0 {
        j -= 1;
        match &toks[j].tok {
            Tok::Punct(')') | Tok::Punct(']') => depth += 1,
            Tok::Punct('(') | Tok::Punct('[') => depth -= 1,
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') if depth <= 0 => {
                return matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Ident(k)) if k == "let");
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/dpf-core/src/spmd.rs", src);
        let mut d = check_collective_parity(&f);
        d.extend(check_lock_order(&f));
        d
    }

    #[test]
    fn rank_gated_barrier_is_flagged() {
        let d = lint(
            "fn go() { run_workers(p, t, w, |rank, w, router| { if rank == 0 { router.barrier(); } }); }",
        );
        assert_eq!(
            d.iter().filter(|d| d.rule == "collective-parity").count(),
            1
        );
        assert!(d[0].message.contains("barrier"));
    }

    #[test]
    fn balanced_branches_are_clean() {
        let d = lint(
            "fn go() { run_workers(p, t, w, |rank, w, router| { if rank % 2 == 0 { router.barrier(); } else { router.barrier(); } }); }",
        );
        assert!(d.iter().all(|d| d.rule != "collective-parity"), "{d:?}");
    }

    #[test]
    fn rank_gated_early_return_before_barrier_is_flagged() {
        let d = lint(
            "fn go() { run_workers(p, t, w, |rank, w, router| { if rank == 1 { return; } router.barrier(); }); }",
        );
        assert_eq!(
            d.iter().filter(|d| d.rule == "collective-parity").count(),
            1
        );
        assert!(d[0].message.contains("return"));
    }

    #[test]
    fn match_arm_divergence_in_exec_fn() {
        let d =
            lint("fn fold_exec(rank: usize) { match rank { 0 => { router.barrier(); } _ => {} } }");
        assert_eq!(
            d.iter().filter(|d| d.rule == "collective-parity").count(),
            1
        );
    }

    #[test]
    fn rank_zero_point_to_point_send_is_legitimate() {
        let d = lint(
            "fn broadcast_scalar_exec(rank: usize) { if rank == 0 { router.send(1, b); } let v = router.recv_from(0); }",
        );
        assert!(d.iter().all(|d| d.rule != "collective-parity"), "{d:?}");
    }

    #[test]
    fn inverted_lock_pair_is_flagged() {
        let d = lint(
            "fn a(&self) { let d = self.deaths.lock(); let w = self.waits.lock(); }\n\
             fn b(&self) { let w = self.waits.lock(); let d = self.deaths.lock(); }",
        );
        assert_eq!(d.iter().filter(|d| d.rule == "lock-order").count(), 1);
        assert!(d[0].message.contains("deaths") && d[0].message.contains("waits"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let d = lint(
            "fn a(&self) { let d = self.deaths.lock(); let w = self.waits.lock(); }\n\
             fn b(&self) { let d = self.deaths.lock(); let w = self.waits.lock(); }",
        );
        assert!(d.iter().all(|d| d.rule != "lock-order"), "{d:?}");
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        // The first lock's guard is a temporary consumed by `.clone()`,
        // so nothing is held when the second lock is taken: no edge,
        // no inversion even against a reversed bound pair elsewhere.
        let d = lint(
            "fn a(&self) { let d = self.deaths.lock().clone(); let w = self.waits.lock(); }\n\
             fn b(&self) { let w = self.waits.lock().clone(); let d = self.deaths.lock(); }",
        );
        assert!(d.iter().all(|d| d.rule != "lock-order"), "{d:?}");
    }

    #[test]
    fn if_condition_temporary_held_through_body() {
        // Edition 2021: the scrutinee temporary lives through the if.
        let d = lint(
            "fn a(&self) { if self.waits.lock().is_none() { let d = self.deaths.lock(); } }\n\
             fn b(&self) { let d = self.deaths.lock(); let w = self.waits.lock(); }",
        );
        assert_eq!(d.iter().filter(|d| d.rule == "lock-order").count(), 1);
    }

    #[test]
    fn io_read_write_with_args_is_not_a_lock() {
        let d = lint(
            "fn a(&self) { let g = self.map.lock(); file.read(&mut buf); sock.write(&buf); }\n\
             fn b(&self) { file.read(&mut buf); let g = self.map.lock(); }",
        );
        assert!(d.iter().all(|d| d.rule != "lock-order"), "{d:?}");
    }
}
