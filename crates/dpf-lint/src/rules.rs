//! The rule catalog. Every rule is a pure function over one lexed
//! [`SourceFile`] (plus one tree-wide pass for `try-parity`'s cross-file
//! direction), so rules compose and test in isolation.
//!
//! | rule | severity | invariant |
//! |------|----------|-----------|
//! | `nan-unsafe-fold`  | error   | verify/reduction folds must use `dpf_core::nan_max`/`nan_min` (IEEE `max` drops NaN) |
//! | `untimed-clock`    | warning | `Instant::now()` only in the sanctioned metrics/harness modules (§1.5 busy/elapsed stays centralized) |
//! | `hot-path-alloc`   | warning | no `Vec::new`/`vec![`/`.collect()`/`.to_vec()` inside `*_into`/`*_exec` hot paths (PR 1 buffer-reuse discipline) |
//! | `hot-path-clone`   | warning | no `.clone()` of a `DistArray` parameter inside `*_into`/`*_exec` hot paths (a clone is a whole-block copy) |
//! | `try-parity`       | error   | every `try_*` primitive keeps its exported panicking twin, and the known comm/linalg pairs stay complete |
//! | `metered-send`     | error   | raw channel sends in `spmd.rs` only inside the LinkMeter/envelope path (`Router::send` → `transmit`/`send_ctl`/`send_recovery`) |
//! | `flop-conventions` | error   | the §1.5 FLOP-weight constants match the paper's table (add/mul 1, div/sqrt 4, log/trig 8) |
//! | `comm-inventory`   | error   | registry `patterns` fields agree with the §1.5 `COMM_INVENTORY` in dpf-suite's tables.rs (tree-wide) |
//! | `unsafe-forbid`    | error   | the repo is `unsafe`-free; any new `unsafe` needs a `// SAFETY:` comment *and* an allow pragma |
//! | `atomic-artifact`  | warning | no direct `fs::write`/`File::create` outside the atomic artifact writer (torn files break `--resume` and `dpf tables --campaign`) |
//! | `collective-parity`| error   | a collective (barrier, `*_exec`, recovery rendezvous) under a rank-dependent branch needs a matching call on every sibling path (static SPMD deadlock) |
//! | `lock-order`       | error   | every lock pair is acquired in one consistent order across a file's functions (guard lifetimes per edition 2021) |
//! | `determinism-taint`| error   | hash iteration / wall clock / thread id / unordered FP reduce must not flow into Verify, instrumentation or serialized artifacts |
//! | `registry-coverage`| error   | every `paper_versions` entry in the benchmark registry has a runnable variant or a pragma documenting the gap |

use crate::lex::Tok;
use crate::{Diagnostic, Severity, SourceFile};
use std::collections::BTreeMap;

/// One registered per-file rule.
pub struct Rule {
    /// Stable identifier used in diagnostics and pragmas.
    pub id: &'static str,
    /// One-line description for `--help` / docs.
    pub summary: &'static str,
    /// The check itself.
    pub check: fn(&SourceFile) -> Vec<Diagnostic>,
}

/// All per-file rules, in catalog order.
pub const FILE_RULES: &[Rule] = &[
    Rule {
        id: "nan-unsafe-fold",
        summary: "verify/reduction folds must use dpf_core::nan_max / nan_min",
        check: nan_unsafe_fold,
    },
    Rule {
        id: "untimed-clock",
        summary: "Instant::now() only in the sanctioned metrics/harness modules",
        check: untimed_clock,
    },
    Rule {
        id: "hot-path-alloc",
        summary: "no allocation inside *_into / *_exec hot paths",
        check: hot_path_alloc,
    },
    Rule {
        id: "hot-path-clone",
        summary: "no DistArray clones inside *_into / *_exec hot paths",
        check: hot_path_clone,
    },
    Rule {
        id: "try-parity",
        summary: "every try_* primitive keeps its exported panicking twin",
        check: try_parity_in_file,
    },
    Rule {
        id: "metered-send",
        summary: "spmd.rs channel sends go through the LinkMeter/envelope path",
        check: metered_send,
    },
    Rule {
        id: "flop-conventions",
        summary: "FLOP-weight constants match the paper's table",
        check: flop_conventions,
    },
    Rule {
        id: "unsafe-forbid",
        summary: "no unsafe without a SAFETY comment and an allow pragma",
        check: unsafe_forbid,
    },
    Rule {
        id: "atomic-artifact",
        summary: "file writes go through the atomic artifact writer",
        check: atomic_artifact,
    },
    Rule {
        id: "collective-parity",
        summary: "collectives under rank-dependent branches must have matching sibling calls",
        check: crate::flow::check_collective_parity,
    },
    Rule {
        id: "lock-order",
        summary: "lock pairs are acquired in one consistent order",
        check: crate::flow::check_lock_order,
    },
    Rule {
        id: "determinism-taint",
        summary: "nondeterminism sources must not flow into Verify/meter/artifact state",
        check: crate::taint::check_determinism_taint,
    },
    Rule {
        id: "registry-coverage",
        summary: "every registry paper_versions entry has a runnable variant or a documented gap",
        check: registry_coverage,
    },
];

fn ident(t: Option<&crate::lex::Token>, s: &str) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Ident(i)) if i == s)
}

fn ident_in(t: Option<&crate::lex::Token>, set: &[&str]) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Ident(i)) if set.contains(&i.as_str()))
}

fn punct(t: Option<&crate::lex::Token>, c: char) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// `a::b` starting at token `i` (four tokens: Ident, ':', ':', Ident).
fn path2(f: &SourceFile, i: usize, heads: &[&str], tails: &[&str]) -> bool {
    ident_in(f.tokens.get(i), heads)
        && punct(f.tokens.get(i + 1), ':')
        && punct(f.tokens.get(i + 2), ':')
        && ident_in(f.tokens.get(i + 3), tails)
}

// ------------------------------------------------------ nan-unsafe-fold

/// Spans (token-index ranges) of `.fold(` / `.reduce(` argument lists
/// whose seed is a floating literal (or an `f64::`/`f32::` constant) —
/// the classic worst-error fold shape.
fn float_fold_spans(f: &SourceFile) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..f.tokens.len() {
        if !(punct(f.tokens.get(i), '.')
            && ident_in(f.tokens.get(i + 1), &["fold", "reduce"])
            && punct(f.tokens.get(i + 2), '('))
        {
            continue;
        }
        let mut k = i + 3;
        // Skip a leading unary minus on the seed.
        if punct(f.tokens.get(k), '-') {
            k += 1;
        }
        let float_seed = matches!(f.tokens.get(k).map(|t| &t.tok), Some(Tok::Float(_)))
            || ident_in(f.tokens.get(k), &["f64", "f32"]);
        if !float_seed {
            continue;
        }
        // Find the matching close paren of the fold call.
        let mut depth = 1usize;
        let mut j = i + 3;
        while j < f.tokens.len() && depth > 0 {
            if punct(f.tokens.get(j), '(') {
                depth += 1;
            } else if punct(f.tokens.get(j), ')') {
                depth -= 1;
            }
            j += 1;
        }
        spans.push((i + 3, j));
    }
    spans
}

fn nan_unsafe_fold(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let spans = float_fold_spans(f);
    for i in 0..f.tokens.len() {
        // `f64::max` / `f32::min` as a path — NaN-dropping wherever it
        // appears (typically passed to a fold).
        if path2(f, i, &["f64", "f32"], &["max", "min"]) {
            out.push(Diagnostic::new(
                &f.path,
                f.tokens[i].line,
                "nan-unsafe-fold",
                Severity::Error,
                "IEEE f64::max/min silently drops NaN, so a poisoned buffer can fold to a passing metric"
                    .into(),
                "use dpf_core::nan_max / dpf_core::nan_min".into(),
            ));
            continue;
        }
        // `.max(` / `.min(` method call.
        if !(punct(f.tokens.get(i), '.')
            && ident_in(f.tokens.get(i + 1), &["max", "min"])
            && punct(f.tokens.get(i + 2), '('))
        {
            continue;
        }
        // Integer clamps (`.max(1)`, `.min(8)`) are fine anywhere, and
        // zero-argument `.max()`/`.min()` is `Iterator::max` — it needs
        // `Ord`, which f64 does not implement, so it cannot drop NaN.
        if matches!(f.tokens.get(i + 3).map(|t| &t.tok), Some(Tok::Int(_)))
            || punct(f.tokens.get(i + 3), ')')
        {
            continue;
        }
        let in_verify = f
            .fn_at(i)
            .is_some_and(|s| s.returns_verify || s.name.contains("verify"));
        let in_float_fold = spans.iter().any(|&(a, b)| i >= a && i < b);
        if in_verify || in_float_fold {
            out.push(Diagnostic::new(
                &f.path,
                f.tokens[i].line,
                "nan-unsafe-fold",
                Severity::Error,
                "bare .max()/.min() in verify/reduction code drops NaN (0.0f64.max(NAN) == 0.0)"
                    .into(),
                "fold with dpf_core::nan_max / dpf_core::nan_min instead".into(),
            ));
        }
    }
    out
}

// -------------------------------------------------------- untimed-clock

/// Modules allowed to read the wall clock: the instrumentation layer
/// that owns §1.5 busy/elapsed accounting and the watchdog harness that
/// owns attempt timeouts. Everything else must go through them.
const CLOCK_SANCTIONED: &[&str] = &["dpf-core/src/instr.rs", "dpf-suite/src/harness.rs"];

fn untimed_clock(f: &SourceFile) -> Vec<Diagnostic> {
    if CLOCK_SANCTIONED.iter().any(|m| f.path.ends_with(m)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..f.tokens.len() {
        if path2(f, i, &["Instant", "SystemTime"], &["now"]) {
            out.push(Diagnostic::new(
                &f.path,
                f.tokens[i].line,
                "untimed-clock",
                Severity::Warning,
                "raw clock read outside the metrics/harness layer fragments §1.5 busy/elapsed accounting"
                    .into(),
                "time phases via Ctx::busy / the Instr layer, or justify with an allow pragma"
                    .into(),
            ));
        }
    }
    out
}

// ------------------------------------------------------- hot-path-alloc

/// Token spans of `run_workers(...)` call argument lists. The worker
/// closure passed to `run_workers` is SPMD *protocol* code: message
/// payloads are owned frames handed to the router, so allocating them
/// is the point, not a hot-path leak. The rule guards the numeric path
/// around the protocol, not the protocol itself.
fn worker_closure_spans(f: &SourceFile) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..f.tokens.len() {
        if !(ident(f.tokens.get(i), "run_workers") && punct(f.tokens.get(i + 1), '(')) {
            continue;
        }
        let mut depth = 1usize;
        let mut j = i + 2;
        while j < f.tokens.len() && depth > 0 {
            if punct(f.tokens.get(j), '(') {
                depth += 1;
            } else if punct(f.tokens.get(j), ')') {
                depth -= 1;
            }
            j += 1;
        }
        spans.push((i + 2, j));
    }
    spans
}

fn hot_path_alloc(f: &SourceFile) -> Vec<Diagnostic> {
    let protocol = worker_closure_spans(f);
    let mut out = Vec::new();
    let mut flag = |i: usize, what: &str| {
        out.push(Diagnostic::new(
            &f.path,
            f.tokens[i].line,
            "hot-path-alloc",
            Severity::Warning,
            format!("{what} allocates inside a zero-allocation hot path"),
            "reuse a caller buffer or Ctx::scratch from the BufferPool".into(),
        ));
    };
    for i in 0..f.tokens.len() {
        let Some(span) = f.fn_at(i) else { continue };
        if !(span.name.ends_with("_into") || span.name.ends_with("_exec")) {
            continue;
        }
        if protocol.iter().any(|&(a, b)| i >= a && i < b) {
            continue;
        }
        if path2(f, i, &["Vec"], &["new", "with_capacity"]) {
            flag(i, "Vec::new/with_capacity");
        } else if ident(f.tokens.get(i), "vec") && punct(f.tokens.get(i + 1), '!') {
            flag(i, "vec![]");
        } else if punct(f.tokens.get(i), '.') && ident(f.tokens.get(i + 1), "collect") {
            flag(i, ".collect()");
        } else if punct(f.tokens.get(i), '.')
            && ident(f.tokens.get(i + 1), "to_vec")
            && punct(f.tokens.get(i + 2), '(')
        {
            flag(i, ".to_vec()");
        }
    }
    out
}

// ------------------------------------------------------- hot-path-clone

/// `DistArray`-typed parameter names per `*_into`/`*_exec` fn in the
/// file. Heuristic: inside the fn's parenthesized parameter list, an
/// `ident :` at top nesting level (not the `::` of a path) starts a
/// parameter whose type region runs to the next top-level parameter or
/// the closing paren; the parameter counts if `DistArray` appears
/// anywhere in that region.
fn hot_fn_distarray_params(f: &SourceFile) -> BTreeMap<String, Vec<String>> {
    let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for i in 0..f.tokens.len() {
        if !ident(f.tokens.get(i), "fn") {
            continue;
        }
        let Some(Tok::Ident(name)) = f.tokens.get(i + 1).map(|t| &t.tok) else {
            continue;
        };
        if !(name.ends_with("_into") || name.ends_with("_exec")) {
            continue;
        }
        // Skip any generic parameter list between the name and `(`.
        let mut j = i + 2;
        while j < f.tokens.len() && !punct(f.tokens.get(j), '(') {
            if punct(f.tokens.get(j), '{') {
                break;
            }
            j += 1;
        }
        if !punct(f.tokens.get(j), '(') {
            continue;
        }
        let mut depth = 1usize;
        let mut k = j + 1;
        let mut current: Option<String> = None;
        while k < f.tokens.len() && depth > 0 {
            if punct(f.tokens.get(k), '(') {
                depth += 1;
            } else if punct(f.tokens.get(k), ')') {
                depth -= 1;
            } else if depth == 1 {
                if let Some(Tok::Ident(p)) = f.tokens.get(k).map(|t| &t.tok) {
                    if punct(f.tokens.get(k + 1), ':') && !punct(f.tokens.get(k + 2), ':') {
                        current = Some(p.clone());
                    } else if p == "DistArray" {
                        if let Some(cur) = &current {
                            map.entry(name.clone()).or_default().push(cur.clone());
                        }
                    }
                }
            }
            k += 1;
        }
    }
    map
}

fn hot_path_clone(f: &SourceFile) -> Vec<Diagnostic> {
    let params = hot_fn_distarray_params(f);
    if params.is_empty() {
        return Vec::new();
    }
    let protocol = worker_closure_spans(f);
    let mut out = Vec::new();
    for i in 0..f.tokens.len() {
        let Some(Tok::Ident(var)) = f.tokens.get(i).map(|t| &t.tok) else {
            continue;
        };
        // `var.clone(` — a chained receiver like `x.layout().clone()`
        // never matches (the token before `.clone` is `)`), so cheap
        // clones of metadata stay legal.
        if !(punct(f.tokens.get(i + 1), '.')
            && ident(f.tokens.get(i + 2), "clone")
            && punct(f.tokens.get(i + 3), '('))
        {
            continue;
        }
        let Some(span) = f.fn_at(i) else { continue };
        if !(span.name.ends_with("_into") || span.name.ends_with("_exec")) {
            continue;
        }
        if protocol.iter().any(|&(a, b)| i >= a && i < b) {
            continue;
        }
        let Some(ps) = params.get(&span.name) else {
            continue;
        };
        if !ps.iter().any(|p| p == var) {
            continue;
        }
        out.push(Diagnostic::new(
            &f.path,
            f.tokens[i].line,
            "hot-path-clone",
            Severity::Warning,
            format!("`{var}.clone()` copies a whole DistArray inside a zero-allocation hot path"),
            "borrow the input, or reuse a pooled buffer via DistArray::scratch".into(),
        ));
    }
    out
}

// ----------------------------------------------------------- try-parity

/// All `pub fn` names in a file, with the line each is declared on.
/// (`pub(crate)` and friends count: the parity contract is about the
/// crate keeping both spellings callable, not about visibility width.)
pub fn public_fns(f: &SourceFile) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in 0..f.tokens.len() {
        if !ident(f.tokens.get(i), "pub") {
            continue;
        }
        let mut j = i + 1;
        // Skip a visibility scope like `(crate)` / `(super)`.
        if punct(f.tokens.get(j), '(') {
            while j < f.tokens.len() && !punct(f.tokens.get(j), ')') {
                j += 1;
            }
            j += 1;
        }
        if ident(f.tokens.get(j), "fn") {
            if let Some(Tok::Ident(name)) = f.tokens.get(j + 1).map(|t| &t.tok) {
                out.push((name.clone(), f.tokens[j + 1].line));
            }
        }
    }
    out
}

fn try_parity_in_file(f: &SourceFile) -> Vec<Diagnostic> {
    let fns = public_fns(f);
    let names: std::collections::BTreeSet<&str> = fns.iter().map(|(n, _)| n.as_str()).collect();
    let mut out = Vec::new();
    for (name, line) in &fns {
        if let Some(base) = name.strip_prefix("try_") {
            if !names.contains(base) {
                out.push(Diagnostic::new(
                    &f.path,
                    *line,
                    "try-parity",
                    Severity::Error,
                    format!("`{name}` has no exported panicking twin `{base}` in this file"),
                    format!("keep `pub fn {base}` next to `pub fn {name}` (PR 2 parity contract)"),
                ));
            }
        }
    }
    out
}

/// The comm/linalg/fft primitives that PR 2 gave fallible twins. Both
/// spellings must stay exported somewhere in the tree.
pub const REQUIRED_TWINS: &[&str] = &[
    "gather",
    "gather_nd",
    "scatter",
    "scatter_combine",
    "scatter_nd_combine",
    "transpose",
    "fft",
    "fft_row",
    "fft_axis",
    "fft_axis_as",
    "lu_factor",
    "lu_factor_blocked",
    "gauss_jordan_solve",
];

/// Tree-wide direction of `try-parity`: given every `pub fn` in the
/// tree (name → declaration sites), check the required twin pairs are
/// both present.
pub fn check_required_twins(pub_fns: &BTreeMap<String, Vec<(String, u32)>>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for base in REQUIRED_TWINS {
        let try_name = format!("try_{base}");
        let base_at = pub_fns.get(*base).and_then(|v| v.first());
        let try_at = pub_fns.get(&try_name).and_then(|v| v.first());
        match (base_at, try_at) {
            (Some(_), Some(_)) => {}
            (Some((file, line)), None) => out.push(Diagnostic::new(
                file,
                *line,
                "try-parity",
                Severity::Error,
                format!("panicking primitive `{base}` lost its fallible twin `{try_name}`"),
                format!("restore `pub fn {try_name}` (PR 2 parity contract)"),
            )),
            (None, Some((file, line))) => out.push(Diagnostic::new(
                file,
                *line,
                "try-parity",
                Severity::Error,
                format!("fallible `{try_name}` lost its panicking twin `{base}`"),
                format!("restore `pub fn {base}` (PR 2 parity contract)"),
            )),
            (None, None) => out.push(Diagnostic::new(
                "(tree)",
                0,
                "try-parity",
                Severity::Error,
                format!("required primitive pair `{base}`/`{try_name}` is missing from the tree"),
                "restore both exports or update rules::REQUIRED_TWINS with the rename".into(),
            )),
        }
    }
    out
}

// --------------------------------------------------------- metered-send

/// Functions inside the transport that *are* the envelope path: the
/// only places a raw channel `.send(` is legitimate. `send_recovery` is
/// the recovery channel — replica pushes and rehydration forwards are
/// metered on the dedicated recovery counters there, never as §1.5
/// logical messages.
const ENVELOPE_PATH: &[&str] = &["transmit", "send_ctl", "send_recovery"];

fn metered_send(f: &SourceFile) -> Vec<Diagnostic> {
    if !(f.path.ends_with("/spmd.rs") || f.path == "spmd.rs") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 1..f.tokens.len() {
        if !(punct(f.tokens.get(i), '.')
            && ident(f.tokens.get(i + 1), "send")
            && punct(f.tokens.get(i + 2), '('))
        {
            continue;
        }
        // Receiver heuristic: the identifier just before the dot. A
        // `router.send(...)` (or anything named `*router`) is the
        // metered API; everything else is a raw channel endpoint.
        let metered_receiver = matches!(
            f.tokens.get(i - 1).map(|t| &t.tok),
            Some(Tok::Ident(r)) if r.ends_with("router")
        );
        if metered_receiver {
            continue;
        }
        let in_envelope_path = f
            .fn_at(i)
            .is_some_and(|s| ENVELOPE_PATH.contains(&s.name.as_str()));
        if !in_envelope_path {
            out.push(Diagnostic::new(
                &f.path,
                f.tokens[i].line,
                "metered-send",
                Severity::Error,
                "raw channel send bypasses the LinkMeter/envelope path, so §1.5 message counts drift"
                    .into(),
                "send through Router::send (or extend transmit/send_ctl if this is protocol traffic)"
                    .into(),
            ));
        }
    }
    out
}

// ----------------------------------------------------- flop-conventions

/// Paper §1.5 operation weights (Hennessy & Patterson, the paper's
/// reference [6]).
const FLOP_WEIGHTS: &[(&str, u64)] = &[
    ("ADD", 1),
    ("SUB", 1),
    ("MUL", 1),
    ("DIV", 4),
    ("SQRT", 4),
    ("LOG", 8),
    ("TRIG", 8),
    ("EXP", 8),
];

fn flop_conventions(f: &SourceFile) -> Vec<Diagnostic> {
    if !f.path.ends_with("flops.rs") {
        return Vec::new();
    }
    let mut seen: BTreeMap<&str, (u64, u32)> = BTreeMap::new();
    for i in 0..f.tokens.len() {
        // `pub const NAME: u64 = <int>;`
        if !(ident(f.tokens.get(i), "pub") && ident(f.tokens.get(i + 1), "const")) {
            continue;
        }
        let Some(Tok::Ident(name)) = f.tokens.get(i + 2).map(|t| &t.tok) else {
            continue;
        };
        let Some(entry) = FLOP_WEIGHTS.iter().find(|(n, _)| n == name) else {
            continue;
        };
        // Scan to the `=` and read the integer literal after it.
        let mut j = i + 3;
        while j < f.tokens.len() && !punct(f.tokens.get(j), '=') && !punct(f.tokens.get(j), ';') {
            j += 1;
        }
        if let Some(Tok::Int(text)) = f.tokens.get(j + 1).map(|t| &t.tok) {
            let digits: String = text.chars().take_while(|c| c.is_ascii_digit()).collect();
            if let Ok(v) = digits.parse::<u64>() {
                seen.insert(entry.0, (v, f.tokens[i + 2].line));
            }
        }
    }
    let mut out = Vec::new();
    for (name, expect) in FLOP_WEIGHTS {
        match seen.get(name) {
            Some(&(v, _)) if v == *expect => {}
            Some(&(v, line)) => out.push(Diagnostic::new(
                &f.path,
                line,
                "flop-conventions",
                Severity::Error,
                format!(
                    "FLOP weight {name} = {v} contradicts the paper's table (§1.5 says {expect})"
                ),
                format!("restore `pub const {name}: u64 = {expect};`"),
            )),
            None => out.push(Diagnostic::new(
                &f.path,
                1,
                "flop-conventions",
                Severity::Error,
                format!("FLOP weight constant {name} is missing from the conventions table"),
                format!("declare `pub const {name}: u64 = {expect};`"),
            )),
        }
    }
    if !f.fns.iter().any(|s| s.name == "reduction") {
        out.push(Diagnostic::new(
            &f.path,
            1,
            "flop-conventions",
            Severity::Error,
            "the N-1 reduction FLOP helper `reduction` is missing".into(),
            "restore `pub const fn reduction(n: u64) -> u64`".into(),
        ));
    }
    out
}

// -------------------------------------------------------- unsafe-forbid

fn unsafe_forbid(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..f.tokens.len() {
        if !ident(f.tokens.get(i), "unsafe") {
            continue;
        }
        let line = f.tokens[i].line;
        let has_safety = f.comments.iter().any(|c| {
            c.line + 3 >= line && c.line <= line && c.text.trim_start().starts_with("SAFETY:")
        });
        let mut d = Diagnostic::new(
            &f.path,
            line,
            "unsafe-forbid",
            Severity::Error,
            if has_safety {
                "the repo is unsafe-free by policy; this block needs an explicit allow pragma"
                    .into()
            } else {
                "unsafe without a `// SAFETY:` justification comment".into()
            },
            "add `// SAFETY: <why this is sound>` and `// dpf-lint: allow(unsafe-forbid, reason = ...)`"
                .into(),
        );
        d.suppressible = has_safety;
        out.push(d);
    }
    out
}

// ------------------------------------------------------ atomic-artifact

/// The modules allowed to create files directly: the atomic writer
/// itself (its temp file is the mechanism) and the journal (its
/// append-only file is fsync'd per record, a different durability
/// discipline that rename-replace cannot express).
const ARTIFACT_SANCTIONED: &[&str] = &["dpf-suite/src/artifact.rs", "dpf-suite/src/journal.rs"];

/// A bare `fs::write` (or `File::create`) left a truncated file under
/// its final name when the process died mid-write — exactly the torn
/// artifact that `dpf tables --campaign` then chokes on. Everything
/// machine-read must go through `dpf_suite::artifact::write_atomic`
/// (temp + fsync + rename), so readers only ever observe complete
/// files.
fn atomic_artifact(f: &SourceFile) -> Vec<Diagnostic> {
    if ARTIFACT_SANCTIONED.iter().any(|m| f.path.ends_with(m)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..f.tokens.len() {
        let what = if path2(f, i, &["fs"], &["write"]) {
            "fs::write"
        } else if path2(f, i, &["File"], &["create"]) {
            "File::create"
        } else {
            continue;
        };
        out.push(Diagnostic::new(
            &f.path,
            f.tokens[i].line,
            "atomic-artifact",
            Severity::Warning,
            format!("direct {what} publishes a torn file if the process dies mid-write"),
            "write through dpf_suite::artifact::write_atomic (temp + fsync + rename)".into(),
        ));
    }
    out
}

// ------------------------------------------------------ comm-inventory

/// The 17 `CommPattern` variants (dpf-core/src/instrument.rs): any
/// other name in a `patterns:` field or inventory entry is a typo.
pub const KNOWN_PATTERNS: &[&str] = &[
    "Stencil",
    "Gather",
    "GatherCombine",
    "Scatter",
    "ScatterCombine",
    "Reduction",
    "Broadcast",
    "Spread",
    "Aabc",
    "Aapc",
    "Butterfly",
    "Scan",
    "Cshift",
    "Eoshift",
    "Send",
    "Get",
    "Sort",
];

/// Pull every `Xxx` out of `Path::Xxx` occurrences in a snippet. Both
/// spellings of the inventory (`P::Cshift` in the registry,
/// `CommPattern::Cshift` in the tables) reduce to the variant name.
fn path_variants(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(k) = text[i..].find("::") {
        let start = i + k + 2;
        let mut end = start;
        while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
        if end > start {
            out.push(text[start..end].to_string());
        }
        i = end.max(i + k + 2);
    }
    out
}

/// Textual parse of the registry: each benchmark's `name: "..."` and
/// the variant names in its `patterns: &[...]` field (which may span
/// lines). Returns `(name, patterns, line-of-patterns-field)`.
pub fn registry_patterns(src: &str) -> Vec<(String, Vec<String>, u32)> {
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    let mut acc: Option<(String, u32)> = None;
    for (k, line) in src.lines().enumerate() {
        let lno = k as u32 + 1;
        let t = line.trim();
        if let Some((buf, at)) = acc.as_mut() {
            buf.push_str(t);
            if t.contains(']') {
                let (n, b, a) = (name.clone(), buf.clone(), *at);
                acc = None;
                if let Some(n) = n {
                    out.push((n, path_variants(&b), a));
                }
            }
            continue;
        }
        if let Some(rest) = t.strip_prefix("name:") {
            name = rest
                .split('"')
                .nth(1)
                .map(str::to_string)
                .or_else(|| name.clone());
        } else if let Some(rest) = t.strip_prefix("patterns:") {
            if rest.contains(']') {
                if let Some(n) = name.clone() {
                    out.push((n, path_variants(rest), lno));
                }
            } else {
                acc = Some((rest.to_string(), lno));
            }
        }
    }
    out
}

/// Textual parse of the `COMM_INVENTORY` static in tables.rs: each
/// `("name", &[CommPattern::X, ...])` entry (which may span lines).
/// Returns `None` when the file has no `COMM_INVENTORY` at all.
pub fn inventory_entries(src: &str) -> Option<Vec<(String, Vec<String>, u32)>> {
    let mut lines = src.lines().enumerate();
    lines.find(|(_, l)| l.contains("COMM_INVENTORY"))?;
    let mut out = Vec::new();
    let mut entry: Option<(String, u32, i32)> = None;
    for (k, line) in lines {
        let lno = k as u32 + 1;
        let t = line.trim();
        if entry.is_none() && t == "];" {
            break;
        }
        let (buf, at, depth) = match entry.as_mut() {
            Some(e) => e,
            None => {
                if !t.starts_with('(') {
                    continue;
                }
                entry = Some((String::new(), lno, 0));
                entry.as_mut().unwrap()
            }
        };
        buf.push_str(t);
        *depth += t.chars().filter(|&c| c == '(').count() as i32;
        *depth -= t.chars().filter(|&c| c == ')').count() as i32;
        if *depth <= 0 {
            let name = buf.split('"').nth(1).unwrap_or("").to_string();
            out.push((name, path_variants(buf), *at));
            entry = None;
        }
    }
    Some(out)
}

/// Tree-wide `comm-inventory` rule: the registry's per-benchmark
/// `patterns` fields and the §1.5 `COMM_INVENTORY` in tables.rs are two
/// spellings of the same paper fact (Tables 3/7); they must list the
/// same benchmarks with the same pattern sets, and only real
/// `CommPattern` variant names. Silent when the tree has no registry
/// (fixture mini-trees); a registry without any inventory is an error.
pub fn check_comm_inventory(
    registry: Option<(&str, &str)>,
    tables: Option<(&str, &str)>,
) -> Vec<Diagnostic> {
    let Some((reg_path, reg_src)) = registry else {
        return Vec::new();
    };
    let reg = registry_patterns(reg_src);
    let inv = tables.and_then(|(_, src)| inventory_entries(src));
    let mut out = Vec::new();
    let Some(inv) = inv else {
        out.push(Diagnostic::new(
            reg_path,
            0,
            "comm-inventory",
            Severity::Error,
            "registry has benchmark pattern fields but no COMM_INVENTORY declares the §1.5 tables"
                .into(),
            "declare `pub const COMM_INVENTORY` in dpf-suite's tables.rs (one entry per benchmark)"
                .into(),
        ));
        return out;
    };
    let tab_path = tables.map(|(p, _)| p).unwrap_or("(tree)");
    let check_names = |path: &str, name: &str, pats: &[String], line: u32, out: &mut Vec<_>| {
        for p in pats {
            if !KNOWN_PATTERNS.contains(&p.as_str()) {
                out.push(Diagnostic::new(
                    path,
                    line,
                    "comm-inventory",
                    Severity::Error,
                    format!("`{name}` names unknown communication pattern `{p}`"),
                    "use one of the 17 CommPattern variants (see dpf-core instrument.rs)".into(),
                ));
            }
        }
    };
    for (name, pats, line) in &reg {
        check_names(reg_path, name, pats, *line, &mut out);
        match inv.iter().find(|(n, _, _)| n == name) {
            None => out.push(Diagnostic::new(
                reg_path,
                *line,
                "comm-inventory",
                Severity::Error,
                format!("benchmark `{name}` has no §1.5 COMM_INVENTORY entry"),
                format!("add (\"{name}\", &[...]) to COMM_INVENTORY in tables.rs"),
            )),
            Some((_, declared, _)) => {
                let mut a = pats.clone();
                let mut b = declared.clone();
                a.sort();
                b.sort();
                if a != b {
                    out.push(Diagnostic::new(
                        reg_path,
                        *line,
                        "comm-inventory",
                        Severity::Error,
                        format!(
                            "`{name}` declares patterns [{}] but the §1.5 inventory says [{}]",
                            pats.join(", "),
                            declared.join(", ")
                        ),
                        "fix whichever side drifted from the paper's Tables 3/7".into(),
                    ));
                }
            }
        }
    }
    let mut seen: Vec<&str> = Vec::new();
    for (name, pats, line) in &inv {
        check_names(tab_path, name, pats, *line, &mut out);
        if seen.contains(&name.as_str()) {
            out.push(Diagnostic::new(
                tab_path,
                *line,
                "comm-inventory",
                Severity::Error,
                format!("COMM_INVENTORY lists `{name}` twice"),
                "keep one entry per benchmark".into(),
            ));
        }
        seen.push(name);
        if !reg.iter().any(|(n, _, _)| n == name) {
            out.push(Diagnostic::new(
                tab_path,
                *line,
                "comm-inventory",
                Severity::Error,
                format!("COMM_INVENTORY lists `{name}`, which is not in the registry"),
                "remove the stale entry or restore the benchmark".into(),
            ));
        }
    }
    out
}

// --------------------------------------------------- registry-coverage

/// The paper's five implementation versions (Table 2).
pub const KNOWN_VERSIONS: &[&str] = &["Basic", "Optimized", "Library", "Cmssl", "CDpeac"];

/// `registry-coverage` (the ROADMAP carry-over): every version a
/// registry entry *claims* from the paper (`paper_versions`) must have
/// a runnable variant in its `variants` field — otherwise the golden
/// tables advertise measurements the suite cannot produce. A genuine
/// gap (e.g. CMSSL's library internals are unpublished) is documented
/// with an `allow(registry-coverage, ...)` pragma directly above the
/// `paper_versions:` field, which keeps the gap visible in the source
/// instead of silently implied. Runs per-file (so pragmas apply),
/// scoped to the real registry path.
fn registry_coverage(f: &SourceFile) -> Vec<Diagnostic> {
    if !f.path.ends_with("dpf-suite/src/registry.rs") {
        return Vec::new();
    }
    // Per entry: (name, paper_versions line, claimed, runnable).
    type EntryState = (String, Option<(u32, Vec<String>)>, Vec<String>);
    let toks = &f.tokens;
    let mut out = Vec::new();
    let mut cur: Option<EntryState> = None;
    let flush = |cur: &mut Option<EntryState>, out: &mut Vec<Diagnostic>| {
        let Some((name, pv, variants)) = cur.take() else {
            return;
        };
        let Some((line, claimed)) = pv else { return };
        for v in &claimed {
            if !KNOWN_VERSIONS.contains(&v.as_str()) && v != "Version" {
                out.push(Diagnostic::new(
                    &f.path,
                    line,
                    "registry-coverage",
                    Severity::Error,
                    format!("registry entry `{name}` claims unknown paper version `{v}`"),
                    format!("use one of {KNOWN_VERSIONS:?} (paper Table 2)"),
                ));
            }
        }
        let missing: Vec<&String> = claimed
            .iter()
            .filter(|v| KNOWN_VERSIONS.contains(&v.as_str()) && !variants.contains(v))
            .collect();
        if !missing.is_empty() {
            let list = missing
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", ");
            out.push(Diagnostic::new(
                &f.path,
                line,
                "registry-coverage",
                Severity::Error,
                format!(
                    "registry entry `{name}` claims paper version(s) [{list}] with no \
                     runnable variant: the golden tables advertise measurements the \
                     suite cannot produce"
                ),
                "add the variant(s), or document the gap with a pragma directly above \
                 `paper_versions:` stating why the version cannot be reproduced"
                    .into(),
            ));
        }
    };
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(k) if k == "name" && punct(toks.get(i + 1), ':') => {
                if let Some(Tok::Str(s)) = toks.get(i + 2).map(|t| &t.tok) {
                    flush(&mut cur, &mut out);
                    cur = Some((s.clone(), None, Vec::new()));
                    i += 3;
                    continue;
                }
            }
            Tok::Ident(k) if k == "paper_versions" && punct(toks.get(i + 1), ':') => {
                let line = toks[i].line;
                let mut claimed = Vec::new();
                let mut j = i + 2;
                while j < toks.len() && !punct(toks.get(j), ']') {
                    if let Tok::Ident(v) = &toks[j].tok {
                        if v != "Version" {
                            claimed.push(v.clone());
                        }
                    }
                    j += 1;
                }
                if let Some((_, pv, _)) = cur.as_mut() {
                    *pv = Some((line, claimed));
                }
                i = j + 1;
                continue;
            }
            Tok::Ident(k) if k == "variants" && punct(toks.get(i + 1), ':') => {
                // Collect version idents in the field value (macro form
                // `variants!(Basic => path, ...)` or a literal slice)
                // up to the field's `,` at delimiter depth zero.
                let mut j = i + 2;
                let mut depth = 0i32;
                let mut found = Vec::new();
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                        Tok::Punct(')') | Tok::Punct(']') => {
                            depth -= 1;
                            if depth < 0 {
                                break;
                            }
                        }
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth < 0 {
                                break;
                            }
                        }
                        Tok::Punct(',') if depth == 0 => break,
                        Tok::Ident(v) if KNOWN_VERSIONS.contains(&v.as_str()) => {
                            found.push(v.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some((_, _, vs)) = cur.as_mut() {
                    vs.extend(found);
                }
                i = j;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    flush(&mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    fn rules_hit(src: &str, path: &str) -> Vec<(&'static str, u32)> {
        lint_source(path, src)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn nan_fold_catches_the_pr2_bug_class() {
        let src = r#"
pub fn check(errs: &[f64]) -> Verify {
    let worst = errs.iter().fold(0.0, |m, v| m.max(v.abs()));
    Verify::check("residual", worst, 1e-9)
}
"#;
        let hits = rules_hit(src, "crates/dpf-apps/src/x.rs");
        assert!(hits.contains(&("nan-unsafe-fold", 3)), "{hits:?}");
    }

    #[test]
    fn nan_fold_catches_f64_max_path_and_float_folds_outside_verify() {
        let src = "fn any() { let w = xs.iter().copied().fold(0.0f64, f64::max); }";
        let hits = rules_hit(src, "a.rs");
        assert!(hits.iter().any(|h| h.0 == "nan-unsafe-fold"), "{hits:?}");
        let src2 = "fn any() { let w = xs.iter().fold(-f64::INFINITY, |m, v| m.max(v)); }";
        assert!(rules_hit(src2, "a.rs")
            .iter()
            .any(|h| h.0 == "nan-unsafe-fold"));
    }

    #[test]
    fn nan_fold_ignores_integer_clamps_and_domain_math() {
        // usize clamp inside a verify fn, and float math outside one.
        let src = "
pub fn verify_shape(n: usize) -> Verify { let m = n.max(1); Verify::NotApplicable }
fn step(d: f64, nx: f64) -> f64 { d.min(nx - d) }
";
        assert!(rules_hit(src, "a.rs").is_empty());
    }

    #[test]
    fn untimed_clock_spares_sanctioned_modules() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(!rules_hit(src, "crates/dpf-core/src/instr.rs")
            .iter()
            .any(|h| h.0 == "untimed-clock"));
        assert!(rules_hit(src, "crates/dpf-apps/src/md.rs")
            .iter()
            .any(|h| h.0 == "untimed-clock"));
    }

    #[test]
    fn hot_path_alloc_scopes_to_into_and_exec() {
        let src = "
pub fn map_into(out: &mut [f64]) { let v: Vec<f64> = xs.iter().collect(); }
pub fn map(xs: &[f64]) -> Vec<f64> { xs.to_vec() }
";
        let hits = rules_hit(src, "a.rs");
        assert!(hits.contains(&("hot-path-alloc", 2)), "{hits:?}");
        assert_eq!(hits.iter().filter(|h| h.0 == "hot-path-alloc").count(), 1);
    }

    #[test]
    fn hot_path_clone_flags_distarray_param_clones() {
        let src = "
pub fn fuse_into(ctx: &Ctx, a: &DistArray<f64>, out: &mut DistArray<f64>) {
    let staging = a.clone();
    let lay = out.layout().clone();
}
pub fn build(a: &DistArray<f64>) -> DistArray<f64> { a.clone() }
";
        let hits = rules_hit(src, "a.rs");
        // The DistArray parameter clone in the hot path is flagged...
        assert!(hits.contains(&("hot-path-clone", 3)), "{hits:?}");
        // ...but the metadata clone and the non-hot fn are not.
        assert_eq!(hits.iter().filter(|h| h.0 == "hot-path-clone").count(), 1);
    }

    #[test]
    fn hot_path_clone_ignores_non_distarray_params() {
        let src = "
pub fn scale_into(plan: &Plan, out: &mut DistArray<f64>) {
    let p = plan.clone();
}
";
        assert!(!rules_hit(src, "a.rs")
            .iter()
            .any(|h| h.0 == "hot-path-clone"));
    }

    #[test]
    fn try_parity_wants_the_twin_in_file() {
        let src = "pub fn try_gather() {}";
        assert!(rules_hit(src, "a.rs").iter().any(|h| h.0 == "try-parity"));
        let src2 = "pub fn try_gather() {}\npub fn gather() {}";
        assert!(!rules_hit(src2, "a.rs").iter().any(|h| h.0 == "try-parity"));
    }

    #[test]
    fn metered_send_flags_raw_channel_sends_in_spmd() {
        let src = "
fn leak(tx: &Sender<u8>) { tx.send(1).unwrap(); }
fn transmit(&self) { self.txs[0].send(frame).unwrap(); }
fn ok(router: &mut Router) { router.send(1, 8, msg); }
";
        let hits = rules_hit(src, "crates/dpf-core/src/spmd.rs");
        assert_eq!(
            hits.iter().filter(|h| h.0 == "metered-send").count(),
            1,
            "{hits:?}"
        );
        assert!(hits.contains(&("metered-send", 2)));
        // Same source outside spmd.rs: no rule.
        assert!(rules_hit(src, "crates/dpf-core/src/other.rs").is_empty());
    }

    #[test]
    fn flop_conventions_checks_the_table() {
        let good = "
pub const ADD: u64 = 1; pub const SUB: u64 = 1; pub const MUL: u64 = 1;
pub const DIV: u64 = 4; pub const SQRT: u64 = 4;
pub const LOG: u64 = 8; pub const TRIG: u64 = 8; pub const EXP: u64 = 8;
pub const fn reduction(n: u64) -> u64 { n.saturating_sub(1) }
";
        assert!(rules_hit(good, "crates/dpf-core/src/flops.rs").is_empty());
        let drifted = good.replace("DIV: u64 = 4", "DIV: u64 = 2");
        let hits = rules_hit(&drifted, "crates/dpf-core/src/flops.rs");
        assert!(hits.iter().any(|h| h.0 == "flop-conventions"), "{hits:?}");
        // The table is only enforced in flops.rs.
        assert!(rules_hit(&drifted, "crates/dpf-core/src/cost.rs").is_empty());
    }

    #[test]
    fn atomic_artifact_spares_the_writer_and_journal() {
        let src = "
fn save(dir: &Path) {
    std::fs::write(dir.join(\"campaign.json\"), text).unwrap();
    let f = File::create(dir.join(\"tables.md\")).unwrap();
}
";
        let hits = rules_hit(src, "crates/dpf-cli/src/main.rs");
        assert_eq!(
            hits.iter().filter(|h| h.0 == "atomic-artifact").count(),
            2,
            "{hits:?}"
        );
        // The sanctioned modules are the mechanism, not a violation.
        assert!(!rules_hit(src, "crates/dpf-suite/src/artifact.rs")
            .iter()
            .any(|h| h.0 == "atomic-artifact"));
        assert!(!rules_hit(src, "crates/dpf-suite/src/journal.rs")
            .iter()
            .any(|h| h.0 == "atomic-artifact"));
    }

    #[test]
    fn registry_coverage_flags_unrunnable_paper_versions() {
        let src = r#"
pub fn registry() -> Vec<BenchEntry> {
    vec![
        BenchEntry {
            name: "fft",
            paper_versions: &[Basic, Library, Cmssl],
            variants: variants!(Basic => r::fft),
        },
        BenchEntry {
            name: "pcr",
            paper_versions: &[Basic, Optimized],
            variants: variants!(Basic => r::pcr, Optimized => r::pcr_opt, Library => r::pcr_lib),
        },
        BenchEntry {
            name: "typo",
            paper_versions: &[Basix],
            variants: variants!(Basic => r::typo),
        },
    ]
}
"#;
        let hits = rules_hit(src, "crates/dpf-suite/src/registry.rs");
        let cov: Vec<_> = hits.iter().filter(|h| h.0 == "registry-coverage").collect();
        // fft misses Library+Cmssl (one diagnostic), typo has an
        // unknown version; pcr's extra runnable variant is fine.
        assert_eq!(cov.len(), 2, "{hits:?}");
        // Any other path is out of scope.
        assert!(rules_hit(src, "crates/dpf-suite/src/other.rs")
            .iter()
            .all(|h| h.0 != "registry-coverage"));
        // A pragma above paper_versions documents the gap.
        let excused = src.replace(
            "            paper_versions: &[Basic, Library, Cmssl],",
            "            // dpf-lint: allow(registry-coverage, reason = \"CMSSL internals unpublished\")\n            paper_versions: &[Basic, Library, Cmssl],",
        );
        let diags = lint_source("crates/dpf-suite/src/registry.rs", &excused);
        assert!(
            !diags
                .iter()
                .any(|d| d.rule == "registry-coverage" && d.message.contains("fft")),
            "{diags:?}"
        );
    }

    #[test]
    fn unsafe_needs_safety_comment_and_pragma() {
        let bare = "fn f() { unsafe { std::hint::unreachable_unchecked() } }";
        let hits = lint_source("a.rs", bare);
        assert!(hits
            .iter()
            .any(|d| d.rule == "unsafe-forbid" && !d.suppressible));
        let excused = "
fn f() {
    // SAFETY: n < len checked above
    // dpf-lint: allow(unsafe-forbid, reason = \"bounds proven by caller\")
    unsafe { go(n) }
}
";
        let hits = lint_source("a.rs", excused);
        assert!(!hits.iter().any(|d| d.rule == "unsafe-forbid"), "{hits:?}");
        // SAFETY comment alone (no pragma) still fails.
        let half = "
fn f() {
    // SAFETY: trust me
    unsafe { go(n) }
}
";
        assert!(lint_source("a.rs", half)
            .iter()
            .any(|d| d.rule == "unsafe-forbid" && d.suppressible));
    }
}
