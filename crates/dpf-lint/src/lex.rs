//! A hand-rolled Rust lexer — just enough of the language to drive the
//! lint rules: identifiers, punctuation, numeric literals and comments,
//! with string/char/lifetime literals recognised as single opaque tokens
//! so that rule patterns never fire inside literal text. String literals
//! carry their raw text (the registry-coverage rule reads `name: "..."`
//! field values); rules must never pattern-match *inside* it.
//!
//! The vendor set has no `syn`, and the rules only need token streams
//! with line numbers plus the comment channel (for `// dpf-lint:`
//! pragmas and `// SAFETY:` justifications), so a full parser would be
//! dead weight anyway.

/// One lexed token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `max`, `Vec`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `(`, `!`, ...).
    Punct(char),
    /// Integer literal, verbatim text (`42`, `0xFF`, `8u64`).
    Int(String),
    /// Floating literal, verbatim text (`0.0`, `1e-6`, `2.0f64`).
    Float(String),
    /// String literal, raw contents (escapes left verbatim).
    Str(String),
    /// Char literal (contents dropped).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    /// 1-based line number.
    pub line: u32,
    /// The token itself.
    pub tok: Tok,
}

/// A comment (line or block), attributed to its starting line.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line number of the comment's first character.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// Lex `src` into a token stream and a parallel comment channel.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                comments.push(Comment {
                    line,
                    text: b[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let at = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && b.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && b.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                comments.push(Comment {
                    line: at,
                    text: b[start..j.saturating_sub(2).max(start)].iter().collect(),
                });
                i = j;
            }
            '"' => {
                let at = line;
                let j = skip_string(&b, i, &mut line);
                let inner: String = b[i + 1..j.saturating_sub(1).max(i + 1)].iter().collect();
                toks.push(Token {
                    line: at,
                    tok: Tok::Str(inner),
                });
                i = j;
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let at = line;
                // Content starts after the opening quote and ends before
                // the closing quote + hashes.
                let mut q = i;
                let mut hashes = 0usize;
                while q < b.len() && b[q] != '"' {
                    if b[q] == '#' {
                        hashes += 1;
                    }
                    q += 1;
                }
                let j = skip_raw_or_byte_string(&b, i, &mut line);
                let end = j.saturating_sub(hashes + 1).max(q + 1);
                let inner: String = b[q + 1..end.min(b.len())].iter().collect();
                toks.push(Token {
                    line: at,
                    tok: Tok::Str(inner),
                });
                i = j;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if is_char_literal(&b, i) {
                    toks.push(Token {
                        line,
                        tok: Tok::Char,
                    });
                    i = skip_char_literal(&b, i);
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    toks.push(Token {
                        line,
                        tok: Tok::Lifetime,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, j) = lex_number(&b, i);
                toks.push(Token { line, tok });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                toks.push(Token {
                    line,
                    tok: Tok::Ident(b[i..j].iter().collect()),
                });
                i = j;
            }
            c => {
                toks.push(Token {
                    line,
                    tok: Tok::Punct(c),
                });
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` ahead at `i`?
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
    }
    j > i && b.get(j) == Some(&'"')
}

fn skip_raw_or_byte_string(b: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    let raw = b.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    // Opening quote.
    j += 1;
    if !raw {
        return skip_string(b, j - 1, line);
    }
    while j < b.len() {
        if b[j] == '\n' {
            *line += 1;
            j += 1;
        } else if b[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    j
}

/// Skip a `"…"` string starting at the opening quote; returns the index
/// one past the closing quote.
fn skip_string(b: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

fn is_char_literal(b: &[char], i: usize) -> bool {
    // 'x' or '\x…': a quote, one (possibly escaped) char, then a quote.
    match b.get(i + 1) {
        Some('\\') => true,
        Some(_) => b.get(i + 2) == Some(&'\''),
        None => false,
    }
}

fn skip_char_literal(b: &[char], i: usize) -> usize {
    let mut j = i + 1;
    if b.get(j) == Some(&'\\') {
        j += 2;
        // Escapes like '\u{1F600}' or '\x7f' run to the closing quote.
        while j < b.len() && b[j] != '\'' {
            j += 1;
        }
        return j + 1;
    }
    j += 1;
    j + 1
}

fn lex_number(b: &[char], i: usize) -> (Tok, usize) {
    let mut j = i;
    let mut float = false;
    if b[j] == '0' && matches!(b.get(j + 1), Some('x') | Some('o') | Some('b')) {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        return (Tok::Int(b[i..j].iter().collect()), j);
    }
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == '_') {
        j += 1;
    }
    // A dot makes it a float only when followed by a digit (so `0.max(x)`
    // and ranges like `0..n` lex as Int, Punct...).
    if b.get(j) == Some(&'.') && b.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == '_') {
            j += 1;
        }
    }
    if matches!(b.get(j), Some('e') | Some('E'))
        && b.get(j + 1)
            .is_some_and(|c| c.is_ascii_digit() || *c == '+' || *c == '-')
    {
        float = true;
        j += 2;
        while j < b.len() && b[j].is_ascii_digit() {
            j += 1;
        }
    }
    // Type suffix (`u64`, `f64`, `usize`...). An `f` suffix forces float.
    let suffix_start = j;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    if b.get(suffix_start) == Some(&'f') {
        float = true;
    }
    let text: String = b[i..j].iter().collect();
    if float {
        (Tok::Float(text), j)
    } else {
        (Tok::Int(text), j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"let x = "max( unsafe "; // unsafe .max( in comment
let r = r#"Instant::now()"#; /* Vec::new() */
"##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"Vec".to_string()));
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("unsafe .max("));
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n\"two\nline\"\nb";
        let (toks, _) = lex(src);
        let b = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let (toks, _) = lex("0.0 1e-6 2.5f64 42 0xFF 8u64 0.max(x) 3f64");
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::Float(s) if s == "0.0"));
        assert!(matches!(kinds[1], Tok::Float(s) if s == "1e-6"));
        assert!(matches!(kinds[2], Tok::Float(s) if s == "2.5f64"));
        assert!(matches!(kinds[3], Tok::Int(s) if s == "42"));
        assert!(matches!(kinds[4], Tok::Int(s) if s == "0xFF"));
        assert!(matches!(kinds[5], Tok::Int(s) if s == "8u64"));
        // `0.max(x)` is an integer method call, not a float literal.
        assert!(matches!(kinds[6], Tok::Int(s) if s == "0"));
        assert!(matches!(kinds[7], Tok::Punct('.')));
        assert!(matches!(toks.last().unwrap().tok, Tok::Float(ref s) if s == "3f64"));
    }

    #[test]
    fn string_tokens_carry_contents() {
        let (toks, _) =
            lex(r###"let n = "fft"; let r = r#"raw "inner" text"#; let b = b"bytes";"###);
        let strs: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["fft", "raw \"inner\" text", "bytes"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let (toks, _) = lex("&'a str 'x' '\\n'");
        let n_life = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let n_char = toks.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(n_life, 1);
        assert_eq!(n_char, 2);
    }
}
