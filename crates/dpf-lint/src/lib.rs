//! `dpf-lint` — project-specific static analysis for the DPF suite.
//!
//! The paper's value is its *precise conventions* (§1.5 FLOP weights,
//! centralized busy/elapsed metering, per-benchmark communication
//! inventories) and the repo adds equally precise code-level invariants
//! (NaN-safe verify folds, zero-allocation `_into`/`_exec` hot paths,
//! `try_*`/panicking twin parity, LinkMeter-metered transport sends).
//! This crate makes those invariants machine-checked: a hand-rolled
//! lexer ([`lex`]) feeds a rule engine ([`rules`]) that walks every
//! `crates/*/src/**.rs` file and emits structured diagnostics.
//!
//! Diagnostics are suppressible inline:
//!
//! ```text
//! // dpf-lint: allow(<rule>, reason = "why this site is exempt")
//! // dpf-lint: allow-file(<rule>, reason = "why this whole file is exempt")
//! ```
//!
//! An `allow` pragma covers its own line and the line directly below
//! it; `allow-file` covers the whole file. A pragma with no reason is
//! itself a diagnostic (`bad-pragma`), and a pragma that suppresses
//! nothing is flagged (`unused-pragma`) so allows cannot silently
//! outlive the code they excused.

#![warn(missing_docs)]

pub mod ast;
pub mod flow;
pub mod lex;
pub mod rules;
pub mod taint;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use lex::{lex, Comment, Token};

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Discipline drift: fails CI only under `--deny warnings`.
    Warning,
    /// Convention or correctness violation: always fails CI.
    Error,
}

impl Severity {
    /// Lowercase name, as printed in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One structured finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Path relative to the repo root (always `/`-separated).
    pub file: String,
    /// 1-based line number (0 = whole-file / whole-tree finding).
    pub line: u32,
    /// Stable rule identifier (`nan-unsafe-fold`, ...).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
    /// Whether a `dpf-lint: allow` pragma may suppress it. (An `unsafe`
    /// block without a `// SAFETY:` comment, for example, may not be
    /// waved through by pragma alone.)
    pub suppressible: bool,
}

impl Diagnostic {
    /// Construct a suppressible diagnostic.
    pub fn new(
        file: &str,
        line: u32,
        rule: &'static str,
        severity: Severity,
        message: String,
        suggestion: String,
    ) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            severity,
            message,
            suggestion,
            suppressible: true,
        }
    }
}

/// A function span discovered by brace matching: rules use it to scope
/// checks like "no allocation inside `*_into`" or "`.max(` inside a
/// function returning `Verify`".
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Whether `-> Verify` (or `-> ... Verify ...`) appears in its
    /// signature's return type.
    pub returns_verify: bool,
}

/// One lexed source file plus the derived context the rules need.
pub struct SourceFile {
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Comment channel.
    pub comments: Vec<Comment>,
    /// Innermost named function enclosing each token (index into
    /// `fns`), parallel to `tokens`.
    pub enclosing: Vec<Option<usize>>,
    /// All named functions, in source order.
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Lex and index one file.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let (tokens, comments) = lex(src);
        let (enclosing, fns) = index_fns(&tokens);
        SourceFile {
            path: path.to_string(),
            tokens,
            comments,
            enclosing,
            fns,
        }
    }

    /// The innermost named function enclosing token `i`, if any.
    pub fn fn_at(&self, i: usize) -> Option<&FnSpan> {
        self.enclosing
            .get(i)
            .copied()
            .flatten()
            .map(|k| &self.fns[k])
    }
}

/// Walk the token stream once, matching braces, and label every token
/// with its innermost enclosing named `fn`. Closures have no `fn`
/// keyword, so their bodies inherit the enclosing function — exactly
/// what the hot-path rules want.
fn index_fns(tokens: &[Token]) -> (Vec<Option<usize>>, Vec<FnSpan>) {
    use lex::Tok::{Ident, Punct};
    let mut fns: Vec<FnSpan> = Vec::new();
    let mut enclosing: Vec<Option<usize>> = vec![None; tokens.len()];
    // Stack of (fn index, brace depth its body opened at); parallel
    // plain-brace depth counter.
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut depth = 0usize;
    // A `fn name` whose body `{` has not opened yet: (index, saw_arrow).
    let mut pending: Option<usize> = None;
    let mut pending_arrow = false;
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i].tok {
            Ident(kw) if kw == "fn" => {
                if let Some(Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                    fns.push(FnSpan {
                        name: name.clone(),
                        returns_verify: false,
                    });
                    pending = Some(fns.len() - 1);
                    pending_arrow = false;
                    i += 2;
                    continue;
                }
            }
            Punct('-') if pending.is_some() => {
                if let Some(Punct('>')) = tokens.get(i + 1).map(|t| &t.tok) {
                    pending_arrow = true;
                }
            }
            Ident(id) if pending.is_some() && pending_arrow && id == "Verify" => {
                fns[pending.unwrap()].returns_verify = true;
            }
            Punct(';') if pending.is_some() => {
                // Trait method / extern declaration without a body.
                pending = None;
            }
            Punct('{') => {
                if let Some(k) = pending.take() {
                    stack.push((k, depth));
                }
                depth += 1;
            }
            Punct('}') => {
                depth = depth.saturating_sub(1);
                if let Some(&(_, d)) = stack.last() {
                    if d == depth {
                        stack.pop();
                    }
                }
            }
            _ => {}
        }
        enclosing[i] = stack.last().map(|&(k, _)| k);
        i += 1;
    }
    (enclosing, fns)
}

// ------------------------------------------------------------- pragmas

#[derive(Debug)]
struct Pragma {
    line: u32,
    rule: String,
    file_wide: bool,
    used: std::cell::Cell<bool>,
}

/// Parse `dpf-lint:` pragmas out of the comment channel. Malformed
/// pragmas become `bad-pragma` diagnostics.
fn parse_pragmas(file: &SourceFile) -> (Vec<Pragma>, Vec<Diagnostic>) {
    let mut pragmas = Vec::new();
    let mut diags = Vec::new();
    for c in &file.comments {
        let Some(rest) = c.text.trim().strip_prefix("dpf-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let (file_wide, body) = if let Some(b) = rest.strip_prefix("allow-file") {
            (true, b)
        } else if let Some(b) = rest.strip_prefix("allow") {
            (false, b)
        } else {
            diags.push(Diagnostic::new(
                &file.path,
                c.line,
                "bad-pragma",
                Severity::Error,
                format!("unrecognized dpf-lint pragma `{}`", c.text.trim()),
                "use `dpf-lint: allow(<rule>, reason = \"...\")` or allow-file".into(),
            ));
            continue;
        };
        let body = body.trim();
        let parsed = body
            .strip_prefix('(')
            .and_then(|b| b.strip_suffix(')'))
            .and_then(|inner| {
                let (rule, reason) = inner.split_once(',')?;
                let reason = reason.trim().strip_prefix("reason")?.trim_start();
                let reason = reason.strip_prefix('=')?.trim();
                let reason = reason.strip_prefix('"')?.strip_suffix('"')?;
                if reason.trim().is_empty() {
                    None
                } else {
                    Some(rule.trim().to_string())
                }
            });
        match parsed {
            Some(rule) => pragmas.push(Pragma {
                line: c.line,
                rule,
                file_wide,
                used: std::cell::Cell::new(false),
            }),
            None => diags.push(Diagnostic::new(
                &file.path,
                c.line,
                "bad-pragma",
                Severity::Error,
                format!("malformed dpf-lint pragma `{}`", c.text.trim()),
                "write `dpf-lint: allow(<rule>, reason = \"non-empty why\")`".into(),
            )),
        }
    }
    (pragmas, diags)
}

// -------------------------------------------------------------- driver

/// Lint one file's source text. Returns the surviving diagnostics
/// (pragma-suppressed ones removed, `bad-pragma`/`unused-pragma` added).
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, src);
    let (pragmas, mut diags) = parse_pragmas(&file);
    for rule in rules::FILE_RULES {
        diags.extend((rule.check)(&file));
    }
    let mut kept: Vec<Diagnostic> = Vec::new();
    for d in diags {
        let hit = pragmas.iter().find(|p| {
            p.rule == d.rule && (p.file_wide || p.line == d.line || p.line + 1 == d.line)
        });
        match hit {
            Some(p) if d.suppressible => p.used.set(true),
            Some(p) => {
                // Pragma present but the diagnostic refuses suppression
                // (e.g. `unsafe` without a SAFETY comment): the pragma
                // still counts as used so only the real problem shows.
                p.used.set(true);
                kept.push(d);
            }
            None => kept.push(d),
        }
    }
    for p in &pragmas {
        if !p.used.get() {
            kept.push(Diagnostic::new(
                &file.path,
                p.line,
                "unused-pragma",
                Severity::Warning,
                format!("allow pragma for `{}` suppresses nothing", p.rule),
                "remove the pragma (the code it excused is gone)".into(),
            ));
        }
    }
    kept
}

/// Collect every `crates/*/src/**.rs` file under `root`, sorted for
/// deterministic output.
pub fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint the whole tree rooted at `root` (the repo checkout). Runs the
/// per-file rules on every `crates/*/src/**.rs`, then the tree-wide
/// rules (try-parity's cross-file direction). Output is sorted by
/// `(file, line, rule)` so two runs over the same tree are
/// byte-identical.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let mut pub_fns: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();
    let mut registry: Option<(String, String)> = None;
    let mut tables: Option<(String, String)> = None;
    for path in source_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)?;
        let file = SourceFile::parse(&rel, &src);
        for (name, line) in rules::public_fns(&file) {
            pub_fns.entry(name).or_default().push((rel.clone(), line));
        }
        if rel.ends_with("dpf-suite/src/registry.rs") {
            registry = Some((rel.clone(), src.clone()));
        } else if rel.ends_with("dpf-suite/src/tables.rs") {
            tables = Some((rel.clone(), src.clone()));
        }
        diags.extend(lint_source(&rel, &src));
    }
    diags.extend(rules::check_required_twins(&pub_fns));
    diags.extend(rules::check_comm_inventory(
        registry.as_ref().map(|(p, s)| (p.as_str(), s.as_str())),
        tables.as_ref().map(|(p, s)| (p.as_str(), s.as_str())),
    ));
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(diags)
}

// ----------------------------------------------------------- rendering

/// Render diagnostics as human-readable text, one line each.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        let _ = writeln!(
            s,
            "{}:{}: {}[{}] {} — {}",
            d.file,
            d.line,
            d.severity.name(),
            d.rule,
            d.message,
            d.suggestion
        );
    }
    let (e, w) = count(diags);
    let _ = writeln!(s, "dpf-lint: {e} error(s), {w} warning(s)");
    s
}

/// Render diagnostics as JSON with a stable field order, suitable for
/// machine consumption and byte-for-byte comparison across runs.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("{\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"severity\": {}, \"message\": {}, \"suggestion\": {}}}",
            json_str(&d.file),
            d.line,
            json_str(d.rule),
            json_str(d.severity.name()),
            json_str(&d.message),
            json_str(&d.suggestion)
        );
    }
    if !diags.is_empty() {
        s.push_str("\n  ");
    }
    let (e, w) = count(diags);
    let _ = write!(
        s,
        "],\n  \"summary\": {{\"errors\": {e}, \"warnings\": {w}}}\n}}\n"
    );
    s
}

fn count(diags: &[Diagnostic]) -> (usize, usize) {
    let e = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    (e, diags.len() - e)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Did this diagnostic set fail the run? Errors always do; warnings do
/// under `deny_warnings`.
pub fn is_failing(diags: &[Diagnostic], deny_warnings: bool) -> bool {
    diags
        .iter()
        .any(|d| d.severity == Severity::Error || deny_warnings)
        && !diags.is_empty()
}

/// Locate the repo root: the nearest ancestor of `start` that contains
/// `crates/dpf-core/src`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(p) = cur {
        if p.join("crates/dpf-core/src").is_dir() {
            return Some(p.to_path_buf());
        }
        cur = p.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_nest_and_detect_verify_return() {
        let src = r#"
pub fn outer_into(x: usize) -> Verify {
    let c = |y: usize| y.max(1);
    fn inner(z: usize) -> usize { z }
    c(x)
}
fn plain() {}
"#;
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.fns.len(), 3);
        assert_eq!(f.fns[0].name, "outer_into");
        assert!(f.fns[0].returns_verify);
        assert!(!f.fns[2].returns_verify);
        // The closure body belongs to outer_into; inner's body to inner.
        let max_at = f
            .tokens
            .iter()
            .position(|t| t.tok == lex::Tok::Ident("max".into()))
            .unwrap();
        assert_eq!(f.fn_at(max_at).unwrap().name, "outer_into");
    }

    #[test]
    fn pragma_suppresses_same_and_next_line_only() {
        let src = "
fn check_verify() -> Verify {
    // dpf-lint: allow(nan-unsafe-fold, reason = \"documented hole\")
    let a = x.max(y);
    let b = x.max(y);
    Verify::NotApplicable
}
";
        let diags = lint_source("t.rs", src);
        let nan: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "nan-unsafe-fold")
            .collect();
        assert_eq!(nan.len(), 1, "{diags:?}");
        assert_eq!(nan[0].line, 5);
    }

    #[test]
    fn malformed_and_unused_pragmas_are_flagged() {
        let src = "// dpf-lint: allow(nan-unsafe-fold)\nfn f() {}\n";
        let diags = lint_source("t.rs", src);
        assert!(diags.iter().any(|d| d.rule == "bad-pragma"));
        let src2 = "// dpf-lint: allow(untimed-clock, reason = \"stale\")\nfn f() {}\n";
        let diags2 = lint_source("t.rs", src2);
        assert!(diags2.iter().any(|d| d.rule == "unused-pragma"));
    }

    #[test]
    fn json_escapes_and_orders_fields() {
        let d = vec![Diagnostic::new(
            "a.rs",
            3,
            "nan-unsafe-fold",
            Severity::Error,
            "say \"hi\"\n".into(),
            "fix".into(),
        )];
        let j = render_json(&d);
        assert!(j.contains("\\\"hi\\\"\\n"));
        assert!(j.contains("\"summary\": {\"errors\": 1, \"warnings\": 0}"));
    }
}
