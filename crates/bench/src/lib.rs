//! Criterion benchmark crate for the DPF suite; benches live in `benches/`.
