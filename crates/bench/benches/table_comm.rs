//! Benchmarks of the §2 communication library codes and their underlying
//! primitives — the data-motion rows behind Tables 3 and 7.
//!
//! Regenerates the communication benchmark group (`gather`, `scatter`,
//! `reduction`, `transpose`) at Medium size and sweeps the primitive set
//! (cshift, spread, scan, sort, stencil) over the virtual machine sizes
//! the paper's CM-5 partitions came in (32..512 nodes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dpf_array::{DistArray, PAR};
use dpf_core::{Ctx, Machine};
use dpf_suite::{find, run_basic, Size};

fn bench_section2_codes(c: &mut Criterion) {
    let mut g = c.benchmark_group("section2");
    g.sample_size(10);
    for name in ["gather", "scatter", "reduction", "transpose"] {
        let entry = find(name).unwrap();
        let machine = Machine::cm5(32);
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_basic(&entry, &machine, Size::Medium).report.perf.flops))
        });
    }
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    g.sample_size(10);
    let n = 1 << 18;
    for procs in [32usize, 128, 512] {
        let ctx = Ctx::new(Machine::cm5(procs));
        let a = DistArray::<f64>::from_fn(&ctx, &[n], &[PAR], |i| i[0] as f64);
        g.bench_with_input(BenchmarkId::new("cshift", procs), &procs, |b, _| {
            b.iter(|| black_box(dpf_comm::cshift(&ctx, &a, 0, 1)))
        });
        g.bench_with_input(BenchmarkId::new("sum_all", procs), &procs, |b, _| {
            b.iter(|| black_box(dpf_comm::sum_all(&ctx, &a)))
        });
        g.bench_with_input(BenchmarkId::new("scan_add", procs), &procs, |b, _| {
            b.iter(|| black_box(dpf_comm::scan_add(&ctx, &a, 0)))
        });
    }
    let ctx = Ctx::new(Machine::cm5(32));
    let keys = DistArray::<i32>::from_fn(&ctx, &[n], &[PAR], |i| {
        ((i[0] * 2654435761) % 1000003) as i32
    });
    g.bench_function("sort_keys", |b| {
        b.iter(|| black_box(dpf_comm::sort_keys(&ctx, &keys)))
    });
    let grid = DistArray::<f64>::from_fn(&ctx, &[512, 512], &[PAR, PAR], |i| (i[0] + i[1]) as f64);
    let pts = dpf_comm::star_stencil(2, -4.0, 1.0);
    g.bench_function("stencil_5pt_512", |b| {
        b.iter(|| {
            black_box(dpf_comm::stencil(
                &ctx,
                &grid,
                &pts,
                dpf_comm::StencilBoundary::Cyclic,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_section2_codes, bench_primitives);
criterion_main!(benches);
