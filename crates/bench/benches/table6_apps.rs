//! Table 6 — the twenty application codes, one Criterion benchmark per
//! row, at the Small size tier (the per-iteration characterization is
//! size-independent; wall time per row stays CI-friendly).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dpf_core::Machine;
use dpf_suite::{registry, run_basic, Group, Size};

fn bench_table6_rows(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    let machine = Machine::cm5(32);
    for entry in registry()
        .into_iter()
        .filter(|e| e.group == Group::Application)
    {
        g.bench_function(entry.name, |b| {
            b.iter(|| black_box(run_basic(&entry, &machine, Size::Small).report.perf.flops))
        });
    }
    g.finish();
}

fn bench_medium_grid_codes(c: &mut Criterion) {
    // The grid-based subset at Medium size — the paper's dominating
    // workloads (fluid dynamics) at a representative scale.
    let mut g = c.benchmark_group("table6_medium");
    g.sample_size(10);
    let machine = Machine::cm5(32);
    for name in [
        "diff-3D",
        "ellip-2D",
        "rp",
        "step4",
        "wave-1D",
        "ks-spectral",
    ] {
        let entry = dpf_suite::find(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_basic(&entry, &machine, Size::Medium).report.perf.flops))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table6_rows, bench_medium_grid_codes);
criterion_main!(benches);
