//! The version axis of Table 1: the same kernel in its "typical user
//! code" spelling versus the tuned alternative — the comparison the
//! suite was built to let compiler writers make.
//!
//! * `matrix-vector`: basic (`SUM(SPREAD(x)·A)`) vs library (blocked).
//! * `n-body`: all eight Table 6 variants.
//! * `pic`: colliding deposit (pic-simple style) vs the sorted
//!   scan-combined deposit (pic-gather-scatter).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dpf_apps::n_body::{self, Variant};
use dpf_core::{Ctx, Machine};
use dpf_suite::{find, run, Size, Version};

fn bench_matvec_versions(c: &mut Criterion) {
    let mut g = c.benchmark_group("matvec_versions");
    g.sample_size(10);
    let entry = find("matrix-vector").unwrap();
    let machine = Machine::cm5(32);
    for version in [Version::Basic, Version::Library] {
        g.bench_function(version.name(), |b| {
            b.iter(|| {
                black_box(
                    run(&entry, version, &machine, Size::Medium)
                        .report
                        .perf
                        .flops,
                )
            })
        });
    }
    g.finish();
}

fn bench_version_axis(c: &mut Criterion) {
    // Every benchmark with a tuned alternate: basic vs that alternate.
    let mut g = c.benchmark_group("version_axis");
    g.sample_size(10);
    let machine = Machine::cm5(32);
    for (name, alt) in [
        ("conj-grad", Version::Optimized),
        ("diff-3D", Version::Optimized),
        ("step4", Version::CDpeac),
        ("lu", Version::Cmssl),
        ("fermion", Version::Optimized),
        ("wave-1D", Version::Optimized),
    ] {
        let entry = find(name).unwrap();
        g.bench_function(format!("{name}_basic"), |b| {
            b.iter(|| {
                black_box(
                    run(&entry, Version::Basic, &machine, Size::Medium)
                        .report
                        .perf
                        .flops,
                )
            })
        });
        g.bench_function(format!("{name}_{}", alt.name().replace('/', "_")), |b| {
            b.iter(|| black_box(run(&entry, alt, &machine, Size::Medium).report.perf.flops))
        });
    }
    g.finish();
}

fn bench_nbody_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("nbody_variants");
    g.sample_size(10);
    let machine = Machine::cm5(32);
    let n: usize = 192;
    for variant in Variant::ALL {
        g.bench_function(variant.name().replace([' ', '/'], "_"), |b| {
            b.iter(|| {
                let ctx = Ctx::new(machine.clone());
                let pad = if variant.name().contains("fill") {
                    n.next_power_of_two()
                } else {
                    n
                };
                let parts = n_body::workload(&ctx, n, pad);
                black_box(n_body::forces(&ctx, &parts, variant, 1e-2))
            })
        });
    }
    g.finish();
}

fn bench_pic_deposit_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("pic_deposit");
    g.sample_size(10);
    let machine = Machine::cm5(32);
    let np = 1 << 14;
    // Colliding (pic-simple style) deposit.
    g.bench_function("colliding", |b| {
        b.iter(|| {
            let ctx = Ctx::new(machine.clone());
            let p = dpf_apps::pic_gather_scatter::Params {
                np,
                ng: 8,
                steps: 1,
            };
            let (cells, charge) = dpf_apps::pic_gather_scatter::workload(&ctx, &p);
            let mut grid =
                dpf_array::DistArray::<f64>::zeros(&ctx, &[8 * 8 * 8], &[dpf_array::PAR]);
            dpf_comm::scatter_combine(&ctx, &mut grid, &cells, &charge, dpf_comm::Combine::Add);
            black_box(grid)
        })
    });
    // Sorted, scan-combined, collision-free deposit.
    g.bench_function("sorted_scan", |b| {
        b.iter(|| {
            let ctx = Ctx::new(machine.clone());
            let p = dpf_apps::pic_gather_scatter::Params {
                np,
                ng: 8,
                steps: 1,
            };
            let (cells, charge) = dpf_apps::pic_gather_scatter::workload(&ctx, &p);
            black_box(dpf_apps::pic_gather_scatter::deposit_sorted(
                &ctx, &p, &cells, &charge,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_matvec_versions,
    bench_version_axis,
    bench_nbody_variants,
    bench_pic_deposit_strategies
);
criterion_main!(benches);
