//! Ablations of the reproduction's own design choices (DESIGN.md §5):
//!
//! * composite stencil driver vs the equivalent explicit CSHIFT
//!   composition (same arithmetic, different instrumentation/fusion);
//! * instrumentation overhead: a run with full accounting vs the raw
//!   kernel arithmetic;
//! * virtual machine size: accounting cost is O(1) in `nprocs` for
//!   shifts but O(n) for router ops — measure both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dpf_array::{DistArray, PAR};
use dpf_comm::{cshift, gather, star_stencil, stencil, StencilBoundary};
use dpf_core::{Ctx, Machine};

fn bench_stencil_vs_cshift_composition(c: &mut Criterion) {
    let mut g = c.benchmark_group("stencil_ablation");
    g.sample_size(10);
    let ctx = Ctx::new(Machine::cm5(32));
    let n = 512;
    let a = DistArray::<f64>::from_fn(&ctx, &[n, n], &[PAR, PAR], |i| (i[0] * n + i[1]) as f64);
    let pts = star_stencil(2, -4.0, 1.0);
    g.bench_function("composite_driver", |b| {
        b.iter(|| black_box(stencil(&ctx, &a, &pts, StencilBoundary::Cyclic)))
    });
    g.bench_function("explicit_cshifts", |b| {
        b.iter(|| {
            let north = cshift(&ctx, &a, 0, -1);
            let south = cshift(&ctx, &a, 0, 1);
            let west = cshift(&ctx, &a, 1, -1);
            let east = cshift(&ctx, &a, 1, 1);
            let sum = north
                .zip_map(&ctx, 1, &south, |p, q| p + q)
                .zip_map(&ctx, 1, &west, |p, q| p + q)
                .zip_map(&ctx, 1, &east, |p, q| p + q);
            black_box(a.zip_map(&ctx, 2, &sum, |centre, nb| nb - 4.0 * centre))
        })
    });
    g.finish();
}

fn bench_accounting_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("accounting_overhead");
    g.sample_size(10);
    let n = 1 << 18;
    // Instrumented element-wise update.
    let ctx = Ctx::new(Machine::cm5(32));
    let a = DistArray::<f64>::from_fn(&ctx, &[n], &[PAR], |i| i[0] as f64);
    g.bench_function("instrumented_axpy", |b| {
        let mut y = DistArray::<f64>::zeros(&ctx, &[n], &[PAR]);
        b.iter(|| {
            y.zip_inplace(&ctx, 2, &a, |yi, ai| *yi += 1.0001 * ai);
            black_box(y.as_slice()[0])
        })
    });
    // Raw slice arithmetic (no context, no accounting).
    g.bench_function("raw_axpy", |b| {
        let src: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut dst = vec![0.0f64; n];
        b.iter(|| {
            for (d, s) in dst.iter_mut().zip(&src) {
                *d += 1.0001 * s;
            }
            black_box(dst[0])
        })
    });
    g.finish();
}

fn bench_router_accounting_vs_machine_size(c: &mut Criterion) {
    // gather's exact owner comparison is O(n) regardless of P; confirm
    // the virtual machine size doesn't change the cost.
    let mut g = c.benchmark_group("router_accounting");
    g.sample_size(10);
    let n = 1 << 16;
    for procs in [1usize, 32, 1024] {
        let ctx = Ctx::new(Machine::cm5(procs));
        let src = DistArray::<f64>::from_fn(&ctx, &[n], &[PAR], |i| i[0] as f64);
        let idx = DistArray::<i32>::from_fn(&ctx, &[n], &[PAR], move |i| ((i[0] * 131) % n) as i32);
        g.bench_with_input(BenchmarkId::new("gather", procs), &procs, |b, _| {
            b.iter(|| black_box(gather(&ctx, &src, &idx)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_stencil_vs_cshift_composition,
    bench_accounting_overhead,
    bench_router_accounting_vs_machine_size
);
criterion_main!(benches);
