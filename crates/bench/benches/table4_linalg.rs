//! Table 4 — the linear-algebra library codes, one Criterion benchmark
//! per row (matrix-vector, lu, qr, gauss-jordan, pcr ×3 layouts,
//! conj-grad, jacobi, fft 1-D/2-D/3-D).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dpf_core::{Ctx, Machine};
use dpf_suite::{find, run_basic, runners, Size};

fn bench_table4_rows(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    let machine = Machine::cm5(32);
    for name in [
        "matrix-vector",
        "lu",
        "qr",
        "gauss-jordan",
        "pcr",
        "conj-grad",
        "jacobi",
        "fft",
    ] {
        let entry = find(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_basic(&entry, &machine, Size::Medium).report.perf.flops))
        });
    }
    g.finish();
}

fn bench_pcr_layout_variants(c: &mut Criterion) {
    // Table 2's three pcr layouts: single system, 2-D batch, 3-D batch.
    let mut g = c.benchmark_group("pcr_variants");
    g.sample_size(10);
    let machine = Machine::cm5(32);
    #[allow(clippy::type_complexity)]
    let variants: [(&str, fn(&Ctx, Size) -> dpf_suite::RunOutput); 3] = [
        ("1d_single", runners::pcr_1d),
        ("2d_batch", runners::pcr_2d),
        ("3d_batch", runners::pcr_3d),
    ];
    for (label, f) in variants {
        g.bench_function(label, |b| {
            b.iter(|| {
                let ctx = Ctx::new(machine.clone());
                black_box(f(&ctx, Size::Medium).points)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table4_rows, bench_pcr_layout_variants);
criterion_main!(benches);
