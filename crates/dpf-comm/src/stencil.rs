//! Stencil driver — regular neighbourhood evaluation.
//!
//! Table 8 lists three stencil implementation techniques in the suite:
//! CSHIFT composition (boson, wave-1D, ellip-2D, rp, mdcell), *chained*
//! CSHIFT (step4) and array sections (diff-1D/2D/3D). This module provides
//! the composite driver: it records **one** `Stencil` event per invocation
//! (suppressing its internal shifts so communication counts per iteration
//! match the paper's Table 6) and charges the off-processor volume of the
//! halo exchange — for each stencil point with a non-zero axis offset, the
//! block-boundary elements of that axis cross processors once.
//!
//! Under the SPMD backend each worker collects the set of off-block
//! source elements its outputs touch (the halo, deduplicated across
//! stencil points), fetches it from the owners in one request/reply
//! round, and then evaluates its own outputs in the same per-point
//! accumulation order as the host loop — so results match bit for bit
//! while only the halo crosses the channels.

use crate::spmd::{split_mut, split_ref, PullMsg};
use dpf_array::{DistArray, MAX_RANK, PAR_THRESHOLD};
use dpf_core::{CommPattern, Ctx, Elem, Num, Router};
use rayon::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Boundary handling for a stencil application.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StencilBoundary<T> {
    /// Periodic (CSHIFT-style) boundaries.
    Cyclic,
    /// Out-of-range neighbours read the given value (Dirichlet via
    /// conditionalized EOSHIFT).
    Fixed(T),
}

/// One stencil point: an offset per axis and a weight.
#[derive(Clone, Debug, PartialEq)]
pub struct StencilPoint<T> {
    /// Offset added to the element index, one entry per axis.
    pub offset: Vec<isize>,
    /// Coefficient.
    pub weight: T,
}

impl<T> StencilPoint<T> {
    /// Convenience constructor.
    pub fn new(offset: &[isize], weight: T) -> Self {
        StencilPoint {
            offset: offset.to_vec(),
            weight,
        }
    }
}

/// Apply a constant-coefficient stencil: `out[i] = Σ_k w_k · a[i + o_k]`.
///
/// Charges `points + (points − 1)` FLOPs per element (multiplies plus the
/// combining adds) scaled by the dtype, and records a single `Stencil`
/// communication event whose off-processor volume is the exact halo the
/// equivalent CSHIFT composition would exchange.
pub fn stencil<T: Num>(
    ctx: &Ctx,
    a: &DistArray<T>,
    points: &[StencilPoint<T>],
    boundary: StencilBoundary<T>,
) -> DistArray<T> {
    // Every output element is overwritten with the accumulated sum, so a
    // pooled scratch buffer (possibly holding stale data) is safe.
    let mut out = DistArray::<T>::scratch(ctx, a.shape(), a.layout().axes());
    stencil_into(ctx, a, points, boundary, &mut out);
    out
}

/// Like [`stencil`], but writing into an existing same-shaped array
/// instead of allocating. Charges the identical FLOPs and records the
/// identical `Stencil` communication event.
pub fn stencil_into<T: Num>(
    ctx: &Ctx,
    a: &DistArray<T>,
    points: &[StencilPoint<T>],
    boundary: StencilBoundary<T>,
    out: &mut DistArray<T>,
) {
    assert!(!points.is_empty(), "stencil needs at least one point");
    assert!(
        a.rank() <= MAX_RANK,
        "stencil driver supports rank <= {MAX_RANK}"
    );
    assert_eq!(a.shape(), out.shape(), "stencil output shape mismatch");
    for p in points {
        assert_eq!(p.offset.len(), a.rank(), "stencil offset rank mismatch");
    }
    let npts = points.len() as u64;
    ctx.add_flops(
        a.len() as u64 * (npts * T::DTYPE.mul_flops() + (npts - 1) * T::DTYPE.add_flops()),
    );
    record_stencil(ctx, a, points.iter().map(|p| p.offset.as_slice()));

    let shape = a.shape();
    let rank = shape.len();
    let strides = a.layout().strides();
    let apply = |flat: usize, slot: &mut T| {
        // Decode the multi-index once per element.
        let mut idx = [0usize; MAX_RANK];
        let mut rem = flat;
        for d in (0..rank).rev() {
            idx[d] = rem % shape[d];
            rem /= shape[d];
        }
        let mut acc = T::zero();
        'points: for p in points {
            let mut off = 0usize;
            for d in 0..rank {
                let j = idx[d] as isize + p.offset[d];
                let j = if j < 0 || j >= shape[d] as isize {
                    match boundary {
                        StencilBoundary::Cyclic => j.rem_euclid(shape[d] as isize) as usize,
                        StencilBoundary::Fixed(fill) => {
                            acc += p.weight * fill;
                            continue 'points;
                        }
                    }
                } else {
                    j as usize
                };
                off += j * strides[d];
            }
            acc += p.weight * a.as_slice()[off];
        }
        *slot = acc;
    };
    if ctx.spmd() && a.layout().is_distributed() && out.layout() == a.layout() {
        let layout = a.layout();
        let out_layout = out.layout().clone();
        let shape = &shape;
        let strides = &strides;
        ctx.busy(|| {
            let p = ctx.nprocs();
            let work: Vec<_> = split_ref(layout, a.as_slice(), p)
                .into_iter()
                .zip(split_mut(&out_layout, out.as_mut_slice(), p))
                // dpf-lint: allow(hot-path-alloc, reason = "O(p) worker-view table built once per collective, same as the spmd.rs exec drivers")
                .collect();
            let esize = T::DTYPE.size() as u64;
            dpf_core::run_workers(
                p,
                ctx.transport(),
                work,
                |wrank, (src, dst), router: &mut Router<'_, PullMsg<T>>| {
                    // Source flat a point reads for an output flat; None
                    // means the fixed boundary value (no communication).
                    let src_off = |flat: usize, pt: &StencilPoint<T>| -> Option<usize> {
                        let mut idx = [0usize; MAX_RANK];
                        let mut rem = flat;
                        for d in (0..rank).rev() {
                            idx[d] = rem % shape[d];
                            rem /= shape[d];
                        }
                        let mut off = 0usize;
                        for d in 0..rank {
                            let j = idx[d] as isize + pt.offset[d];
                            let j = if j < 0 || j >= shape[d] as isize {
                                match boundary {
                                    StencilBoundary::Cyclic => {
                                        j.rem_euclid(shape[d] as isize) as usize
                                    }
                                    StencilBoundary::Fixed(_) => return None,
                                }
                            } else {
                                j as usize
                            };
                            off += j * strides[d];
                        }
                        Some(off)
                    };
                    // Collect the halo: off-block sources, deduplicated.
                    let mut needed: Vec<BTreeSet<usize>> =
                        (0..p).map(|_| BTreeSet::new()).collect();
                    for (start, len) in dst.ranges() {
                        for flat in start..start + len {
                            for pt in points {
                                if let Some(off) = src_off(flat, pt) {
                                    let owner = layout.owner_id_flat(off);
                                    if owner != wrank {
                                        needed[owner].insert(off);
                                    }
                                }
                            }
                        }
                    }
                    for (q, set) in needed.iter().enumerate() {
                        router.send(q, 0, PullMsg::Req(set.iter().copied().collect()));
                    }
                    for q in 0..p {
                        let PullMsg::Req(r) = router.recv_from(q) else {
                            unreachable!("halo protocol: Req must precede Vals");
                        };
                        let vals: Vec<T> = r.iter().map(|&s| src.get(s)).collect();
                        router.send(q, vals.len() as u64 * esize, PullMsg::Vals(vals));
                    }
                    let mut halo: BTreeMap<usize, T> = BTreeMap::new();
                    for (q, set) in needed.into_iter().enumerate() {
                        let PullMsg::Vals(v) = router.recv_from(q) else {
                            unreachable!("halo protocol: Req must precede Vals");
                        };
                        halo.extend(set.into_iter().zip(v));
                    }
                    // Evaluate own outputs in the host loop's per-point
                    // accumulation order.
                    for (start, len) in dst.ranges() {
                        for flat in start..start + len {
                            let mut acc = T::zero();
                            for pt in points {
                                match src_off(flat, pt) {
                                    Some(off) => {
                                        let v = if layout.owner_id_flat(off) == wrank {
                                            src.get(off)
                                        } else {
                                            halo[&off]
                                        };
                                        acc += pt.weight * v;
                                    }
                                    None => {
                                        if let StencilBoundary::Fixed(fill) = boundary {
                                            acc += pt.weight * fill;
                                        }
                                    }
                                }
                            }
                            dst.set(flat, acc);
                        }
                    }
                },
            );
        });
    } else {
        // Interior/boundary split: a cell all of whose stencil reads stay
        // in range needs no index decode, no wrap test and no boundary
        // branch — just `Σ w_k · src[flat + flat_off_k]`. Only the cells
        // within the offset extent of an edge (the halo-depth shell) take
        // the general `apply` path. The per-point accumulation order is
        // identical, so results are bit-for-bit the same.
        let mut lo = [0usize; MAX_RANK];
        let mut hi = [0usize; MAX_RANK];
        for d in 0..rank {
            let neg = points
                .iter()
                .map(|p| (-p.offset[d]).max(0) as usize)
                .max()
                .unwrap_or(0);
            let pos = points
                .iter()
                .map(|p| p.offset[d].max(0) as usize)
                .max()
                .unwrap_or(0);
            lo[d] = neg.min(shape[d]);
            hi[d] = shape[d].saturating_sub(pos).max(lo[d]);
        }
        let flat_offs: Vec<isize> = points
            .iter()
            .map(|p| {
                p.offset
                    .iter()
                    .zip(strides.iter())
                    .map(|(&o, &s)| o * s as isize)
                    .sum()
            })
            // dpf-lint: allow(hot-path-alloc, reason = "O(points) flat-offset table built once per stencil call, not per element")
            .collect();
        let inner_n = shape[rank - 1];
        let src = a.as_slice();
        // Evaluate the flat range [start, start + dst.len()): row by row,
        // boundary cells via `apply`, interior cells via the offset table.
        let process_range = |start: usize, dst: &mut [T]| {
            let end = start + dst.len();
            let mut flat = start;
            while flat < end {
                let row_start = flat - (flat % inner_n);
                let row_end = (row_start + inner_n).min(end);
                let mut idx = [0usize; MAX_RANK];
                let mut rem = row_start / inner_n;
                for d in (0..rank - 1).rev() {
                    idx[d] = rem % shape[d];
                    rem /= shape[d];
                }
                let outer_interior = (0..rank - 1).all(|d| idx[d] >= lo[d] && idx[d] < hi[d]);
                if outer_interior {
                    let int_lo = (row_start + lo[rank - 1]).clamp(flat, row_end);
                    let int_hi = (row_start + hi[rank - 1]).clamp(int_lo, row_end);
                    for f in flat..int_lo {
                        apply(f, &mut dst[f - start]);
                    }
                    for f in int_lo..int_hi {
                        let mut acc = T::zero();
                        for (pt, &o) in points.iter().zip(&flat_offs) {
                            acc += pt.weight * src[(f as isize + o) as usize];
                        }
                        dst[f - start] = acc;
                    }
                    for f in int_hi..row_end {
                        apply(f, &mut dst[f - start]);
                    }
                } else {
                    for f in flat..row_end {
                        apply(f, &mut dst[f - start]);
                    }
                }
                flat = row_end;
            }
        };
        ctx.busy(|| {
            let len = out.len();
            let dst = out.as_mut_slice();
            if len >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
                let span = len.div_ceil(rayon::current_num_threads()).max(1);
                dst.par_chunks_mut(span)
                    .enumerate()
                    .for_each(|(i, c)| process_range(i * span, c));
            } else {
                process_range(0, dst);
            }
        });
    }
    ctx.faults.inject_slice("stencil", out.as_mut_slice());
}

/// Record the halo volume of a stencil: per point, the number of elements
/// whose owner differs from the owner of the offset position (per-axis
/// block-boundary fractions combined by inclusion–exclusion, exact for
/// uniform blocks).
fn record_stencil<'a, T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    offsets: impl Iterator<Item = &'a [isize]>,
) {
    let layout = a.layout();
    let len = a.len() as f64;
    let mut offproc_elems = 0.0f64;
    for off in offsets {
        if off.iter().all(|&o| o == 0) {
            continue;
        }
        let mut stay = 1.0f64;
        for (d, &o) in off.iter().enumerate() {
            let n = a.shape()[d] as f64;
            let moved = layout.offproc_per_lane(d, o) as f64;
            stay *= 1.0 - moved / n;
        }
        offproc_elems += len * (1.0 - stay);
    }
    ctx.record_comm(
        CommPattern::Stencil,
        a.rank(),
        a.rank(),
        a.len() as u64,
        (offproc_elems.round() as u64) * T::DTYPE.size() as u64,
    );
}

/// The classical `2·rank + 1`-point Laplacian-style star stencil
/// (centre weight plus one weight for every face neighbour).
pub fn star_stencil<T: Num>(rank: usize, centre: T, neighbour: T) -> Vec<StencilPoint<T>> {
    let mut pts = vec![StencilPoint::new(&vec![0isize; rank], centre)];
    for d in 0..rank {
        for s in [-1isize, 1] {
            let mut off = vec![0isize; rank];
            off[d] = s;
            pts.push(StencilPoint {
                offset: off,
                weight: neighbour,
            });
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpf_array::PAR;
    use dpf_core::Machine;

    fn ctx(p: usize) -> Ctx {
        Ctx::new(Machine::cm5(p))
    }

    #[test]
    fn three_point_stencil_cyclic() {
        let ctx = ctx(4);
        let a = DistArray::<f64>::from_fn(&ctx, &[4], &[PAR], |i| i[0] as f64);
        // out[i] = a[i-1] + a[i] + a[i+1] (cyclic)
        let pts = star_stencil(1, 1.0, 1.0);
        let out = stencil(&ctx, &a, &pts, StencilBoundary::Cyclic);
        assert_eq!(
            out.to_vec(),
            vec![0. + 1. + 3., 0. + 1. + 2., 1. + 2. + 3., 2. + 3. + 0.]
        );
    }

    #[test]
    fn dirichlet_boundary_uses_fill() {
        let ctx = ctx(2);
        let a = DistArray::<f64>::from_vec(&ctx, &[3], &[PAR], vec![1., 2., 3.]);
        let pts = star_stencil(1, 0.0, 1.0);
        let out = stencil(&ctx, &a, &pts, StencilBoundary::Fixed(10.0));
        // out[0] = fill + a[1] = 12; out[1] = a[0]+a[2] = 4; out[2] = a[1]+fill = 12.
        assert_eq!(out.to_vec(), vec![12.0, 4.0, 12.0]);
    }

    #[test]
    fn five_point_laplacian_2d() {
        let ctx = ctx(4);
        let a = DistArray::<f64>::from_fn(&ctx, &[4, 4], &[PAR, PAR], |i| (i[0] * 4 + i[1]) as f64);
        let pts = star_stencil(2, -4.0, 1.0);
        let out = stencil(&ctx, &a, &pts, StencilBoundary::Cyclic);
        // Interior point (1,1): neighbours 1+9+4+6 - 4*5 = 0.
        assert_eq!(out.get(&[1, 1]), 0.0);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Stencil), 1);
        // Constituent shifts are suppressed.
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Cshift), 0);
    }

    #[test]
    fn stencil_charges_2p_minus_1_flops() {
        let ctx = ctx(1);
        let a = DistArray::<f64>::zeros(&ctx, &[10], &[PAR]);
        let pts = star_stencil(1, 1.0, 0.5); // 3 points
        let _ = stencil(&ctx, &a, &pts, StencilBoundary::Cyclic);
        assert_eq!(ctx.instr.flops(), 10 * 5);
    }

    #[test]
    fn halo_volume_counts_block_boundaries() {
        let ctx = ctx(4);
        // 16 doubles over 4 procs, 3-point stencil: each +-1 shift moves 4
        // elements -> 8 elements * 8 bytes = 64.
        let a = DistArray::<f64>::zeros(&ctx, &[16], &[PAR]);
        let pts = star_stencil(1, 1.0, 1.0);
        let _ = stencil(&ctx, &a, &pts, StencilBoundary::Cyclic);
        let snap = ctx.instr.comm_snapshot();
        assert_eq!(snap.values().next().unwrap().offproc_bytes, 64);
    }

    #[test]
    fn stencil_into_matches_allocating_and_records_identically() {
        let ctx_a = ctx(4);
        let ctx_b = ctx(4);
        let mk = |c: &Ctx| {
            DistArray::<f64>::from_fn(c, &[6, 7], &[PAR, PAR], |i| (i[0] * 7 + i[1]) as f64)
        };
        let a = mk(&ctx_a);
        let b = mk(&ctx_b);
        let pts = star_stencil(2, -4.0, 1.0);
        let expected = stencil(&ctx_a, &a, &pts, StencilBoundary::Fixed(2.5));

        let mut out = DistArray::<f64>::zeros(&ctx_b, &[6, 7], &[PAR, PAR]);
        stencil_into(&ctx_b, &b, &pts, StencilBoundary::Fixed(2.5), &mut out);
        assert_eq!(out.to_vec(), expected.to_vec());
        assert_eq!(ctx_a.instr.flops(), ctx_b.instr.flops());
        assert_eq!(ctx_a.instr.comm_snapshot(), ctx_b.instr.comm_snapshot());
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn offset_rank_must_match() {
        let ctx = ctx(1);
        let a = DistArray::<f64>::zeros(&ctx, &[4, 4], &[PAR, PAR]);
        let pts = vec![StencilPoint::new(&[1], 1.0)];
        let _ = stencil(&ctx, &a, &pts, StencilBoundary::Cyclic);
    }
}
