//! Collective communication for the DPF suite.
//!
//! These are the data-motion primitives the paper's §1.5 communication
//! inventory names: CSHIFT/EOSHIFT, SPREAD/broadcast, reductions, scans
//! (plain and segmented), gather/scatter with combiners, send/get, sort,
//! the AAPC transpose, and the composite stencil driver. Each primitive
//! records `(pattern, src rank, dst rank, elements, exact off-processor
//! bytes under the block layouts)` into the run's [`Ctx`](dpf_core::Ctx)
//! — the raw material for the paper's Tables 3, 6 and 7.
//!
//! Two execution backends share that accounting. Under the default
//! [`Backend::Virtual`](dpf_core::Backend) a primitive computes its
//! result on the host (rayon pool); under
//! [`Backend::Spmd`](dpf_core::Backend) it runs as one worker thread per
//! virtual processor exchanging block data over typed channels (see the
//! `spmd` module), producing element-identical results while actually
//! moving the modeled bytes. The sample sort keeps its host
//! implementation under both backends: the paper treats it as a composite
//! benchmark whose communication is recorded through the gather/scatter
//! primitives it is built from.

#![warn(missing_docs)]

pub mod fuse;
pub mod gather;
pub mod reduce;
pub mod scan;
pub mod shift;
pub mod sort;
mod spmd;
pub mod spread;
pub mod stencil;
pub mod transpose;

pub use gather::{
    gather, gather_combine, gather_nd, get, scatter, scatter_combine, scatter_nd_combine, send,
    try_gather, try_gather_nd, try_scatter, try_scatter_combine, try_scatter_nd_combine, Combine,
};
pub use reduce::{dot, max_all, maxloc_abs, min_all, product_all, sum_all, sum_axis, sum_masked};
pub use scan::{scan_add, scan_add_exclusive, segmented_copy_scan, segmented_scan_add};
pub use shift::{cshift, cshift_into, eoshift, eoshift_into};
pub use sort::{apply_perm, sort_keys, sort_keys_f64};
pub use spread::{broadcast, broadcast_scalar, spread};
pub use stencil::{star_stencil, stencil, stencil_into, StencilBoundary, StencilPoint};
pub use transpose::{transpose, transpose_axes, try_transpose};

#[cfg(test)]
mod proptests {
    use super::*;
    use dpf_array::{DistArray, PAR};
    use dpf_core::{Ctx, Machine};
    use proptest::prelude::*;

    fn ctx(p: usize) -> Ctx {
        Ctx::new(Machine::cm5(p))
    }

    proptest! {
        #[test]
        fn cshift_inverse(n in 1usize..64, shift in -70isize..70, p in 1usize..9) {
            let ctx = ctx(p);
            let a = DistArray::<i32>::from_fn(&ctx, &[n], &[PAR], |i| i[0] as i32);
            let b = cshift(&ctx, &cshift(&ctx, &a, 0, shift), 0, -shift);
            prop_assert_eq!(b.to_vec(), a.to_vec());
        }

        #[test]
        fn cshift_matches_rotate(n in 1usize..64, shift in 0isize..64) {
            let ctx = ctx(4);
            let a = DistArray::<i32>::from_fn(&ctx, &[n], &[PAR], |i| i[0] as i32);
            let s = cshift(&ctx, &a, 0, shift);
            let mut expect: Vec<i32> = (0..n as i32).collect();
            expect.rotate_left(shift as usize % n);
            prop_assert_eq!(s.to_vec(), expect);
        }

        #[test]
        fn scan_then_diff_recovers(n in 2usize..50) {
            let ctx = ctx(4);
            let a = DistArray::<i32>::from_fn(&ctx, &[n], &[PAR], |i| (i[0] * 7 % 11) as i32);
            let s = scan_add(&ctx, &a, 0);
            let sv = s.to_vec();
            let av = a.to_vec();
            prop_assert_eq!(sv[0], av[0]);
            for i in 1..n {
                prop_assert_eq!(sv[i] - sv[i - 1], av[i]);
            }
        }

        #[test]
        fn reduction_matches_serial_sum(n in 1usize..200, p in 1usize..17) {
            let ctx = ctx(p);
            let a = DistArray::<i32>::from_fn(&ctx, &[n], &[PAR], |i| i[0] as i32 - 50);
            let total = sum_all(&ctx, &a);
            let serial: i32 = (0..n as i32).map(|i| i - 50).sum();
            prop_assert_eq!(total, serial);
        }

        #[test]
        fn gather_scatter_roundtrip(n in 1usize..60) {
            // Scattering through a permutation then gathering through it
            // recovers the original array.
            let ctx = ctx(4);
            let src = DistArray::<i32>::from_fn(&ctx, &[n], &[PAR], |i| (i[0] * 3) as i32);
            let idx = DistArray::<i32>::from_fn(&ctx, &[n], &[PAR], |i| {
                ((i[0] * 7 + 3) % n) as i32
            });
            // Only meaningful when the map is a bijection.
            let mut seen = vec![false; n];
            let mut bijective = true;
            for &i in idx.as_slice() {
                if seen[i as usize] { bijective = false; break; }
                seen[i as usize] = true;
            }
            prop_assume!(bijective);
            let mut dst = DistArray::<i32>::zeros(&ctx, &[n], &[PAR]);
            scatter(&ctx, &mut dst, &idx, &src);
            let back = gather(&ctx, &dst, &idx);
            prop_assert_eq!(back.to_vec(), src.to_vec());
        }

        #[test]
        fn spread_then_sum_axis_multiplies(n in 1usize..30, copies in 1usize..8) {
            let ctx = ctx(4);
            let a = DistArray::<i32>::from_fn(&ctx, &[n], &[PAR], |i| i[0] as i32 + 1);
            let s = spread(&ctx, &a, 0, copies, PAR);
            let r = sum_axis(&ctx, &s, 0);
            let expect: Vec<i32> = (0..n).map(|i| (i as i32 + 1) * copies as i32).collect();
            prop_assert_eq!(r.to_vec(), expect);
        }

        #[test]
        fn sort_produces_sorted_permutation(keys in prop::collection::vec(-100i32..100, 1..80)) {
            let ctx = ctx(4);
            let n = keys.len();
            let a = DistArray::<i32>::from_vec(&ctx, &[n], &[PAR], keys.clone());
            let (sorted, perm) = sort_keys(&ctx, &a);
            let sv = sorted.to_vec();
            for w in sv.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            // perm is a permutation of 0..n.
            let mut pv: Vec<i32> = perm.to_vec();
            pv.sort_unstable();
            prop_assert_eq!(pv, (0..n as i32).collect::<Vec<_>>());
            // Applying perm to the keys yields the sorted order.
            let applied = apply_perm(&ctx, &a, &perm);
            prop_assert_eq!(applied.to_vec(), sv);
        }

        #[test]
        fn transpose_involution(r in 1usize..12, c in 1usize..12, p in 1usize..9) {
            let ctx = ctx(p);
            let a = DistArray::<i32>::from_fn(&ctx, &[r, c], &[PAR, PAR], |i| {
                (i[0] * 31 + i[1]) as i32
            });
            let tt = transpose(&ctx, &transpose(&ctx, &a));
            prop_assert_eq!(tt.to_vec(), a.to_vec());
        }

        #[test]
        fn stencil_equals_cshift_composition(n in 2usize..40) {
            let ctx = ctx(4);
            let a = DistArray::<f64>::from_fn(&ctx, &[n], &[PAR], |i| (i[0] * i[0]) as f64);
            let pts = star_stencil(1, -2.0, 1.0);
            let s = stencil(&ctx, &a, &pts, StencilBoundary::Cyclic);
            let left = cshift(&ctx, &a, 0, -1);
            let right = cshift(&ctx, &a, 0, 1);
            let composed = left.zip_map(&ctx, 1, &right, |l, r| l + r)
                .zip_map(&ctx, 2, &a, |lr, c| lr - 2.0 * c);
            for (x, y) in s.to_vec().iter().zip(composed.to_vec()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }

        #[test]
        fn segmented_scan_is_per_segment_prefix(n in 1usize..60, seg_every in 1usize..10) {
            let ctx = ctx(2);
            let a = DistArray::<i32>::from_fn(&ctx, &[n], &[PAR], |i| i[0] as i32 + 1);
            let seg = DistArray::<bool>::from_fn(&ctx, &[n], &[PAR], |i| i[0] % seg_every == 0);
            let s = segmented_scan_add(&ctx, &a, &seg, 0);
            let sv = s.to_vec();
            let mut acc = 0;
            for (i, &got) in sv.iter().enumerate() {
                if i % seg_every == 0 { acc = 0; }
                acc += i as i32 + 1;
                prop_assert_eq!(got, acc);
            }
        }
    }
}
