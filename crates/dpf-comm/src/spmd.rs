//! Shared machinery for the SPMD backend of the communication primitives.
//!
//! Under [`Backend::Spmd`](dpf_core::Backend) each collective spawns one
//! worker thread per virtual processor
//! ([`run_workers`](dpf_core::run_workers)). A worker sees only its own
//! block of every distributed array — the [`Segs`]/[`SegsMut`] views built
//! here from [`Layout::for_each_owner_segment`] — and obtains every remote
//! element through a typed channel, so the run's
//! [`LinkMeter`](dpf_core::LinkMeter) counts bytes that actually crossed
//! between workers.
//!
//! Four reusable protocols cover the primitives:
//!
//! * [`pull_exec`] — owner-computes-output: each worker maps its output
//!   flats to source flats, requests the off-block ones from their owners
//!   (`Req` round) and receives the values (`Vals` round). Used by the
//!   shifts, spread/broadcast, gather/get/gather_nd and transpose.
//! * [`route_exec`] — owner-computes-source: each worker routes
//!   `(src_flat, dst_flat, value)` triples to the destination owners; the
//!   receiver sorts by source flat before applying, which reproduces the
//!   virtual backend's serial flat-source-order collision semantics
//!   exactly. Used by the scatter/send/combine family.
//! * [`fold_exec`] — a sequential fold whose state travels the global
//!   owner-segment chain in flat order, making whole-array reductions
//!   bit-identical to the virtual backend's serial left fold. Used by the
//!   reductions and the dot product.
//! * [`axis_exec`] — a per-lane pipeline along one axis: lane accumulators
//!   are carried from each axis block to its successor. Used by the scans
//!   and `sum_axis`.
//!
//! Every protocol is acyclic (requests always precede replies;
//! fold/pipeline chains are linear), so the per-sender FIFO order the
//! router guarantees makes deadlock impossible by construction — and the
//! router's timeouts turn any future protocol bug into a diagnosed panic
//! rather than a hang.
//!
//! The value traffic is metered; index/request traffic is sent with zero
//! payload size, since the analytic `Instr` model the tables are built
//! from never charges addressing overhead either.

// The `*_exec` drivers below are the SPMD protocol layer, not numeric hot
// paths: each collective builds its O(p) worker-view table and owned
// message payloads once per call, which is the message-passing model
// itself (frames are owned when handed to the router). Per-element work
// stays allocation-free inside the worker closures.
// dpf-lint: allow-file(hot-path-alloc, reason = "per-collective O(p) view setup and owned message payloads are the SPMD protocol, not per-element hot-path traffic")

use dpf_array::Layout;
use dpf_core::{Ctx, Elem, Router, ShardState};

/// A worker's read-only view of its blocks of one array: the flat
/// segments it owns, ascending.
pub(crate) struct Segs<'a, T> {
    pieces: Vec<(usize, &'a [T])>,
}

impl<T: Copy> Segs<'_, T> {
    /// Value at a flat offset this worker owns.
    #[inline]
    pub(crate) fn get(&self, flat: usize) -> T {
        let i = self.pieces.partition_point(|p| p.0 <= flat);
        let (start, slice) = self.pieces[i - 1];
        slice[flat - start]
    }

    /// The `(start, len)` of every owned segment, ascending.
    pub(crate) fn ranges(&self) -> Vec<(usize, usize)> {
        self.pieces.iter().map(|p| (p.0, p.1.len())).collect()
    }
}

/// A worker's mutable view of its blocks of one array.
pub(crate) struct SegsMut<'a, T> {
    pieces: Vec<(usize, &'a mut [T])>,
}

impl<T: Copy> SegsMut<'_, T> {
    /// Write a flat offset this worker owns.
    #[inline]
    pub(crate) fn set(&mut self, flat: usize, v: T) {
        *self.get_mut(flat) = v;
    }

    /// Mutable slot at a flat offset this worker owns.
    #[inline]
    pub(crate) fn get_mut(&mut self, flat: usize) -> &mut T {
        let i = self.pieces.partition_point(|p| p.0 <= flat);
        let (start, slice) = &mut self.pieces[i - 1];
        &mut slice[flat - *start]
    }

    /// The `(start, len)` of every owned segment, ascending.
    pub(crate) fn ranges(&self) -> Vec<(usize, usize)> {
        self.pieces.iter().map(|p| (p.0, p.1.len())).collect()
    }

    /// Fill every owned element with `v`.
    pub(crate) fn fill(&mut self, v: T) {
        for piece in &mut self.pieces {
            piece.1.fill(v);
        }
    }
}

// In-run recovery snapshots (`--recover in-run`): a worker's shard state
// is whatever it owns *and may mutate* during the collective. Read-only
// source views never change, so they serialize to nothing; mutable views
// capture their owned elements bit-exactly in segment order. Segment
// starts and lengths are structural (fixed by the layout, identical
// across attempts of an epoch) and are not serialized.
impl<T> ShardState for Segs<'_, T> {
    fn capture(&self, _out: &mut Vec<u8>) {}
    fn restore(&mut self, _cursor: &mut &[u8]) {}
}

impl<T: Elem> ShardState for SegsMut<'_, T> {
    fn capture(&self, out: &mut Vec<u8>) {
        for piece in &self.pieces {
            for v in piece.1.iter() {
                v.put_le(out);
            }
        }
    }
    fn restore(&mut self, cursor: &mut &[u8]) {
        for piece in self.pieces.iter_mut() {
            for v in piece.1.iter_mut() {
                *v = T::get_le(cursor);
                *cursor = &cursor[T::WIRE_BYTES..];
            }
        }
    }
}

/// Split a shared slice into per-worker [`Segs`] views per `layout`.
pub(crate) fn split_ref<'a, T>(layout: &Layout, data: &'a [T], nprocs: usize) -> Vec<Segs<'a, T>> {
    let mut out: Vec<Segs<'a, T>> = (0..nprocs).map(|_| Segs { pieces: Vec::new() }).collect();
    layout.for_each_owner_segment(0, layout.len(), |s, l, o| {
        out[o].pieces.push((s, &data[s..s + l]));
    });
    out
}

/// Split a mutable slice into per-worker [`SegsMut`] views per `layout`.
/// Owner segments cover the flat range contiguously in ascending order, so
/// the slice splits left to right without overlap.
pub(crate) fn split_mut<'a, T>(
    layout: &Layout,
    data: &'a mut [T],
    nprocs: usize,
) -> Vec<SegsMut<'a, T>> {
    let mut table: Vec<(usize, usize, usize)> = Vec::new();
    layout.for_each_owner_segment(0, layout.len(), |s, l, o| table.push((s, l, o)));
    let mut out: Vec<SegsMut<'a, T>> = (0..nprocs)
        .map(|_| SegsMut { pieces: Vec::new() })
        .collect();
    let mut rest = data;
    for &(s, l, o) in &table {
        let (seg, r) = rest.split_at_mut(l);
        rest = r;
        out[o].pieces.push((s, seg));
    }
    out
}

/// Where an output element's value comes from in a pull protocol.
pub(crate) enum Src<T> {
    /// Read the source array at this flat offset.
    Flat(usize),
    /// A boundary/fill value needing no communication.
    Fill(T),
}

/// One [`axis_exec`] step: advance the lane state `A` past the element at
/// `flat`, optionally writing results through the `(flat, value)` sink.
pub(crate) type AxisStep<'a, T, A> = &'a (dyn Fn(&mut A, usize, &mut dyn FnMut(usize, T)) + Sync);

/// Message type of [`pull_exec`]: a request for source flats, then the
/// values in request order. `Clone` lets the resilient transport keep a
/// retransmission copy of in-flight frames under link-fault injection.
#[derive(Clone)]
pub(crate) enum PullMsg<T> {
    /// Source flat offsets the sender needs from the receiver's blocks.
    Req(Vec<usize>),
    /// The requested values, in request order.
    Vals(Vec<T>),
}

/// Owner-computes-output pull: every worker maps each of its output flats
/// through `src_of`, fetches off-block sources from their owners over the
/// channels, and writes only its own blocks of `out_data`.
pub(crate) fn pull_exec<T: Elem>(
    ctx: &Ctx,
    src_layout: &Layout,
    src_data: &[T],
    out_layout: &Layout,
    out_data: &mut [T],
    src_of: &(dyn Fn(usize) -> Src<T> + Sync),
) {
    let p = ctx.nprocs();
    let work: Vec<_> = split_ref(src_layout, src_data, p)
        .into_iter()
        .zip(split_mut(out_layout, out_data, p))
        .collect();
    let esize = T::DTYPE.size() as u64;
    dpf_core::run_workers(
        p,
        ctx.transport(),
        work,
        |_rank, (src, out), router: &mut Router<'_, PullMsg<T>>| {
            let p = router.nprocs();
            let mut reqs: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
            let mut places: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
            for (start, len) in out.ranges() {
                for flat in start..start + len {
                    match src_of(flat) {
                        Src::Fill(v) => out.set(flat, v),
                        Src::Flat(s) => {
                            let owner = src_layout.owner_id_flat(s);
                            reqs[owner].push(s);
                            places[owner].push(flat);
                        }
                    }
                }
            }
            for (q, req) in reqs.into_iter().enumerate() {
                router.send(q, 0, PullMsg::Req(req));
            }
            for q in 0..p {
                let PullMsg::Req(r) = router.recv_from(q) else {
                    unreachable!("pull protocol: Req must precede Vals");
                };
                let vals: Vec<T> = r.iter().map(|&s| src.get(s)).collect();
                router.send(q, vals.len() as u64 * esize, PullMsg::Vals(vals));
            }
            for (q, flats) in places.into_iter().enumerate() {
                let PullMsg::Vals(v) = router.recv_from(q) else {
                    unreachable!("pull protocol: Req must precede Vals");
                };
                for (flat, val) in flats.into_iter().zip(v) {
                    out.set(flat, val);
                }
            }
        },
    );
}

/// Distribute one scalar from worker 0 to every worker owning a block of
/// the output layout; each recipient fills its own blocks with the value.
pub(crate) fn broadcast_scalar_exec<T: Elem>(
    ctx: &Ctx,
    layout: &Layout,
    value: T,
    out_data: &mut [T],
) {
    let p = ctx.nprocs();
    let mut has = vec![false; p];
    layout.for_each_owner_segment(0, layout.len(), |_, _, o| has[o] = true);
    let has = &has;
    let work = split_mut(layout, out_data, p);
    let esize = T::DTYPE.size() as u64;
    dpf_core::run_workers(
        p,
        ctx.transport(),
        work,
        move |rank, segs, router: &mut Router<'_, T>| {
            if rank == 0 {
                for (q, &owns) in has.iter().enumerate() {
                    if owns {
                        router.send(q, esize, value);
                    }
                }
            }
            if has[rank] {
                let v = router.recv_from(0);
                segs.fill(v);
            }
        },
    );
}

/// Owner-computes-source push: every worker walks its own source flats,
/// routes `(src_flat, dst_flat, value)` triples to the destination owners,
/// and each receiver applies its incoming triples sorted by source flat —
/// reproducing the virtual backend's serial flat-source-order collision
/// semantics (last-writer-wins for plain scatter, left-to-right combining
/// otherwise).
pub(crate) fn route_exec<T: Elem>(
    ctx: &Ctx,
    src_layout: &Layout,
    src_data: &[T],
    dst_layout: &Layout,
    dst_data: &mut [T],
    dst_of: &(dyn Fn(usize) -> usize + Sync),
    apply: &(dyn Fn(&mut T, T) + Sync),
) {
    let p = ctx.nprocs();
    let work: Vec<_> = split_ref(src_layout, src_data, p)
        .into_iter()
        .zip(split_mut(dst_layout, dst_data, p))
        .collect();
    let esize = T::DTYPE.size() as u64;
    dpf_core::run_workers(
        p,
        ctx.transport(),
        work,
        |_rank, (src, dst), router: &mut Router<'_, Vec<(usize, usize, T)>>| {
            let p = router.nprocs();
            let mut outgoing: Vec<Vec<(usize, usize, T)>> = (0..p).map(|_| Vec::new()).collect();
            for (start, len) in src.ranges() {
                for k in start..start + len {
                    let d = dst_of(k);
                    outgoing[dst_layout.owner_id_flat(d)].push((k, d, src.get(k)));
                }
            }
            for (q, t) in outgoing.into_iter().enumerate() {
                router.send(q, t.len() as u64 * esize, t);
            }
            let mut incoming: Vec<(usize, usize, T)> = Vec::new();
            for q in 0..p {
                incoming.extend(router.recv_from(q));
            }
            // Source flats are unique keys, so the unstable sort is
            // deterministic and recovers global source order.
            incoming.sort_unstable_by_key(|&(k, _, _)| k);
            for (_, d, v) in incoming {
                apply(dst.get_mut(d), v);
            }
        },
    );
}

/// Sequential fold over the whole array in flat order, the state hopping
/// along the global owner-segment chain: the owner of segment `j` receives
/// the state from the owner of segment `j − 1`, folds its elements, and
/// forwards it. Element order — and therefore floating-point rounding — is
/// identical to the virtual backend's serial left fold; only the owner
/// transitions cross a channel (`hop_bytes` each).
pub(crate) fn fold_exec<T: Elem, A: Send + Sync + Clone>(
    ctx: &Ctx,
    layout: &Layout,
    data: &[T],
    init: A,
    hop_bytes: u64,
    step: &(dyn Fn(&mut A, usize, T) + Sync),
) -> A {
    let p = ctx.nprocs();
    let mut table: Vec<(usize, usize, usize)> = Vec::new();
    layout.for_each_owner_segment(0, layout.len(), |s, l, o| table.push((s, l, o)));
    let nseg = table.len();
    let mut mine: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
    for (j, &(_, _, o)) in table.iter().enumerate() {
        mine[o].push(j);
    }
    let work: Vec<_> = split_ref(layout, data, p).into_iter().zip(mine).collect();
    let table = &table;
    let init = &init;
    let results = dpf_core::run_workers(
        p,
        ctx.transport(),
        work,
        |_rank, (segs, my), router: &mut Router<'_, A>| {
            let mut last = None;
            for &j in my.iter() {
                let (s, l, _) = table[j];
                let mut state = if j == 0 {
                    init.clone()
                } else {
                    router.recv_from(table[j - 1].2)
                };
                for flat in s..s + l {
                    step(&mut state, flat, segs.get(flat));
                }
                if j + 1 < nseg {
                    router.send(table[j + 1].2, hop_bytes, state);
                } else {
                    last = Some(state);
                }
            }
            last
        },
    );
    results
        .into_iter()
        .flatten()
        .next()
        .expect("fold chain must end on some worker")
}

/// Per-lane pipeline along `axis`: each worker processes its block of
/// every lane, carrying one accumulator per lane from the predecessor
/// block (same grid coordinates, axis coordinate − 1) to the successor.
/// Within a lane, elements are visited in ascending index order, so
/// scan/reduction rounding matches the virtual backend's serial loops.
///
/// `step(state, flat, write)` handles one element; `write(flat, v)` stores
/// into the worker's own block of the optional same-layout output.
/// Returns the chain-end `(reduced_flat, state)` pairs — the lane's flat
/// offset in the shape with `axis` removed — for axis reductions.
pub(crate) fn axis_exec<T: Elem, A: Send + Sync + Clone>(
    ctx: &Ctx,
    layout: &Layout,
    axis: usize,
    out_data: Option<&mut [T]>,
    init: A,
    lane_hop_bytes: u64,
    step: AxisStep<'_, T, A>,
) -> Vec<(usize, A)> {
    let p = ctx.nprocs();
    let rank = layout.rank();
    let procs: Vec<usize> = (0..rank).map(|d| layout.procs_on(d)).collect();
    let grid: usize = procs.iter().product::<usize>().max(1);
    let blocks = layout.blocks().to_vec();
    let shape = layout.shape().to_vec();
    let strides = layout.strides();
    let work: Vec<Option<SegsMut<'_, T>>> = match out_data {
        Some(d) => split_mut(layout, d, p).into_iter().map(Some).collect(),
        None => (0..p).map(|_| None).collect(),
    };
    let rank_of = |c: &[usize]| -> usize {
        let mut id = 0usize;
        for (d, &ci) in c.iter().enumerate() {
            id = id * procs[d] + ci;
        }
        id
    };
    let init = &init;
    let procs = &procs;
    let blocks = &blocks;
    let shape = &shape;
    let strides = &strides;
    let rank_of = &rank_of;
    let results = dpf_core::run_workers(
        p,
        ctx.transport(),
        work,
        move |wrank, out, router: &mut Router<'_, Vec<A>>| {
            let mut finals: Vec<(usize, A)> = Vec::new();
            if wrank >= grid {
                return finals; // idle virtual processor for this layout
            }
            // Grid coordinates and this worker's box.
            let mut c = vec![0usize; rank];
            let mut r = wrank;
            for d in (0..rank).rev() {
                c[d] = r % procs[d];
                r /= procs[d];
            }
            let mut lo = vec![0usize; rank];
            let mut hi = vec![0usize; rank];
            for d in 0..rank {
                lo[d] = c[d] * blocks[d];
                hi[d] = ((c[d] + 1) * blocks[d]).min(shape[d]);
                if lo[d] >= hi[d] {
                    return finals; // ragged grid: this box is empty
                }
            }
            let lanes_local: usize = (0..rank)
                .filter(|&d| d != axis)
                .map(|d| hi[d] - lo[d])
                .product();
            let pred = (c[axis] > 0).then(|| {
                let mut pc = c.clone();
                pc[axis] -= 1;
                rank_of(&pc)
            });
            let succ = (c[axis] + 1 < procs[axis] && (c[axis] + 1) * blocks[axis] < shape[axis])
                .then(|| {
                    let mut sc = c.clone();
                    sc[axis] += 1;
                    rank_of(&sc)
                });
            // Lane carries arrive in the canonical lane order: the
            // row-major odometer over the non-axis dimensions of the box,
            // which predecessor and successor share.
            let carries: Vec<A> = match pred {
                Some(pr) => router.recv_from(pr),
                None => vec![init.clone(); lanes_local],
            };
            let mut onward: Vec<A> = Vec::with_capacity(lanes_local);
            let mut idx = lo.clone();
            let mut lane = 0usize;
            loop {
                let mut base = 0usize;
                let mut reduced_flat = 0usize;
                for d in 0..rank {
                    if d != axis {
                        base += idx[d] * strides[d];
                        reduced_flat = reduced_flat * shape[d] + idx[d];
                    }
                }
                let mut state = carries[lane].clone();
                {
                    let mut write = |flat: usize, v: T| {
                        if let Some(o) = out.as_mut() {
                            o.set(flat, v);
                        }
                    };
                    for i in lo[axis]..hi[axis] {
                        step(&mut state, base + i * strides[axis], &mut write);
                    }
                }
                if succ.is_some() {
                    onward.push(state);
                } else {
                    finals.push((reduced_flat, state));
                }
                lane += 1;
                // Advance the non-axis odometer within the box.
                let mut d = rank;
                loop {
                    if d == 0 {
                        if let Some(sq) = succ {
                            router.send(sq, lanes_local as u64 * lane_hop_bytes, onward);
                        }
                        return finals;
                    }
                    d -= 1;
                    if d == axis {
                        continue;
                    }
                    idx[d] += 1;
                    if idx[d] < hi[d] {
                        break;
                    }
                    idx[d] = lo[d];
                }
            }
        },
    );
    results.into_iter().flatten().collect()
}
