//! Gather, scatter, send and get — general (router) communication.
//!
//! These are the irregular-addressing primitives of the suite: `FORALL
//! with indirect addressing` in the paper's Table 8, the CMSSL partitioned
//! gather/scatter utilities used by fem-3D, and the `CMF send`/`get`
//! language primitives. All variants compute the exact number of elements
//! whose source and destination fall on different virtual processors by
//! comparing owner ids under the two arrays' layouts.
//!
//! Collision semantics follow the language: plain scatter leaves the
//! last-written value (deterministically, in flat source order here);
//! combining scatters apply `+`, `max` or `min` at collisions.

use dpf_array::DistArray;
use dpf_core::{CommPattern, Ctx, Elem, Num};

/// How a combining scatter resolves collisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Combine {
    /// Sum colliding contributions (`CMF send with add`).
    Add,
    /// Keep the maximum.
    Max,
    /// Keep the minimum.
    Min,
}

fn offproc_count<T: Elem, U: Elem>(
    src: &DistArray<T>,
    dst: &DistArray<U>,
    pairs: impl Iterator<Item = (usize, usize)>,
) -> u64 {
    let sl = src.layout();
    let dl = dst.layout();
    if !sl.is_distributed() && !dl.is_distributed() {
        return 0;
    }
    pairs
        .filter(|&(s, d)| sl.owner_id_flat(s) != dl.owner_id_flat(d))
        .count() as u64
}

/// `out = src(idx)` — gather from a 1-D source through a flat index array
/// of any rank; the result is shaped like `idx`.
pub fn gather<T: Elem>(ctx: &Ctx, src: &DistArray<T>, idx: &DistArray<i32>) -> DistArray<T> {
    gather_as(ctx, src, idx, CommPattern::Gather)
}

/// [`gather`] recorded as the language-level `Get` pattern.
pub fn get<T: Elem>(ctx: &Ctx, src: &DistArray<T>, idx: &DistArray<i32>) -> DistArray<T> {
    gather_as(ctx, src, idx, CommPattern::Get)
}

fn gather_as<T: Elem>(
    ctx: &Ctx,
    src: &DistArray<T>,
    idx: &DistArray<i32>,
    pattern: CommPattern,
) -> DistArray<T> {
    assert_eq!(src.rank(), 1, "gather source must be 1-D (use gather_nd)");
    let n = src.shape()[0] as i32;
    let mut out = DistArray::<T>::zeros(ctx, idx.shape(), idx.layout().axes());
    let offproc = offproc_count(
        src,
        &out,
        idx.as_slice().iter().enumerate().map(|(d, &s)| {
            assert!(s >= 0 && s < n, "gather index {s} out of bounds {n}");
            (s as usize, d)
        }),
    );
    ctx.record_comm(
        pattern,
        src.rank(),
        idx.rank(),
        idx.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
    ctx.busy(|| {
        let s = src.as_slice();
        for (o, &i) in out.as_mut_slice().iter_mut().zip(idx.as_slice()) {
            *o = s[i as usize];
        }
    });
    out
}

/// Multi-dimensional gather: `out[k] = src(idx0[k], idx1[k], …)` with one
/// coordinate array per source axis, all shaped like the result.
pub fn gather_nd<T: Elem>(
    ctx: &Ctx,
    src: &DistArray<T>,
    coords: &[&DistArray<i32>],
) -> DistArray<T> {
    assert_eq!(coords.len(), src.rank(), "need one coordinate array per source axis");
    let out_shape = coords[0].shape().to_vec();
    for c in coords {
        assert_eq!(c.shape(), &out_shape[..], "coordinate arrays must agree in shape");
    }
    let mut out = DistArray::<T>::zeros(ctx, &out_shape, coords[0].layout().axes());
    let strides = src.layout().strides();
    let flat_of = |k: usize| -> usize {
        let mut off = 0usize;
        for (d, c) in coords.iter().enumerate() {
            let i = c.as_slice()[k];
            assert!(
                i >= 0 && (i as usize) < src.shape()[d],
                "gather_nd index {i} out of extent {}",
                src.shape()[d]
            );
            off += i as usize * strides[d];
        }
        off
    };
    let offproc = offproc_count(src, &out, (0..out.len()).map(|k| (flat_of(k), k)));
    ctx.record_comm(
        CommPattern::Gather,
        src.rank(),
        out.rank(),
        out.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
    ctx.busy(|| {
        let s = src.as_slice();
        for k in 0..out.len() {
            out.as_mut_slice()[k] = s[flat_of(k)];
        }
    });
    out
}

/// Plain scatter: `dst(idx[k]) = src[k]` with last-writer-wins collisions.
pub fn scatter<T: Elem>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    idx: &DistArray<i32>,
    src: &DistArray<T>,
) {
    scatter_as(ctx, dst, idx, src, CommPattern::Scatter);
}

/// [`scatter`] recorded as the language-level `Send` pattern.
pub fn send<T: Elem>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    idx: &DistArray<i32>,
    src: &DistArray<T>,
) {
    scatter_as(ctx, dst, idx, src, CommPattern::Send);
}

fn scatter_as<T: Elem>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    idx: &DistArray<i32>,
    src: &DistArray<T>,
    pattern: CommPattern,
) {
    assert_eq!(dst.rank(), 1, "scatter destination must be 1-D (use scatter_nd_*)");
    assert_eq!(idx.shape(), src.shape(), "index and source shapes must agree");
    let n = dst.shape()[0] as i32;
    let offproc = offproc_count(
        src,
        dst,
        idx.as_slice().iter().enumerate().map(|(s, &d)| {
            assert!(d >= 0 && d < n, "scatter index {d} out of bounds {n}");
            (s, d as usize)
        }),
    );
    ctx.record_comm(
        pattern,
        src.rank(),
        dst.rank(),
        src.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
    ctx.busy(|| {
        let d = dst.as_mut_slice();
        for (&i, &v) in idx.as_slice().iter().zip(src.as_slice()) {
            d[i as usize] = v;
        }
    });
}

/// Combining scatter into a 1-D destination: `dst(idx[k]) ⊕= src[k]`.
pub fn scatter_combine<T: Num + PartialOrd>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    idx: &DistArray<i32>,
    src: &DistArray<T>,
    combine: Combine,
) {
    assert_eq!(dst.rank(), 1, "scatter destination must be 1-D (use scatter_nd_*)");
    assert_eq!(idx.shape(), src.shape(), "index and source shapes must agree");
    let n = dst.shape()[0] as i32;
    let offproc = offproc_count(
        src,
        dst,
        idx.as_slice().iter().enumerate().map(|(s, &d)| {
            assert!(d >= 0 && d < n, "scatter index {d} out of bounds {n}");
            (s, d as usize)
        }),
    );
    ctx.record_comm(
        CommPattern::ScatterCombine,
        src.rank(),
        dst.rank(),
        src.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
    if combine == Combine::Add {
        ctx.add_flops(src.len() as u64 * T::DTYPE.add_flops());
    }
    ctx.busy(|| {
        let d = dst.as_mut_slice();
        for (&i, &v) in idx.as_slice().iter().zip(src.as_slice()) {
            let slot = &mut d[i as usize];
            match combine {
                Combine::Add => *slot += v,
                Combine::Max => {
                    if v > *slot {
                        *slot = v;
                    }
                }
                Combine::Min => {
                    if v < *slot {
                        *slot = v;
                    }
                }
            }
        }
    });
}

/// Combining deposit recorded as the paper's "Gather w/ combine" pattern
/// (pic-simple's `FORALL` with `SUM`: grid points gather and add particle
/// contributions). Mechanically identical to an add-scatter.
pub fn gather_combine<T: Num + PartialOrd>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    idx: &DistArray<i32>,
    src: &DistArray<T>,
) {
    assert_eq!(dst.rank(), 1, "gather_combine destination must be 1-D");
    assert_eq!(idx.shape(), src.shape(), "index and source shapes must agree");
    let n = dst.shape()[0] as i32;
    let offproc = offproc_count(
        src,
        dst,
        idx.as_slice().iter().enumerate().map(|(s, &d)| {
            assert!(d >= 0 && d < n, "index {d} out of bounds {n}");
            (s, d as usize)
        }),
    );
    ctx.record_comm(
        CommPattern::GatherCombine,
        src.rank(),
        dst.rank(),
        src.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
    ctx.add_flops(src.len() as u64 * T::DTYPE.add_flops());
    ctx.busy(|| {
        let d = dst.as_mut_slice();
        for (&i, &v) in idx.as_slice().iter().zip(src.as_slice()) {
            d[i as usize] += v;
        }
    });
}

/// Multi-dimensional combining scatter: `dst(c0[k], c1[k], …) ⊕= src[k]`.
pub fn scatter_nd_combine<T: Num + PartialOrd>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    coords: &[&DistArray<i32>],
    src: &DistArray<T>,
    combine: Combine,
) {
    assert_eq!(coords.len(), dst.rank(), "need one coordinate array per dest axis");
    for c in coords {
        assert_eq!(c.shape(), src.shape(), "coordinate arrays must match source shape");
    }
    let strides = dst.layout().strides();
    let shape = dst.shape().to_vec();
    let flat_of = |k: usize| -> usize {
        let mut off = 0usize;
        for (d, c) in coords.iter().enumerate() {
            let i = c.as_slice()[k];
            assert!(
                i >= 0 && (i as usize) < shape[d],
                "scatter_nd index {i} out of extent {}",
                shape[d]
            );
            off += i as usize * strides[d];
        }
        off
    };
    let offproc = offproc_count(src, dst, (0..src.len()).map(|k| (k, flat_of(k))));
    ctx.record_comm(
        CommPattern::ScatterCombine,
        src.rank(),
        dst.rank(),
        src.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
    if combine == Combine::Add {
        ctx.add_flops(src.len() as u64 * T::DTYPE.add_flops());
    }
    ctx.busy(|| {
        for k in 0..src.len() {
            let off = flat_of(k);
            let v = src.as_slice()[k];
            let slot = &mut dst.as_mut_slice()[off];
            match combine {
                Combine::Add => *slot += v,
                Combine::Max => {
                    if v > *slot {
                        *slot = v;
                    }
                }
                Combine::Min => {
                    if v < *slot {
                        *slot = v;
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpf_array::{PAR, SER};
    use dpf_core::Machine;

    fn ctx(p: usize) -> Ctx {
        Ctx::new(Machine::cm5(p))
    }

    #[test]
    fn gather_reads_through_indices() {
        let ctx = ctx(4);
        let src = DistArray::<f64>::from_fn(&ctx, &[5], &[PAR], |i| i[0] as f64 * 10.0);
        let idx = DistArray::<i32>::from_vec(&ctx, &[3], &[PAR], vec![4, 0, 2]);
        let out = gather(&ctx, &src, &idx);
        assert_eq!(out.to_vec(), vec![40.0, 0.0, 20.0]);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Gather), 1);
    }

    #[test]
    fn gather_into_higher_rank() {
        let ctx = ctx(2);
        let src = DistArray::<i32>::from_fn(&ctx, &[4], &[PAR], |i| i[0] as i32);
        let idx = DistArray::<i32>::from_vec(&ctx, &[2, 2], &[PAR, PAR], vec![3, 2, 1, 0]);
        let out = gather(&ctx, &src, &idx);
        assert_eq!(out.shape(), &[2, 2]);
        assert_eq!(out.to_vec(), vec![3, 2, 1, 0]);
        let snap = ctx.instr.comm_snapshot();
        let key = snap.keys().next().unwrap();
        assert_eq!((key.src_rank, key.dst_rank), (1, 2));
    }

    #[test]
    fn gather_nd_uses_coordinates() {
        let ctx = ctx(2);
        let src = DistArray::<i32>::from_fn(&ctx, &[3, 3], &[PAR, PAR], |i| {
            (i[0] * 3 + i[1]) as i32
        });
        let r = DistArray::<i32>::from_vec(&ctx, &[2], &[PAR], vec![0, 2]);
        let c = DistArray::<i32>::from_vec(&ctx, &[2], &[PAR], vec![2, 1]);
        let out = gather_nd(&ctx, &src, &[&r, &c]);
        assert_eq!(out.to_vec(), vec![2, 7]);
    }

    #[test]
    fn scatter_overwrites_last_wins() {
        let ctx = ctx(4);
        let mut dst = DistArray::<i32>::zeros(&ctx, &[4], &[PAR]);
        let idx = DistArray::<i32>::from_vec(&ctx, &[3], &[PAR], vec![1, 3, 1]);
        let src = DistArray::<i32>::from_vec(&ctx, &[3], &[PAR], vec![10, 20, 30]);
        scatter(&ctx, &mut dst, &idx, &src);
        assert_eq!(dst.to_vec(), vec![0, 30, 0, 20]);
    }

    #[test]
    fn scatter_add_accumulates_collisions() {
        let ctx = ctx(4);
        let mut dst = DistArray::<f64>::zeros(&ctx, &[3], &[PAR]);
        let idx = DistArray::<i32>::from_vec(&ctx, &[4], &[PAR], vec![0, 1, 0, 1]);
        let src = DistArray::<f64>::from_vec(&ctx, &[4], &[PAR], vec![1., 2., 3., 4.]);
        scatter_combine(&ctx, &mut dst, &idx, &src, Combine::Add);
        assert_eq!(dst.to_vec(), vec![4.0, 6.0, 0.0]);
        assert_eq!(ctx.instr.flops(), 4);
    }

    #[test]
    fn scatter_max_keeps_largest() {
        let ctx = ctx(2);
        let mut dst = DistArray::<f64>::zeros(&ctx, &[2], &[PAR]);
        let idx = DistArray::<i32>::from_vec(&ctx, &[3], &[PAR], vec![0, 0, 1]);
        let src = DistArray::<f64>::from_vec(&ctx, &[3], &[PAR], vec![2., 5., -1.]);
        scatter_combine(&ctx, &mut dst, &idx, &src, Combine::Max);
        assert_eq!(dst.to_vec(), vec![5.0, 0.0]);
    }

    #[test]
    fn scatter_nd_combine_into_grid() {
        let ctx = ctx(2);
        let mut grid = DistArray::<f64>::zeros(&ctx, &[2, 2], &[PAR, PAR]);
        let r = DistArray::<i32>::from_vec(&ctx, &[3], &[PAR], vec![0, 1, 0]);
        let c = DistArray::<i32>::from_vec(&ctx, &[3], &[PAR], vec![0, 1, 0]);
        let v = DistArray::<f64>::from_vec(&ctx, &[3], &[PAR], vec![1., 2., 3.]);
        scatter_nd_combine(&ctx, &mut grid, &[&r, &c], &v, Combine::Add);
        assert_eq!(grid.get(&[0, 0]), 4.0);
        assert_eq!(grid.get(&[1, 1]), 2.0);
    }

    #[test]
    fn send_and_get_record_their_own_patterns() {
        let ctx = ctx(2);
        let src = DistArray::<i32>::from_fn(&ctx, &[4], &[PAR], |i| i[0] as i32);
        let idx = DistArray::<i32>::from_vec(&ctx, &[2], &[PAR], vec![1, 2]);
        let _ = get(&ctx, &src, &idx);
        let mut dst = DistArray::<i32>::zeros(&ctx, &[4], &[PAR]);
        send(&ctx, &mut dst, &idx, &DistArray::<i32>::zeros(&ctx, &[2], &[PAR]));
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Get), 1);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Send), 1);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Gather), 0);
    }

    #[test]
    fn serial_arrays_move_nothing_offproc() {
        let ctx = ctx(1);
        let src = DistArray::<f64>::from_fn(&ctx, &[8], &[SER], |i| i[0] as f64);
        let idx = DistArray::<i32>::from_vec(&ctx, &[8], &[SER], (0..8).rev().map(|i| i as i32).collect());
        let _ = gather(&ctx, &src, &idx);
        let snap = ctx.instr.comm_snapshot();
        assert_eq!(snap.values().next().unwrap().offproc_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_bounds_checked() {
        let ctx = ctx(2);
        let src = DistArray::<f64>::zeros(&ctx, &[4], &[PAR]);
        let idx = DistArray::<i32>::from_vec(&ctx, &[1], &[PAR], vec![4]);
        let _ = gather(&ctx, &src, &idx);
    }
}
