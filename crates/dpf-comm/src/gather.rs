//! Gather, scatter, send and get — general (router) communication.
//!
//! These are the irregular-addressing primitives of the suite: `FORALL
//! with indirect addressing` in the paper's Table 8, the CMSSL partitioned
//! gather/scatter utilities used by fem-3D, and the `CMF send`/`get`
//! language primitives. All variants compute the exact number of elements
//! whose source and destination fall on different virtual processors by
//! comparing owner ids under the two arrays' layouts.
//!
//! Collision semantics follow the language: plain scatter leaves the
//! last-written value (deterministically, in flat source order here);
//! combining scatters apply `+`, `max` or `min` at collisions.
//!
//! Under the SPMD backend the gathers pull their sources from the owning
//! workers ([`crate::spmd::pull_exec`]) and the scatter family routes
//! `(src, dst, value)` triples to the destination owners
//! ([`crate::spmd::route_exec`]), which apply them in global source order
//! — the same collision semantics as the serial loops. Indices are
//! validated (and off-processor elements counted) on the host first, so
//! worker threads cannot panic on bad input.

use crate::spmd::{pull_exec, route_exec, Src};
use dpf_array::{DistArray, Layout, PAR_THRESHOLD};
use dpf_core::{CommPattern, Ctx, DpfError, Elem, Num};
use rayon::prelude::*;

/// Index pairs per task in the parallel validate/count/move loops.
const ROUTE_CHUNK: usize = 4096;

/// How a combining scatter resolves collisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Combine {
    /// Sum colliding contributions (`CMF send with add`).
    Add,
    /// Keep the maximum.
    Max,
    /// Keep the minimum.
    Min,
}

/// Validate a flat slice of 1-D destination indices and count how many
/// land on a different virtual processor than their (flat-consecutive)
/// source positions, in one parallel pass.
///
/// Bounds validation runs unconditionally — including for fully serial
/// layouts, where the seed implementation skipped it together with the
/// owner accounting. Owner ids are only computed when some layout is
/// distributed: the source side advances per block segment
/// ([`Layout::for_each_owner_segment`]) and the destination side is a
/// single divide by the precomputed 1-D block extent.
fn validate_count_to_1d(src_layout: &Layout, dst_layout: &Layout, idx: &[i32], label: &str) -> u64 {
    let n = dst_layout.shape()[0] as i32;
    let distributed = src_layout.is_distributed() || dst_layout.is_distributed();
    let dblock = dst_layout.block(0);
    let count_chunk = |start: usize, chunk: &[i32]| -> u64 {
        let mut off = 0u64;
        if distributed {
            src_layout.for_each_owner_segment(start, chunk.len(), |seg0, seg_len, sown| {
                for &d in &chunk[seg0 - start..seg0 - start + seg_len] {
                    assert!(d >= 0 && d < n, "{label} {d} out of bounds {n}");
                    if (d as usize) / dblock != sown {
                        off += 1;
                    }
                }
            });
        } else {
            for &d in chunk {
                assert!(d >= 0 && d < n, "{label} {d} out of bounds {n}");
            }
        }
        off
    };
    // The rayon dispatch only pays off with real worker parallelism; on a
    // single-core host the chunked reduce made gather@4M ~0.94x of the
    // seed loop (BENCH_1), so fall back to the serial sweep there.
    if idx.len() >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        idx.par_chunks(ROUTE_CHUNK)
            .enumerate()
            .map(|(c, chunk)| count_chunk(c * ROUTE_CHUNK, chunk))
            .reduce(|| 0u64, |a, b| a + b)
    } else {
        count_chunk(0, idx)
    }
}

/// Pre-validate a flat slice of 1-D indices, returning the typed error the
/// panicking paths raise as text. The extra pass is cheap relative to the
/// data movement and keeps the fused move loops untouched.
fn check_bounds_1d(idx: &[i32], n: i32, label: &'static str) -> Result<(), DpfError> {
    for &d in idx {
        if d < 0 || d >= n {
            return Err(DpfError::IndexOutOfBounds {
                label,
                index: d as i64,
                bound: n as i64,
            });
        }
    }
    Ok(())
}

/// Pre-validate per-axis coordinate arrays against `shape`.
fn check_bounds_nd(
    coords: &[&DistArray<i32>],
    shape: &[usize],
    label: &'static str,
) -> Result<(), DpfError> {
    for (d, c) in coords.iter().enumerate() {
        for &i in c.as_slice() {
            if i < 0 || (i as usize) >= shape[d] {
                return Err(DpfError::IndexOutOfExtent {
                    label,
                    index: i as i64,
                    extent: shape[d],
                });
            }
        }
    }
    Ok(())
}

/// `out = src(idx)` — gather from a 1-D source through a flat index array
/// of any rank; the result is shaped like `idx`.
pub fn gather<T: Elem>(ctx: &Ctx, src: &DistArray<T>, idx: &DistArray<i32>) -> DistArray<T> {
    gather_as(ctx, src, idx, CommPattern::Gather)
}

/// [`gather`] that reports out-of-range indices as a recoverable
/// [`DpfError`] instead of panicking. The error text is identical to the
/// panic message.
pub fn try_gather<T: Elem>(
    ctx: &Ctx,
    src: &DistArray<T>,
    idx: &DistArray<i32>,
) -> Result<DistArray<T>, DpfError> {
    assert_eq!(src.rank(), 1, "gather source must be 1-D (use gather_nd)");
    check_bounds_1d(idx.as_slice(), src.shape()[0] as i32, "gather index")?;
    Ok(gather(ctx, src, idx))
}

/// [`gather_nd`] with recoverable bounds errors.
pub fn try_gather_nd<T: Elem>(
    ctx: &Ctx,
    src: &DistArray<T>,
    coords: &[&DistArray<i32>],
) -> Result<DistArray<T>, DpfError> {
    assert_eq!(
        coords.len(),
        src.rank(),
        "need one coordinate array per source axis"
    );
    check_bounds_nd(coords, src.shape(), "gather_nd index")?;
    Ok(gather_nd(ctx, src, coords))
}

/// [`scatter`] with recoverable bounds errors.
pub fn try_scatter<T: Elem>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    idx: &DistArray<i32>,
    src: &DistArray<T>,
) -> Result<(), DpfError> {
    assert_eq!(
        dst.rank(),
        1,
        "scatter destination must be 1-D (use scatter_nd_*)"
    );
    check_bounds_1d(idx.as_slice(), dst.shape()[0] as i32, "scatter index")?;
    scatter(ctx, dst, idx, src);
    Ok(())
}

/// [`scatter_combine`] with recoverable bounds errors.
pub fn try_scatter_combine<T: Num + PartialOrd>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    idx: &DistArray<i32>,
    src: &DistArray<T>,
    combine: Combine,
) -> Result<(), DpfError> {
    assert_eq!(
        dst.rank(),
        1,
        "scatter destination must be 1-D (use scatter_nd_*)"
    );
    check_bounds_1d(idx.as_slice(), dst.shape()[0] as i32, "scatter index")?;
    scatter_combine(ctx, dst, idx, src, combine);
    Ok(())
}

/// [`scatter_nd_combine`] with recoverable bounds errors.
pub fn try_scatter_nd_combine<T: Num + PartialOrd>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    coords: &[&DistArray<i32>],
    src: &DistArray<T>,
    combine: Combine,
) -> Result<(), DpfError> {
    assert_eq!(
        coords.len(),
        dst.rank(),
        "need one coordinate array per dest axis"
    );
    check_bounds_nd(coords, dst.shape(), "scatter_nd index")?;
    scatter_nd_combine(ctx, dst, coords, src, combine);
    Ok(())
}

/// [`gather`] recorded as the language-level `Get` pattern.
pub fn get<T: Elem>(ctx: &Ctx, src: &DistArray<T>, idx: &DistArray<i32>) -> DistArray<T> {
    gather_as(ctx, src, idx, CommPattern::Get)
}

fn gather_as<T: Elem>(
    ctx: &Ctx,
    src: &DistArray<T>,
    idx: &DistArray<i32>,
    pattern: CommPattern,
) -> DistArray<T> {
    assert_eq!(src.rank(), 1, "gather source must be 1-D (use gather_nd)");
    let n = src.shape()[0] as i32;
    // Fully overwritten below, so a pooled scratch output is safe.
    let mut out = DistArray::<T>::scratch(ctx, idx.shape(), idx.layout().axes());
    let src_layout = src.layout();
    let dst_layout = out.layout().clone();
    let distributed = src_layout.is_distributed() || dst_layout.is_distributed();
    let sblock = src_layout.block(0);
    // Validation, ownership accounting and data movement fused into one
    // (parallel) pass: the destination owner is constant per block segment
    // of the flat output range, the source owner is one divide.
    let offproc = if ctx.spmd() && distributed {
        // Validate + count on the host so the workers cannot panic, then
        // pull every output element from its source owner.
        let idx_s = idx.as_slice();
        let off = ctx.busy(|| {
            let mut off = 0u64;
            dst_layout.for_each_owner_segment(0, idx_s.len(), |seg0, seg_len, down| {
                for &i in &idx_s[seg0..seg0 + seg_len] {
                    assert!(i >= 0 && i < n, "gather index {i} out of bounds {n}");
                    if (i as usize) / sblock != down {
                        off += 1;
                    }
                }
            });
            off
        });
        ctx.busy(|| {
            pull_exec(
                ctx,
                src_layout,
                src.as_slice(),
                &dst_layout,
                out.as_mut_slice(),
                &|flat| Src::Flat(idx_s[flat] as usize),
            );
        });
        off
    } else {
        ctx.busy(|| {
            let s = src.as_slice();
            let move_chunk = |start: usize, out_chunk: &mut [T], idx_chunk: &[i32]| -> u64 {
                let mut off = 0u64;
                if distributed {
                    dst_layout.for_each_owner_segment(
                        start,
                        out_chunk.len(),
                        |seg0, seg_len, down| {
                            let base = seg0 - start;
                            for k in base..base + seg_len {
                                let i = idx_chunk[k];
                                assert!(i >= 0 && i < n, "gather index {i} out of bounds {n}");
                                let su = i as usize;
                                if su / sblock != down {
                                    off += 1;
                                }
                                out_chunk[k] = s[su];
                            }
                        },
                    );
                } else {
                    for (o, &i) in out_chunk.iter_mut().zip(idx_chunk) {
                        assert!(i >= 0 && i < n, "gather index {i} out of bounds {n}");
                        *o = s[i as usize];
                    }
                }
                off
            };
            if out.len() >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
                out.as_mut_slice()
                    .par_chunks_mut(ROUTE_CHUNK)
                    .zip(idx.as_slice().par_chunks(ROUTE_CHUNK))
                    .enumerate()
                    .map(|(c, (oc, ic))| move_chunk(c * ROUTE_CHUNK, oc, ic))
                    .reduce(|| 0u64, |a, b| a + b)
            } else {
                move_chunk(0, out.as_mut_slice(), idx.as_slice())
            }
        })
    };
    ctx.record_comm(
        pattern,
        src.rank(),
        idx.rank(),
        idx.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
    ctx.faults.inject_slice("gather", out.as_mut_slice());
    out
}

/// Multi-dimensional gather: `out[k] = src(idx0[k], idx1[k], …)` with one
/// coordinate array per source axis, all shaped like the result.
pub fn gather_nd<T: Elem>(
    ctx: &Ctx,
    src: &DistArray<T>,
    coords: &[&DistArray<i32>],
) -> DistArray<T> {
    assert_eq!(
        coords.len(),
        src.rank(),
        "need one coordinate array per source axis"
    );
    let out_shape = coords[0].shape().to_vec();
    for c in coords {
        assert_eq!(
            c.shape(),
            &out_shape[..],
            "coordinate arrays must agree in shape"
        );
    }
    // Fully overwritten below, so a pooled scratch output is safe.
    let mut out = DistArray::<T>::scratch(ctx, &out_shape, coords[0].layout().axes());
    let strides = src.layout().strides();
    let src_shape = src.shape();
    let coord_slices: Vec<&[i32]> = coords.iter().map(|c| c.as_slice()).collect();
    let flat_of = |k: usize| -> usize {
        let mut off = 0usize;
        for (d, c) in coord_slices.iter().enumerate() {
            let i = c[k];
            assert!(
                i >= 0 && (i as usize) < src_shape[d],
                "gather_nd index {i} out of extent {}",
                src_shape[d]
            );
            off += i as usize * strides[d];
        }
        off
    };
    let src_layout = src.layout();
    let dst_layout = out.layout().clone();
    let distributed = src_layout.is_distributed() || dst_layout.is_distributed();
    // Fused validate + count + move, parallel over output chunks; the
    // destination owner advances per block segment, the source owner is
    // one flat decode per element (the index arrays are arbitrary).
    let offproc = if ctx.spmd() && distributed {
        // The host count pass also validates every coordinate, so the
        // workers' `flat_of` calls cannot panic.
        let off = ctx.busy(|| {
            let mut off = 0u64;
            dst_layout.for_each_owner_segment(0, out.len(), |seg0, seg_len, down| {
                for k in seg0..seg0 + seg_len {
                    if src_layout.owner_id_flat(flat_of(k)) != down {
                        off += 1;
                    }
                }
            });
            off
        });
        ctx.busy(|| {
            pull_exec(
                ctx,
                src_layout,
                src.as_slice(),
                &dst_layout,
                out.as_mut_slice(),
                &|k| Src::Flat(flat_of(k)),
            );
        });
        off
    } else {
        ctx.busy(|| {
            let s = src.as_slice();
            let move_chunk = |start: usize, out_chunk: &mut [T]| -> u64 {
                let mut off = 0u64;
                if distributed {
                    dst_layout.for_each_owner_segment(
                        start,
                        out_chunk.len(),
                        |seg0, seg_len, down| {
                            for k in seg0..seg0 + seg_len {
                                let flat = flat_of(k);
                                if src_layout.owner_id_flat(flat) != down {
                                    off += 1;
                                }
                                out_chunk[k - start] = s[flat];
                            }
                        },
                    );
                } else {
                    for (k, o) in out_chunk.iter_mut().enumerate() {
                        *o = s[flat_of(start + k)];
                    }
                }
                off
            };
            if out.len() >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
                out.as_mut_slice()
                    .par_chunks_mut(ROUTE_CHUNK)
                    .enumerate()
                    .map(|(c, oc)| move_chunk(c * ROUTE_CHUNK, oc))
                    .reduce(|| 0u64, |a, b| a + b)
            } else {
                move_chunk(0, out.as_mut_slice())
            }
        })
    };
    ctx.record_comm(
        CommPattern::Gather,
        src.rank(),
        out.rank(),
        out.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
    ctx.faults.inject_slice("gather", out.as_mut_slice());
    out
}

/// Plain scatter: `dst(idx[k]) = src[k]` with last-writer-wins collisions.
pub fn scatter<T: Elem>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    idx: &DistArray<i32>,
    src: &DistArray<T>,
) {
    scatter_as(ctx, dst, idx, src, CommPattern::Scatter);
}

/// [`scatter`] recorded as the language-level `Send` pattern.
pub fn send<T: Elem>(ctx: &Ctx, dst: &mut DistArray<T>, idx: &DistArray<i32>, src: &DistArray<T>) {
    scatter_as(ctx, dst, idx, src, CommPattern::Send);
}

fn scatter_as<T: Elem>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    idx: &DistArray<i32>,
    src: &DistArray<T>,
    pattern: CommPattern,
) {
    assert_eq!(
        dst.rank(),
        1,
        "scatter destination must be 1-D (use scatter_nd_*)"
    );
    assert_eq!(
        idx.shape(),
        src.shape(),
        "index and source shapes must agree"
    );
    // Parallel validate + ownership count, then a serial apply: the apply
    // must stay in flat source order to keep last-writer-wins collisions
    // deterministic.
    let offproc = ctx
        .busy(|| validate_count_to_1d(src.layout(), dst.layout(), idx.as_slice(), "scatter index"));
    ctx.record_comm(
        pattern,
        src.rank(),
        dst.rank(),
        src.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
    if ctx.spmd() && (src.layout().is_distributed() || dst.layout().is_distributed()) {
        let dst_layout = dst.layout().clone();
        let idx_s = idx.as_slice();
        ctx.busy(|| {
            route_exec(
                ctx,
                src.layout(),
                src.as_slice(),
                &dst_layout,
                dst.as_mut_slice(),
                &|k| idx_s[k] as usize,
                &|slot, v| *slot = v,
            );
        });
    } else {
        ctx.busy(|| {
            let d = dst.as_mut_slice();
            for (&i, &v) in idx.as_slice().iter().zip(src.as_slice()) {
                d[i as usize] = v;
            }
        });
    }
    ctx.faults.inject_slice("scatter", dst.as_mut_slice());
}

/// The combining closure matching a [`Combine`] mode, shared by the SPMD
/// scatter variants.
fn combine_apply<T: Num + PartialOrd>(combine: Combine) -> &'static (dyn Fn(&mut T, T) + Sync) {
    match combine {
        Combine::Add => &|slot, v| *slot += v,
        Combine::Max => &|slot, v| {
            if v > *slot {
                *slot = v;
            }
        },
        Combine::Min => &|slot, v| {
            if v < *slot {
                *slot = v;
            }
        },
    }
}

/// Combining scatter into a 1-D destination: `dst(idx[k]) ⊕= src[k]`.
pub fn scatter_combine<T: Num + PartialOrd>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    idx: &DistArray<i32>,
    src: &DistArray<T>,
    combine: Combine,
) {
    assert_eq!(
        dst.rank(),
        1,
        "scatter destination must be 1-D (use scatter_nd_*)"
    );
    assert_eq!(
        idx.shape(),
        src.shape(),
        "index and source shapes must agree"
    );
    let offproc = ctx
        .busy(|| validate_count_to_1d(src.layout(), dst.layout(), idx.as_slice(), "scatter index"));
    ctx.record_comm(
        CommPattern::ScatterCombine,
        src.rank(),
        dst.rank(),
        src.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
    if combine == Combine::Add {
        ctx.add_flops(src.len() as u64 * T::DTYPE.add_flops());
    }
    if ctx.spmd() && (src.layout().is_distributed() || dst.layout().is_distributed()) {
        let dst_layout = dst.layout().clone();
        let idx_s = idx.as_slice();
        ctx.busy(|| {
            route_exec(
                ctx,
                src.layout(),
                src.as_slice(),
                &dst_layout,
                dst.as_mut_slice(),
                &|k| idx_s[k] as usize,
                combine_apply::<T>(combine),
            );
        });
    } else {
        ctx.busy(|| {
            let d = dst.as_mut_slice();
            for (&i, &v) in idx.as_slice().iter().zip(src.as_slice()) {
                let slot = &mut d[i as usize];
                match combine {
                    Combine::Add => *slot += v,
                    Combine::Max => {
                        if v > *slot {
                            *slot = v;
                        }
                    }
                    Combine::Min => {
                        if v < *slot {
                            *slot = v;
                        }
                    }
                }
            }
        });
    }
    ctx.faults.inject_slice("scatter", dst.as_mut_slice());
}

/// Combining deposit recorded as the paper's "Gather w/ combine" pattern
/// (pic-simple's `FORALL` with `SUM`: grid points gather and add particle
/// contributions). Mechanically identical to an add-scatter.
pub fn gather_combine<T: Num + PartialOrd>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    idx: &DistArray<i32>,
    src: &DistArray<T>,
) {
    assert_eq!(dst.rank(), 1, "gather_combine destination must be 1-D");
    assert_eq!(
        idx.shape(),
        src.shape(),
        "index and source shapes must agree"
    );
    let offproc =
        ctx.busy(|| validate_count_to_1d(src.layout(), dst.layout(), idx.as_slice(), "index"));
    ctx.record_comm(
        CommPattern::GatherCombine,
        src.rank(),
        dst.rank(),
        src.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
    ctx.add_flops(src.len() as u64 * T::DTYPE.add_flops());
    if ctx.spmd() && (src.layout().is_distributed() || dst.layout().is_distributed()) {
        let dst_layout = dst.layout().clone();
        let idx_s = idx.as_slice();
        ctx.busy(|| {
            route_exec(
                ctx,
                src.layout(),
                src.as_slice(),
                &dst_layout,
                dst.as_mut_slice(),
                &|k| idx_s[k] as usize,
                &|slot, v| *slot += v,
            );
        });
    } else {
        ctx.busy(|| {
            let d = dst.as_mut_slice();
            for (&i, &v) in idx.as_slice().iter().zip(src.as_slice()) {
                d[i as usize] += v;
            }
        });
    }
    ctx.faults.inject_slice("gather", dst.as_mut_slice());
}

/// Multi-dimensional combining scatter: `dst(c0[k], c1[k], …) ⊕= src[k]`.
pub fn scatter_nd_combine<T: Num + PartialOrd>(
    ctx: &Ctx,
    dst: &mut DistArray<T>,
    coords: &[&DistArray<i32>],
    src: &DistArray<T>,
    combine: Combine,
) {
    assert_eq!(
        coords.len(),
        dst.rank(),
        "need one coordinate array per dest axis"
    );
    for c in coords {
        assert_eq!(
            c.shape(),
            src.shape(),
            "coordinate arrays must match source shape"
        );
    }
    let strides = dst.layout().strides();
    let shape = dst.shape().to_vec();
    let coord_slices: Vec<&[i32]> = coords.iter().map(|c| c.as_slice()).collect();
    let flat_of = |k: usize| -> usize {
        let mut off = 0usize;
        for (d, c) in coord_slices.iter().enumerate() {
            let i = c[k];
            assert!(
                i >= 0 && (i as usize) < shape[d],
                "scatter_nd index {i} out of extent {}",
                shape[d]
            );
            off += i as usize * strides[d];
        }
        off
    };
    // Parallel validate + count (source owner constant per block segment,
    // destination owner decoded per element), then a serial apply to keep
    // collision order deterministic.
    let src_layout = src.layout();
    let dst_layout = dst.layout();
    let distributed = src_layout.is_distributed() || dst_layout.is_distributed();
    let offproc = ctx.busy(|| {
        let count_chunk = |start: usize, len: usize| -> u64 {
            let mut off = 0u64;
            if distributed {
                src_layout.for_each_owner_segment(start, len, |seg0, seg_len, sown| {
                    for k in seg0..seg0 + seg_len {
                        if dst_layout.owner_id_flat(flat_of(k)) != sown {
                            off += 1;
                        }
                    }
                });
            } else {
                for k in start..start + len {
                    let _ = flat_of(k); // bounds validation always runs
                }
            }
            off
        };
        let n = src.len();
        if n >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
            let chunks = n.div_ceil(ROUTE_CHUNK);
            (0..chunks)
                .into_par_iter()
                .map(|c| {
                    let start = c * ROUTE_CHUNK;
                    count_chunk(start, ROUTE_CHUNK.min(n - start))
                })
                .reduce(|| 0u64, |a, b| a + b)
        } else {
            count_chunk(0, n)
        }
    });
    ctx.record_comm(
        CommPattern::ScatterCombine,
        src.rank(),
        dst.rank(),
        src.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
    if combine == Combine::Add {
        ctx.add_flops(src.len() as u64 * T::DTYPE.add_flops());
    }
    if ctx.spmd() && distributed {
        let dl = dst.layout().clone();
        ctx.busy(|| {
            route_exec(
                ctx,
                src_layout,
                src.as_slice(),
                &dl,
                dst.as_mut_slice(),
                &flat_of,
                combine_apply::<T>(combine),
            );
        });
    } else {
        ctx.busy(|| {
            for k in 0..src.len() {
                let off = flat_of(k);
                let v = src.as_slice()[k];
                let slot = &mut dst.as_mut_slice()[off];
                match combine {
                    Combine::Add => *slot += v,
                    Combine::Max => {
                        if v > *slot {
                            *slot = v;
                        }
                    }
                    Combine::Min => {
                        if v < *slot {
                            *slot = v;
                        }
                    }
                }
            }
        });
    }
    ctx.faults.inject_slice("scatter", dst.as_mut_slice());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpf_array::{PAR, SER};
    use dpf_core::Machine;

    fn ctx(p: usize) -> Ctx {
        Ctx::new(Machine::cm5(p))
    }

    #[test]
    fn gather_reads_through_indices() {
        let ctx = ctx(4);
        let src = DistArray::<f64>::from_fn(&ctx, &[5], &[PAR], |i| i[0] as f64 * 10.0);
        let idx = DistArray::<i32>::from_vec(&ctx, &[3], &[PAR], vec![4, 0, 2]);
        let out = gather(&ctx, &src, &idx);
        assert_eq!(out.to_vec(), vec![40.0, 0.0, 20.0]);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Gather), 1);
    }

    #[test]
    fn gather_into_higher_rank() {
        let ctx = ctx(2);
        let src = DistArray::<i32>::from_fn(&ctx, &[4], &[PAR], |i| i[0] as i32);
        let idx = DistArray::<i32>::from_vec(&ctx, &[2, 2], &[PAR, PAR], vec![3, 2, 1, 0]);
        let out = gather(&ctx, &src, &idx);
        assert_eq!(out.shape(), &[2, 2]);
        assert_eq!(out.to_vec(), vec![3, 2, 1, 0]);
        let snap = ctx.instr.comm_snapshot();
        let key = snap.keys().next().unwrap();
        assert_eq!((key.src_rank, key.dst_rank), (1, 2));
    }

    #[test]
    fn gather_nd_uses_coordinates() {
        let ctx = ctx(2);
        let src =
            DistArray::<i32>::from_fn(&ctx, &[3, 3], &[PAR, PAR], |i| (i[0] * 3 + i[1]) as i32);
        let r = DistArray::<i32>::from_vec(&ctx, &[2], &[PAR], vec![0, 2]);
        let c = DistArray::<i32>::from_vec(&ctx, &[2], &[PAR], vec![2, 1]);
        let out = gather_nd(&ctx, &src, &[&r, &c]);
        assert_eq!(out.to_vec(), vec![2, 7]);
    }

    #[test]
    fn scatter_overwrites_last_wins() {
        let ctx = ctx(4);
        let mut dst = DistArray::<i32>::zeros(&ctx, &[4], &[PAR]);
        let idx = DistArray::<i32>::from_vec(&ctx, &[3], &[PAR], vec![1, 3, 1]);
        let src = DistArray::<i32>::from_vec(&ctx, &[3], &[PAR], vec![10, 20, 30]);
        scatter(&ctx, &mut dst, &idx, &src);
        assert_eq!(dst.to_vec(), vec![0, 30, 0, 20]);
    }

    #[test]
    fn scatter_add_accumulates_collisions() {
        let ctx = ctx(4);
        let mut dst = DistArray::<f64>::zeros(&ctx, &[3], &[PAR]);
        let idx = DistArray::<i32>::from_vec(&ctx, &[4], &[PAR], vec![0, 1, 0, 1]);
        let src = DistArray::<f64>::from_vec(&ctx, &[4], &[PAR], vec![1., 2., 3., 4.]);
        scatter_combine(&ctx, &mut dst, &idx, &src, Combine::Add);
        assert_eq!(dst.to_vec(), vec![4.0, 6.0, 0.0]);
        assert_eq!(ctx.instr.flops(), 4);
    }

    #[test]
    fn scatter_max_keeps_largest() {
        let ctx = ctx(2);
        let mut dst = DistArray::<f64>::zeros(&ctx, &[2], &[PAR]);
        let idx = DistArray::<i32>::from_vec(&ctx, &[3], &[PAR], vec![0, 0, 1]);
        let src = DistArray::<f64>::from_vec(&ctx, &[3], &[PAR], vec![2., 5., -1.]);
        scatter_combine(&ctx, &mut dst, &idx, &src, Combine::Max);
        assert_eq!(dst.to_vec(), vec![5.0, 0.0]);
    }

    #[test]
    fn scatter_nd_combine_into_grid() {
        let ctx = ctx(2);
        let mut grid = DistArray::<f64>::zeros(&ctx, &[2, 2], &[PAR, PAR]);
        let r = DistArray::<i32>::from_vec(&ctx, &[3], &[PAR], vec![0, 1, 0]);
        let c = DistArray::<i32>::from_vec(&ctx, &[3], &[PAR], vec![0, 1, 0]);
        let v = DistArray::<f64>::from_vec(&ctx, &[3], &[PAR], vec![1., 2., 3.]);
        scatter_nd_combine(&ctx, &mut grid, &[&r, &c], &v, Combine::Add);
        assert_eq!(grid.get(&[0, 0]), 4.0);
        assert_eq!(grid.get(&[1, 1]), 2.0);
    }

    #[test]
    fn send_and_get_record_their_own_patterns() {
        let ctx = ctx(2);
        let src = DistArray::<i32>::from_fn(&ctx, &[4], &[PAR], |i| i[0] as i32);
        let idx = DistArray::<i32>::from_vec(&ctx, &[2], &[PAR], vec![1, 2]);
        let _ = get(&ctx, &src, &idx);
        let mut dst = DistArray::<i32>::zeros(&ctx, &[4], &[PAR]);
        send(
            &ctx,
            &mut dst,
            &idx,
            &DistArray::<i32>::zeros(&ctx, &[2], &[PAR]),
        );
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Get), 1);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Send), 1);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Gather), 0);
    }

    #[test]
    fn serial_arrays_move_nothing_offproc() {
        let ctx = ctx(1);
        let src = DistArray::<f64>::from_fn(&ctx, &[8], &[SER], |i| i[0] as f64);
        let idx = DistArray::<i32>::from_vec(&ctx, &[8], &[SER], (0..8).rev().collect());
        let _ = gather(&ctx, &src, &idx);
        let snap = ctx.instr.comm_snapshot();
        assert_eq!(snap.values().next().unwrap().offproc_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_bounds_checked() {
        let ctx = ctx(2);
        let src = DistArray::<f64>::zeros(&ctx, &[4], &[PAR]);
        let idx = DistArray::<i32>::from_vec(&ctx, &[1], &[PAR], vec![4]);
        let _ = gather(&ctx, &src, &idx);
    }

    // Regression: the seed ran bounds validation only inside the
    // off-processor counting iterator, which early-returned when both
    // layouts were serial — so fully local gathers/scatters skipped the
    // documented checks. Validation must run regardless of layout.

    #[test]
    #[should_panic(expected = "gather index -1 out of bounds 4")]
    fn gather_bounds_checked_with_serial_layouts() {
        let ctx = ctx(1);
        let src = DistArray::<f64>::zeros(&ctx, &[4], &[SER]);
        let idx = DistArray::<i32>::from_vec(&ctx, &[2], &[SER], vec![0, -1]);
        let _ = gather(&ctx, &src, &idx);
    }

    #[test]
    #[should_panic(expected = "scatter index 9 out of bounds 4")]
    fn scatter_bounds_checked_with_serial_layouts() {
        let ctx = ctx(1);
        let mut dst = DistArray::<i32>::zeros(&ctx, &[4], &[SER]);
        let idx = DistArray::<i32>::from_vec(&ctx, &[2], &[SER], vec![1, 9]);
        let src = DistArray::<i32>::from_vec(&ctx, &[2], &[SER], vec![5, 6]);
        scatter(&ctx, &mut dst, &idx, &src);
    }

    #[test]
    #[should_panic(expected = "gather_nd index 3 out of extent 3")]
    fn gather_nd_bounds_checked_with_serial_layouts() {
        let ctx = ctx(1);
        let src = DistArray::<i32>::zeros(&ctx, &[3, 3], &[SER, SER]);
        let r = DistArray::<i32>::from_vec(&ctx, &[1], &[SER], vec![3]);
        let c = DistArray::<i32>::from_vec(&ctx, &[1], &[SER], vec![0]);
        let _ = gather_nd(&ctx, &src, &[&r, &c]);
    }

    #[test]
    #[should_panic(expected = "scatter_nd index 7 out of extent 2")]
    fn scatter_nd_bounds_checked_with_serial_layouts() {
        let ctx = ctx(1);
        let mut dst = DistArray::<f64>::zeros(&ctx, &[2, 2], &[SER, SER]);
        let r = DistArray::<i32>::from_vec(&ctx, &[1], &[SER], vec![7]);
        let c = DistArray::<i32>::from_vec(&ctx, &[1], &[SER], vec![0]);
        let v = DistArray::<f64>::from_vec(&ctx, &[1], &[SER], vec![1.0]);
        scatter_nd_combine(&ctx, &mut dst, &[&r, &c], &v, Combine::Add);
    }

    #[test]
    fn parallel_gather_path_matches_serial_reference() {
        // Above PAR_THRESHOLD the fused move/count loop runs under rayon;
        // verify values and the off-processor byte count against a direct
        // owner_id comparison.
        let ctx = ctx(4);
        let n = 20_000usize;
        let src = DistArray::<f64>::from_fn(&ctx, &[n], &[PAR], |i| i[0] as f64);
        let idx =
            DistArray::<i32>::from_fn(&ctx, &[n], &[PAR], |i| ((i[0] * 7919 + 13) % n) as i32);
        let out = gather(&ctx, &src, &idx);
        for k in (0..n).step_by(1013) {
            assert_eq!(out.as_slice()[k], ((k * 7919 + 13) % n) as f64);
        }
        let expected_offproc: u64 = idx
            .as_slice()
            .iter()
            .enumerate()
            .filter(|&(d, &s)| {
                src.layout().owner_id_flat(s as usize) != out.layout().owner_id_flat(d)
            })
            .count() as u64;
        let snap = ctx.instr.comm_snapshot();
        let stats = snap.values().next().unwrap();
        assert_eq!(stats.offproc_bytes, expected_offproc * 8);
    }
}
