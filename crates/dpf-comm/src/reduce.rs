//! Reductions — `SUM`, `PRODUCT`, `MINVAL`/`MAXVAL`, dot products.
//!
//! The paper counts a reduction over `N` elements as `N − 1` FLOPs (its
//! sequential operation count) and, under HPF execution semantics, charges
//! masked reductions over the **full** extent. Min/max reductions move the
//! same data but perform comparisons, not floating-point arithmetic, so
//! they charge no FLOPs.
//!
//! Off-processor volume models a reduction tree: along an axis distributed
//! over `p` processors, `p − 1` partial values per lane cross processor
//! boundaries.
//!
//! Under the SPMD backend the reductions run as a sequential fold whose
//! accumulator hops along the owner-segment chain ([`crate::spmd`]), so
//! element order — and floating-point rounding — is identical to the
//! virtual backend's serial loops. The partial values that cross workers
//! are metered; a chain moves the same `p − 1` partials per lane as the
//! modeled tree for 1-D distributions and more for multi-axis grids
//! (where row-major segments interleave owners).

use crate::spmd::{axis_exec, fold_exec};
use dpf_array::DistArray;
use dpf_core::{flops, CommPattern, Ctx, Elem, Num};
use rayon::prelude::*;

/// Elements per partial in the virtual dot product's parallel path; the
/// SPMD dot cuts its chunk partials at the same boundaries.
const DOT_CHUNK: usize = 4096;

fn record_reduce<T: Elem>(ctx: &Ctx, src_rank: usize, dst_rank: usize, len: u64, partials: u64) {
    ctx.record_comm(
        CommPattern::Reduction,
        src_rank,
        dst_rank,
        len,
        partials * T::DTYPE.size() as u64,
    );
}

/// Total processors an array's grid actually uses.
fn grid_procs<T: Elem>(a: &DistArray<T>) -> usize {
    (0..a.rank())
        .map(|d| a.layout().procs_on(d))
        .product::<usize>()
        .max(1)
}

/// `SUM(a)` — full reduction to a scalar.
pub fn sum_all<T: Num>(ctx: &Ctx, a: &DistArray<T>) -> T {
    ctx.add_flops(flops::reduction(a.len() as u64) * T::DTYPE.add_flops());
    record_reduce::<T>(ctx, a.rank(), 0, a.len() as u64, grid_procs(a) as u64 - 1);
    let mut s = if ctx.spmd() && grid_procs(a) > 1 {
        ctx.busy(|| {
            fold_exec(
                ctx,
                a.layout(),
                a.as_slice(),
                T::zero(),
                T::DTYPE.size() as u64,
                &|acc: &mut T, _flat, x| *acc += x,
            )
        })
    } else {
        ctx.busy(|| serial_sum(a.as_slice()))
    };
    ctx.faults.inject_scalar("reduce", &mut s);
    s
}

/// `SUM(a, mask)` — masked full reduction; FLOPs charged over the full
/// extent per HPF semantics (paper §1.4).
pub fn sum_masked<T: Num>(ctx: &Ctx, a: &DistArray<T>, mask: &DistArray<bool>) -> T {
    assert_eq!(a.shape(), mask.shape(), "mask shape mismatch");
    ctx.add_flops(flops::reduction(a.len() as u64) * T::DTYPE.add_flops());
    record_reduce::<T>(ctx, a.rank(), 0, a.len() as u64, grid_procs(a) as u64 - 1);
    let mut s = if ctx.spmd() && grid_procs(a) > 1 {
        // Mask flags are read in place (aligned with the data per the HPF
        // assumption); only the running partial crosses the chain.
        let m = mask.as_slice();
        ctx.busy(|| {
            fold_exec(
                ctx,
                a.layout(),
                a.as_slice(),
                T::zero(),
                T::DTYPE.size() as u64,
                &|acc: &mut T, flat, x| {
                    if m[flat] {
                        *acc += x;
                    }
                },
            )
        })
    } else {
        ctx.busy(|| {
            let mut acc = T::zero();
            for (&x, &m) in a.as_slice().iter().zip(mask.as_slice()) {
                if m {
                    acc += x;
                }
            }
            acc
        })
    };
    ctx.faults.inject_scalar("reduce", &mut s);
    s
}

/// `PRODUCT(a)`.
pub fn product_all<T: Num>(ctx: &Ctx, a: &DistArray<T>) -> T {
    ctx.add_flops(flops::reduction(a.len() as u64) * T::DTYPE.mul_flops());
    record_reduce::<T>(ctx, a.rank(), 0, a.len() as u64, grid_procs(a) as u64 - 1);
    if ctx.spmd() && grid_procs(a) > 1 {
        ctx.busy(|| {
            fold_exec(
                ctx,
                a.layout(),
                a.as_slice(),
                T::one(),
                T::DTYPE.size() as u64,
                &|acc: &mut T, _flat, x| *acc *= x,
            )
        })
    } else {
        ctx.busy(|| {
            let mut acc = T::one();
            for &x in a.as_slice() {
                acc *= x;
            }
            acc
        })
    }
}

/// `SUM(a, dim=axis)` — reduction along one axis; the result drops that
/// axis.
pub fn sum_axis<T: Num>(ctx: &Ctx, a: &DistArray<T>, axis: usize) -> DistArray<T> {
    assert!(axis < a.rank());
    let n = a.shape()[axis];
    let lanes = a.layout().lanes(axis) as u64;
    ctx.add_flops(lanes * flops::reduction(n as u64) * T::DTYPE.add_flops());
    let partials = lanes * (a.layout().procs_on(axis) as u64 - 1);
    record_reduce::<T>(ctx, a.rank(), a.rank() - 1, a.len() as u64, partials);

    let out_shape: Vec<usize> = a
        .shape()
        .iter()
        .enumerate()
        .filter(|&(d, _)| d != axis)
        .map(|(_, &s)| s)
        .collect();
    let out_axes: Vec<_> = a
        .layout()
        .axes()
        .iter()
        .enumerate()
        .filter(|&(d, _)| d != axis)
        .map(|(_, &k)| k)
        .collect();
    let mut out = DistArray::<T>::zeros(ctx, &out_shape, &out_axes);
    let outer: usize = a.shape()[..axis].iter().product();
    let inner: usize = a.shape()[axis + 1..].iter().product();
    if ctx.spmd() && a.layout().procs_on(axis) > 1 {
        // Each lane's partial sum hops along the axis's block owners in
        // coordinate order — the same element order as the serial loop —
        // and the chain's last owner reports the lane total.
        let src = a.as_slice();
        let finals = ctx.busy(|| {
            axis_exec::<T, T>(
                ctx,
                a.layout(),
                axis,
                None,
                T::zero(),
                T::DTYPE.size() as u64,
                &|acc, flat, _emit| *acc += src[flat],
            )
        });
        let dst = out.as_mut_slice();
        for (reduced_flat, total) in finals {
            dst[reduced_flat] = total;
        }
    } else {
        ctx.busy(|| {
            let src = a.as_slice();
            let dst = out.as_mut_slice();
            for o in 0..outer {
                let src_base = o * n * inner;
                let dst_base = o * inner;
                for i in 0..n {
                    let row = &src[src_base + i * inner..src_base + (i + 1) * inner];
                    for (k, &v) in row.iter().enumerate() {
                        dst[dst_base + k] += v;
                    }
                }
            }
        });
    }
    ctx.faults.inject_slice("reduce", out.as_mut_slice());
    out
}

/// `MAXVAL(a)` for ordered reals/integers; returns the maximum. Moves the
/// same partials as a sum reduction but charges no FLOPs (comparisons).
pub fn max_all<T: Elem + PartialOrd>(ctx: &Ctx, a: &DistArray<T>) -> T {
    assert!(!a.is_empty() || a.len() == 1);
    record_reduce::<T>(ctx, a.rank(), 0, a.len() as u64, grid_procs(a) as u64 - 1);
    if ctx.spmd() && grid_procs(a) > 1 {
        ctx.busy(|| {
            fold_exec::<T, Option<T>>(
                ctx,
                a.layout(),
                a.as_slice(),
                None,
                T::DTYPE.size() as u64,
                &|best, _flat, x| match best {
                    Some(b) => {
                        if x > *b {
                            *b = x;
                        }
                    }
                    None => *best = Some(x),
                },
            )
        })
        .expect("max of empty array")
    } else {
        ctx.busy(|| {
            let s = a.as_slice();
            let mut best = s[0];
            for &x in &s[1..] {
                if x > best {
                    best = x;
                }
            }
            best
        })
    }
}

/// `MINVAL(a)`.
pub fn min_all<T: Elem + PartialOrd>(ctx: &Ctx, a: &DistArray<T>) -> T {
    record_reduce::<T>(ctx, a.rank(), 0, a.len() as u64, grid_procs(a) as u64 - 1);
    if ctx.spmd() && grid_procs(a) > 1 {
        ctx.busy(|| {
            fold_exec::<T, Option<T>>(
                ctx,
                a.layout(),
                a.as_slice(),
                None,
                T::DTYPE.size() as u64,
                &|best, _flat, x| match best {
                    Some(b) => {
                        if x < *b {
                            *b = x;
                        }
                    }
                    None => *best = Some(x),
                },
            )
        })
        .expect("min of empty array")
    } else {
        ctx.busy(|| {
            let s = a.as_slice();
            let mut best = s[0];
            for &x in &s[1..] {
                if x < best {
                    best = x;
                }
            }
            best
        })
    }
}

/// `MAXLOC(|a|)` — flat index and value of the element of largest
/// magnitude (the pivot search of `gauss-jordan` and `lu`).
pub fn maxloc_abs<T: Num>(ctx: &Ctx, a: &DistArray<T>) -> (usize, T) {
    record_reduce::<T>(ctx, a.rank(), 0, a.len() as u64, grid_procs(a) as u64 - 1);
    if ctx.spmd() && grid_procs(a) > 1 {
        // The hop carries (index, value, magnitude); the strict `>` keeps
        // the first of equal magnitudes, matching the serial scan.
        let st = ctx.busy(|| {
            fold_exec::<T, Option<(usize, T, f64)>>(
                ctx,
                a.layout(),
                a.as_slice(),
                None,
                (T::DTYPE.size() + std::mem::size_of::<usize>() + std::mem::size_of::<f64>())
                    as u64,
                &|st, flat, x| {
                    let m = x.mag();
                    match st {
                        Some((_, _, bm)) if m > *bm => *st = Some((flat, x, m)),
                        Some(_) => {}
                        None => *st = Some((flat, x, m)),
                    }
                },
            )
        });
        let (best, v, _) = st.expect("maxloc of empty array");
        (best, v)
    } else {
        ctx.busy(|| {
            let s = a.as_slice();
            let mut best = 0usize;
            let mut bm = s[0].mag();
            for (i, &x) in s.iter().enumerate().skip(1) {
                let m = x.mag();
                if m > bm {
                    bm = m;
                    best = i;
                }
            }
            (best, s[best])
        })
    }
}

/// Dot product `SUM(a * b)`: charges the multiplies plus the `N − 1`
/// reduction adds, and records one Reduction (the paper's conj-grad and
/// qr count their inner products this way).
pub fn dot<T: Num>(ctx: &Ctx, a: &DistArray<T>, b: &DistArray<T>) -> T {
    assert_eq!(a.shape(), b.shape(), "dot shape mismatch");
    let n = a.len() as u64;
    ctx.add_flops(n * T::DTYPE.mul_flops() + flops::reduction(n) * T::DTYPE.add_flops());
    record_reduce::<T>(ctx, a.rank(), 0, n, grid_procs(a) as u64 - 1);
    let mut s = if ctx.spmd() && grid_procs(a) > 1 {
        // `b` is read in place at the chain's own flats (aligned operands
        // per the HPF assumption). Above the parallel threshold the chain
        // state carries the per-4096-chunk partials so the final
        // combination can reproduce the virtual backend's rayon reduce
        // tree bit for bit.
        let bs = b.as_slice();
        if a.len() >= dpf_array::PAR_THRESHOLD {
            ctx.busy(|| {
                let (mut partials, tail) = fold_exec::<T, (Vec<T>, T)>(
                    ctx,
                    a.layout(),
                    a.as_slice(),
                    (Vec::new(), T::zero()),
                    T::DTYPE.size() as u64,
                    &|st, flat, x| {
                        st.1 += x * bs[flat];
                        if (flat + 1) % DOT_CHUNK == 0 {
                            let full = std::mem::replace(&mut st.1, T::zero());
                            st.0.push(full);
                        }
                    },
                );
                if !a.len().is_multiple_of(DOT_CHUNK) {
                    partials.push(tail);
                }
                rayon_piece_sum(partials)
            })
        } else {
            ctx.busy(|| {
                fold_exec(
                    ctx,
                    a.layout(),
                    a.as_slice(),
                    T::zero(),
                    T::DTYPE.size() as u64,
                    &|acc: &mut T, flat, x| *acc += x * bs[flat],
                )
            })
        }
    } else {
        ctx.busy(|| {
            if a.len() >= dpf_array::PAR_THRESHOLD {
                a.as_slice()
                    .par_chunks(DOT_CHUNK)
                    .zip(b.as_slice().par_chunks(DOT_CHUNK))
                    .map(|(xa, xb)| {
                        let mut acc = T::zero();
                        for (&x, &y) in xa.iter().zip(xb) {
                            acc += x * y;
                        }
                        acc
                    })
                    // dpf-lint: allow(determinism-taint, reason = "blessed bit-replay pair: fixed DOT_CHUNK piece sums make this the reference tree that rayon_piece_sum replays bit-exactly on the SPMD chain")
                    .reduce(T::zero, |p, q| p + q)
            } else {
                let mut acc = T::zero();
                for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
                    acc += x * y;
                }
                acc
            }
        })
    };
    ctx.faults.inject_scalar("reduce", &mut s);
    s
}

/// Combine per-chunk partial sums exactly as the vendored rayon
/// `reduce(T::zero, +)` does over the virtual dot's chunk map: split the
/// partials into `current_num_threads()` pieces with the same `div_ceil`
/// arithmetic, fold each piece from zero, then fold the piece sums from
/// zero. Matching the association makes the SPMD dot bit-identical to the
/// virtual backend's parallel path.
fn rayon_piece_sum<T: Num>(parts: Vec<T>) -> T {
    let threads = rayon::current_num_threads().min(parts.len().max(1));
    if threads <= 1 {
        let piece = parts.into_iter().fold(T::zero(), |p, q| p + q);
        return T::zero() + piece;
    }
    let mut rest = &parts[..];
    let mut sums = Vec::with_capacity(threads);
    for i in 0..threads - 1 {
        let (head, tail) = rest.split_at(rest.len().div_ceil(threads - i));
        sums.push(head.iter().fold(T::zero(), |p, &q| p + q));
        rest = tail;
    }
    sums.push(rest.iter().fold(T::zero(), |p, &q| p + q));
    sums.into_iter().fold(T::zero(), |p, q| p + q)
}

fn serial_sum<T: Num>(s: &[T]) -> T {
    let mut acc = T::zero();
    for &x in s {
        acc += x;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpf_array::{PAR, SER};
    use dpf_core::{Machine, C64};

    fn ctx(p: usize) -> Ctx {
        Ctx::new(Machine::cm5(p))
    }

    #[test]
    fn sum_all_matches_arithmetic_series() {
        let ctx = ctx(4);
        let a = DistArray::<f64>::from_fn(&ctx, &[100], &[PAR], |i| i[0] as f64);
        assert_eq!(sum_all(&ctx, &a), 4950.0);
        assert_eq!(ctx.instr.flops(), 99);
    }

    #[test]
    fn complex_sum_charges_two_flops_per_add() {
        let ctx = ctx(2);
        let a = DistArray::<C64>::full(&ctx, &[10], &[PAR], C64::new(1.0, -1.0));
        let s = sum_all(&ctx, &a);
        assert_eq!(s, C64::new(10.0, -10.0));
        assert_eq!(ctx.instr.flops(), 9 * 2);
    }

    #[test]
    fn masked_sum_charges_full_extent() {
        let ctx = ctx(2);
        let a = DistArray::<f64>::from_fn(&ctx, &[10], &[PAR], |i| i[0] as f64);
        let mask = DistArray::<bool>::from_fn(&ctx, &[10], &[PAR], |i| i[0] % 2 == 0);
        let s = sum_masked(&ctx, &a, &mask);
        assert_eq!(s, 0.0 + 2.0 + 4.0 + 6.0 + 8.0);
        // HPF semantics: full-extent FLOPs, not 4.
        assert_eq!(ctx.instr.flops(), 9);
    }

    #[test]
    fn sum_axis_reduces_correct_dimension() {
        let ctx = ctx(4);
        let a = DistArray::<f64>::from_fn(&ctx, &[2, 3], &[PAR, PAR], |i| (i[0] * 3 + i[1]) as f64);
        let rows = sum_axis(&ctx, &a, 1);
        assert_eq!(rows.shape(), &[2]);
        assert_eq!(rows.to_vec(), vec![3.0, 12.0]);
        let cols = sum_axis(&ctx, &a, 0);
        assert_eq!(cols.shape(), &[3]);
        assert_eq!(cols.to_vec(), vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn sum_axis_3d_middle() {
        let ctx = ctx(2);
        let a = DistArray::<f64>::full(&ctx, &[2, 4, 3], &[PAR, PAR, SER], 1.0);
        let r = sum_axis(&ctx, &a, 1);
        assert_eq!(r.shape(), &[2, 3]);
        assert_eq!(r.to_vec(), vec![4.0; 6]);
    }

    #[test]
    fn minmax_and_maxloc() {
        let ctx = ctx(4);
        let a = DistArray::<f64>::from_vec(&ctx, &[5], &[PAR], vec![3.0, -7.0, 2.0, 5.0, -1.0]);
        assert_eq!(max_all(&ctx, &a), 5.0);
        assert_eq!(min_all(&ctx, &a), -7.0);
        let (i, v) = maxloc_abs(&ctx, &a);
        assert_eq!((i, v), (1, -7.0));
        // min/max charge no FLOPs.
        assert_eq!(ctx.instr.flops(), 0);
    }

    #[test]
    fn dot_matches_and_charges_2n_minus_1() {
        let ctx = ctx(2);
        let a = DistArray::<f64>::full(&ctx, &[8], &[PAR], 2.0);
        let b = DistArray::<f64>::full(&ctx, &[8], &[PAR], 3.0);
        assert_eq!(dot(&ctx, &a, &b), 48.0);
        assert_eq!(ctx.instr.flops(), 8 + 7);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Reduction), 1);
    }

    #[test]
    fn paper_vtv_example_semantics() {
        // Paper §1.4: vtv = sum(v*v, mask) executes the multiply on the
        // full vector and charges the reduction's N−1 — 2N−1 total,
        // independent of the mask.
        let ctx = ctx(4);
        let v = DistArray::<f64>::from_fn(&ctx, &[8], &[PAR], |i| i[0] as f64);
        let mask = DistArray::<bool>::from_fn(&ctx, &[8], &[PAR], |i| i[0] >= 4);
        let vv = v.zip_map(&ctx, 1, &v, |a, b| a * b);
        let vtv = sum_masked(&ctx, &vv, &mask);
        assert_eq!(vtv, 16.0 + 25.0 + 36.0 + 49.0);
        assert_eq!(ctx.instr.flops(), 8 + 7);
    }

    #[test]
    fn reduction_partials_scale_with_grid() {
        let ctx = ctx(8);
        let a = DistArray::<f64>::zeros(&ctx, &[64], &[PAR]);
        let _ = sum_all(&ctx, &a);
        let snap = ctx.instr.comm_snapshot();
        let stats = snap.values().next().unwrap();
        // 8 procs -> 7 partial doubles cross boundaries.
        assert_eq!(stats.offproc_bytes, 7 * 8);
    }
}
