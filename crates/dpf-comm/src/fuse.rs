//! Fusing evaluator for deferred [`Expr`] graphs.
//!
//! The eager API materializes one full distributed array per operator.
//! This module walks an expression graph once per owned block instead:
//! elementwise chains collapse into a single loop with zero intermediate
//! arrays (per-chunk scratch comes from the `Ctx` buffer pool), and
//! shift+compute stencils evaluate interior cells by reading the source
//! at an offset — only genuinely off-processor halo cells take the
//! exchange path (on the SPMD backend a distributed-axis shift is
//! assembled through the same pull protocol the eager `cshift` uses, so
//! channel traffic is identical).
//!
//! Metric transparency is the contract: evaluation replays exactly the
//! FLOP charges and logical communication records the equivalent eager
//! chain would have made — one `Cshift`/`Eoshift` record per deferred
//! shift node, `flops * len` per elementwise node — and fault-injection
//! hooks fire once per logical shift, matching the eager call count. The
//! fused-vs-eager proptest suite (`tests/fused_equiv.rs`) holds results
//! and recorded metrics bit-identical on both backends.

use crate::shift::{self, Boundary};
use dpf_array::expr::{BinaryFn, Expr, ShiftBoundary, UnaryFn};
use dpf_array::{DistArray, Layout, PAR_THRESHOLD};
use dpf_core::{CommPattern, Ctx, Elem};
use rayon::prelude::*;

/// Elements evaluated per inner step: small enough that the working set
/// of a deep chain stays cache-resident, large enough to amortize the
/// per-chunk dispatch.
const CHUNK: usize = 1024;

/// Evaluate a deferred expression into a fresh array drawn from the
/// buffer pool. The output adopts the layout of the first full-shape
/// leaf.
pub fn eval<T: Elem>(ctx: &Ctx, e: &Expr<'_, T>) -> DistArray<T> {
    let shape = e.shape().expect("fused expression needs an array leaf");
    let lay = e
        .layout()
        .expect("fused expression needs a full-shape array leaf");
    // Every element is overwritten by the fused pass, so pooled scratch
    // (possibly stale) is safe.
    let mut out = DistArray::<T>::scratch(ctx, &shape, lay.axes());
    eval_into(ctx, e, &mut out);
    out
}

/// Evaluate a deferred expression into an existing same-shaped array.
///
/// Records and FLOP charges fire per *logical* op in the graph (the
/// eager-equivalence contract), not per physical pass — the whole graph
/// runs as one fused sweep per owned block.
pub fn eval_into<T: Elem>(ctx: &Ctx, e: &Expr<'_, T>, out: &mut DistArray<T>) {
    if let Some(shape) = e.shape() {
        assert_eq!(
            shape.as_slice(),
            out.shape(),
            "fused expression shape mismatch"
        );
    }
    record_pass::<T>(ctx, e, out.shape(), out.layout());
    let plan = lower(ctx, e, out.shape(), out.layout());
    run_plan(ctx, &plan, out.as_mut_slice());
    retire(ctx, plan);
    inject_pass(ctx, e, out.as_mut_slice());
}

/// Fold the last axis of a deferred expression: returns one accumulator
/// per row, seeded with `init` and combined left-to-right in index order
/// (serial — bit-compatible with the eager accumulation loops it
/// replaces). Like the eager kernels it replaces, a pure reduction
/// materializes no shifted intermediate, so no fault-injection site
/// fires here; FLOP and communication records replay exactly as in
/// [`eval_into`].
pub fn fold_rows<T: Elem>(ctx: &Ctx, e: &Expr<'_, T>, init: T, fold: impl Fn(T, T) -> T) -> Vec<T> {
    let shape = e.shape().expect("fused expression needs an array leaf");
    let rank = shape.len();
    assert!(rank >= 1, "fold_rows needs at least one axis");
    let cols: usize = shape[rank - 1];
    let rows: usize = shape[..rank - 1].iter().product();
    let total: usize = rows * cols.max(1);
    let lay = e
        .layout()
        .expect("fused expression needs a full-shape array leaf");
    record_pass::<T>(ctx, e, &shape, lay);
    let plan = lower(ctx, e, &shape, lay);
    let mut acc = vec![init; rows];
    if cols > 0 {
        let mut buf: Vec<T> = ctx.pool.take(CHUNK);
        let mut scratch = take_bufs::<T>(ctx, scratch_depth(&plan));
        ctx.busy(|| {
            let mut base = 0usize;
            while base < total {
                let len = CHUNK.min(total - base);
                eval_chunk(&plan, base, &mut buf[..len], &mut scratch, 0);
                for (k, v) in buf[..len].iter().enumerate() {
                    let r = (base + k) / cols;
                    acc[r] = fold(acc[r], *v);
                }
                base += len;
            }
        });
        ctx.pool.put(buf);
        put_bufs(ctx, scratch);
    }
    retire(ctx, plan);
    acc
}

// ------------------------------------------------------------- metrics

/// Replay the analytic records the equivalent eager chain would have
/// made: `flops * len` per elementwise node, one Cshift/Eoshift event
/// per shift node (post-order, so inner ops record before outer ones,
/// matching eager program order). Counters are cumulative, so only the
/// totals are observable.
fn record_pass<T: Elem>(ctx: &Ctx, e: &Expr<'_, T>, shape: &[usize], lay: &Layout) {
    let len: u64 = shape.iter().product::<usize>() as u64;
    match e {
        Expr::Leaf(_) | Expr::Const(_) => {}
        Expr::Unary { flops, child, .. } => {
            record_pass::<T>(ctx, child, shape, lay);
            ctx.add_flops(flops * len);
        }
        Expr::Binary {
            flops, lhs, rhs, ..
        } => {
            record_pass::<T>(ctx, lhs, shape, lay);
            record_pass::<T>(ctx, rhs, shape, lay);
            ctx.add_flops(flops * len);
        }
        Expr::Shift {
            axis,
            amount,
            boundary,
            child,
        } => {
            record_pass::<T>(ctx, child, shape, lay);
            let l = child.layout().unwrap_or(lay);
            let pattern = match boundary {
                ShiftBoundary::Cyclic => CommPattern::Cshift,
                ShiftBoundary::Fill(_) => CommPattern::Eoshift,
            };
            let offproc = l.offproc_per_lane(*axis, *amount) * l.lanes(*axis);
            ctx.record_comm(
                pattern,
                shape.len(),
                shape.len(),
                len,
                (offproc * T::DTYPE.size()) as u64,
            );
        }
        Expr::Bcast { axis, child, .. } => {
            let mut inner = shape.to_vec();
            inner.remove(*axis);
            record_pass::<T>(ctx, child, &inner, lay);
        }
    }
}

/// Fire the per-shift fault-injection hooks on the fused output, one per
/// logical shift node (post-order) — the same number of `cshift` /
/// `eoshift` sites the eager chain would have visited.
fn inject_pass<T: Elem>(ctx: &Ctx, e: &Expr<'_, T>, out: &mut [T]) {
    match e {
        Expr::Leaf(_) | Expr::Const(_) => {}
        Expr::Unary { child, .. } => inject_pass(ctx, child, out),
        Expr::Binary { lhs, rhs, .. } => {
            inject_pass(ctx, lhs, out);
            inject_pass(ctx, rhs, out);
        }
        Expr::Shift {
            boundary, child, ..
        } => {
            inject_pass(ctx, child, out);
            let site = match boundary {
                ShiftBoundary::Cyclic => "cshift",
                ShiftBoundary::Fill(_) => "eoshift",
            };
            ctx.faults.inject_slice(site, out);
        }
        Expr::Bcast { child, .. } => inject_pass(ctx, child, out),
    }
}

// ------------------------------------------------------------ lowering

/// Backing storage for a lowered operand: leaves stay borrowed; anything
/// materialized (compound shift/broadcast children, SPMD halo results)
/// is a pooled buffer returned by [`retire`].
enum Store<'a, T> {
    Borrowed(&'a [T]),
    Owned(Vec<T>),
}

impl<T> Store<'_, T> {
    fn as_slice(&self) -> &[T] {
        match self {
            Store::Borrowed(s) => s,
            Store::Owned(v) => v,
        }
    }
}

/// A runtime evaluation plan: the `Expr` graph with leaves resolved to
/// slices, shifts resolved to strided offset reads (or pre-exchanged
/// halo buffers on SPMD), and broadcasts resolved to stride tricks.
enum Plan<'a, T: Elem> {
    Data(Store<'a, T>),
    Const(T),
    Unary {
        f: UnaryFn<T>,
        child: Box<Plan<'a, T>>,
    },
    Binary {
        f: BinaryFn<T>,
        lhs: Box<Plan<'a, T>>,
        rhs: Box<Plan<'a, T>>,
    },
    /// Shift-on-read: output flat index `base+k` reads the source at an
    /// axis offset, with interior cells a pure strided load.
    Shifted {
        src: Store<'a, T>,
        stride: usize,
        n: usize,
        amount: isize,
        fill: Option<T>,
        total: usize,
    },
    /// Broadcast-on-read along an inserted axis.
    Bcast {
        src: Store<'a, T>,
        stride: usize,
        n: usize,
    },
}

fn lower<'a, T: Elem>(ctx: &Ctx, e: &Expr<'a, T>, shape: &[usize], lay: &Layout) -> Plan<'a, T> {
    match e {
        Expr::Leaf(a) => {
            assert_eq!(a.shape(), shape, "fused leaf shape mismatch");
            Plan::Data(Store::Borrowed(a.as_slice()))
        }
        Expr::Const(v) => Plan::Const(*v),
        Expr::Unary { f, child, .. } => Plan::Unary {
            f: f.clone(),
            child: Box::new(lower(ctx, child, shape, lay)),
        },
        Expr::Binary { f, lhs, rhs, .. } => Plan::Binary {
            f: f.clone(),
            lhs: Box::new(lower(ctx, lhs, shape, lay)),
            rhs: Box::new(lower(ctx, rhs, shape, lay)),
        },
        Expr::Shift {
            axis,
            amount,
            boundary,
            child,
        } => {
            assert!(*axis < shape.len(), "shift axis out of rank");
            let child_lay = child.layout().unwrap_or(lay);
            if ctx.spmd() && child_lay.procs_on(*axis) > 1 {
                // Distributed axis under SPMD: the halo cells live on
                // neighbouring workers, so run the same pull exchange the
                // eager cshift uses (real channel traffic), then treat the
                // exchanged block as plain data. The logical record was
                // already made by `record_pass`.
                return Plan::Data(Store::Owned(exchange_shift(
                    ctx, child, shape, lay, *axis, *amount, boundary,
                )));
            }
            let src = match child.as_ref() {
                Expr::Leaf(a) => {
                    assert_eq!(a.shape(), shape, "fused leaf shape mismatch");
                    Store::Borrowed(a.as_slice())
                }
                other => Store::Owned(materialize(ctx, other, shape, lay)),
            };
            Plan::Shifted {
                src,
                stride: shape[*axis + 1..].iter().product(),
                n: shape[*axis],
                amount: *amount,
                fill: match boundary {
                    ShiftBoundary::Cyclic => None,
                    ShiftBoundary::Fill(v) => Some(*v),
                },
                total: shape.iter().product(),
            }
        }
        Expr::Bcast {
            axis,
            extent,
            child,
        } => {
            let mut inner = shape.to_vec();
            let n = inner.remove(*axis);
            assert_eq!(n, *extent, "broadcast extent mismatch");
            let src = match child.as_ref() {
                Expr::Leaf(a) => {
                    assert_eq!(a.shape(), inner.as_slice(), "broadcast leaf shape mismatch");
                    Store::Borrowed(a.as_slice())
                }
                other => Store::Owned(materialize(ctx, other, &inner, lay)),
            };
            Plan::Bcast {
                src,
                stride: shape[*axis + 1..].iter().product(),
                n,
            }
        }
    }
}

/// Materialize a compound subexpression into a pooled buffer (needed
/// under a shift or broadcast, whose reads are non-affine in the fused
/// index). Records are NOT replayed here — `record_pass` already walked
/// the whole graph.
fn materialize<T: Elem>(ctx: &Ctx, e: &Expr<'_, T>, shape: &[usize], lay: &Layout) -> Vec<T> {
    let len: usize = shape.iter().product();
    let plan = lower(ctx, e, shape, lay);
    let mut buf: Vec<T> = ctx.pool.take(len);
    run_plan(ctx, &plan, &mut buf);
    retire(ctx, plan);
    buf
}

/// Run the eager pull-exchange for one distributed-axis shift node and
/// return the shifted block as a pooled buffer. Uses the identical
/// `shifted_into` path as eager `cshift`/`eoshift`, so SPMD channel
/// traffic (and worker scheduling) match the eager chain.
fn exchange_shift<T: Elem>(
    ctx: &Ctx,
    child: &Expr<'_, T>,
    shape: &[usize],
    lay: &Layout,
    axis: usize,
    amount: isize,
    boundary: &ShiftBoundary<T>,
) -> Vec<T> {
    let b = match boundary {
        ShiftBoundary::Cyclic => Boundary::Cyclic,
        ShiftBoundary::Fill(v) => Boundary::Fill(*v),
    };
    let mut out = DistArray::<T>::scratch(ctx, shape, lay.axes());
    match child {
        Expr::Leaf(a) => {
            assert_eq!(a.shape(), shape, "fused leaf shape mismatch");
            shift::shifted_into(ctx, a, axis, amount, b, &mut out);
        }
        other => {
            let mut src = DistArray::<T>::scratch(ctx, shape, lay.axes());
            let plan = lower(ctx, other, shape, lay);
            run_plan(ctx, &plan, src.as_mut_slice());
            retire(ctx, plan);
            shift::shifted_into(ctx, &src, axis, amount, b, &mut out);
            src.recycle(ctx);
        }
    }
    out.into_vec()
}

/// Return every materialized buffer in a finished plan to the pool.
fn retire<T: Elem>(ctx: &Ctx, plan: Plan<'_, T>) {
    match plan {
        Plan::Const(_) => {}
        Plan::Data(s) | Plan::Shifted { src: s, .. } | Plan::Bcast { src: s, .. } => {
            if let Store::Owned(v) = s {
                ctx.pool.put(v);
            }
        }
        Plan::Unary { child, .. } => retire(ctx, *child),
        Plan::Binary { lhs, rhs, .. } => {
            retire(ctx, *lhs);
            retire(ctx, *rhs);
        }
    }
}

// ----------------------------------------------------------- execution

/// Scratch chunks needed by a plan: one per binary node live along a
/// right-operand path (the left operand evaluates into the output).
fn scratch_depth<T: Elem>(p: &Plan<'_, T>) -> usize {
    match p {
        Plan::Data(_) | Plan::Const(_) | Plan::Shifted { .. } | Plan::Bcast { .. } => 0,
        Plan::Unary { child, .. } => scratch_depth(child),
        Plan::Binary { lhs, rhs, .. } => scratch_depth(lhs).max(1 + scratch_depth(rhs)),
    }
}

fn take_bufs<T: Elem>(ctx: &Ctx, depth: usize) -> Vec<Vec<T>> {
    (0..depth).map(|_| ctx.pool.take(CHUNK)).collect()
}

fn put_bufs<T: Elem>(ctx: &Ctx, bufs: Vec<Vec<T>>) {
    for b in bufs {
        ctx.pool.put(b);
    }
}

/// One fused sweep of the whole plan over `dst`. Above the parallel
/// threshold (and only when rayon actually has more than one worker) the
/// output splits into contiguous spans, one scratch arena each.
fn run_plan<T: Elem>(ctx: &Ctx, plan: &Plan<'_, T>, dst: &mut [T]) {
    let len = dst.len();
    ctx.busy(|| {
        if len >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
            let span = len.div_ceil(rayon::current_num_threads()).max(CHUNK);
            dst.par_chunks_mut(span)
                .enumerate()
                .for_each(|(r, d)| run_span(ctx, plan, r * span, d));
        } else {
            run_span(ctx, plan, 0, dst);
        }
    });
}

/// Evaluate one contiguous output span chunk-by-chunk with a private
/// scratch arena drawn from (and returned to) the buffer pool.
fn run_span<T: Elem>(ctx: &Ctx, plan: &Plan<'_, T>, start: usize, dst: &mut [T]) {
    let mut scratch = take_bufs::<T>(ctx, scratch_depth(plan));
    let mut base = start;
    for chunk in dst.chunks_mut(CHUNK) {
        eval_chunk(plan, base, chunk, &mut scratch, 0);
        base += chunk.len();
    }
    put_bufs(ctx, scratch);
}

/// A plan node that is directly addressable as a slice for this chunk.
fn direct<'p, T: Elem>(p: &'p Plan<'_, T>, base: usize, len: usize) -> Option<&'p [T]> {
    match p {
        Plan::Data(s) => Some(&s.as_slice()[base..base + len]),
        _ => None,
    }
}

/// Evaluate `out.len()` elements of the plan starting at flat index
/// `base`, recursing into at most `scratch_depth` pooled chunks.
fn eval_chunk<T: Elem>(
    p: &Plan<'_, T>,
    base: usize,
    out: &mut [T],
    scratch: &mut [Vec<T>],
    depth: usize,
) {
    let len = out.len();
    match p {
        Plan::Data(s) => out.copy_from_slice(&s.as_slice()[base..base + len]),
        Plan::Const(v) => out.fill(*v),
        Plan::Unary { f, child } => {
            if let Some(s) = direct(child, base, len) {
                for (o, x) in out.iter_mut().zip(s) {
                    *o = f(*x);
                }
            } else {
                eval_chunk(child, base, out, scratch, depth);
                for o in out.iter_mut() {
                    *o = f(*o);
                }
            }
        }
        Plan::Binary { f, lhs, rhs } => match (direct(lhs, base, len), direct(rhs, base, len)) {
            (Some(a), Some(b)) => {
                for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
                    *o = f(*x, *y);
                }
            }
            (Some(a), None) => {
                eval_chunk(rhs, base, out, scratch, depth);
                for (o, x) in out.iter_mut().zip(a) {
                    *o = f(*x, *o);
                }
            }
            (None, Some(b)) => {
                eval_chunk(lhs, base, out, scratch, depth);
                for (o, y) in out.iter_mut().zip(b) {
                    *o = f(*o, *y);
                }
            }
            (None, None) => {
                eval_chunk(lhs, base, out, scratch, depth);
                let mut buf = std::mem::take(&mut scratch[depth]);
                eval_chunk(rhs, base, &mut buf[..len], scratch, depth + 1);
                for (o, y) in out.iter_mut().zip(&buf[..len]) {
                    *o = f(*o, *y);
                }
                scratch[depth] = buf;
            }
        },
        Plan::Shifted {
            src,
            stride,
            n,
            amount,
            fill,
            total,
        } => fill_shifted(
            src.as_slice(),
            base,
            out,
            *stride,
            *n,
            *amount,
            *fill,
            *total,
        ),
        Plan::Bcast { src, n, stride } => {
            let s = src.as_slice();
            let period = n * stride;
            for (k, o) in out.iter_mut().enumerate() {
                let f0 = base + k;
                *o = s[(f0 / period) * stride + f0 % stride];
            }
        }
    }
}

/// Shift-on-read into one output chunk. Interior cells are pure strided
/// loads; only cells whose source index leaves the axis take the wrap or
/// fill branch — and a whole-array rank-1 shift reduces to two
/// contiguous copies.
#[allow(clippy::too_many_arguments)]
fn fill_shifted<T: Elem>(
    src: &[T],
    base: usize,
    out: &mut [T],
    stride: usize,
    n: usize,
    amount: isize,
    fill: Option<T>,
    total: usize,
) {
    let len = out.len();
    if len == 0 {
        return;
    }
    if stride == 1 && n == total {
        // Rank-1 over the whole axis: the chunk is a window of a single
        // lane, so the shift is (at most) two contiguous copies.
        match fill {
            None => {
                let s = amount.rem_euclid(n as isize) as usize;
                let start = (base + s) % n;
                let first = (n - start).min(len);
                out[..first].copy_from_slice(&src[start..start + first]);
                out[first..].copy_from_slice(&src[..len - first]);
            }
            Some(fv) => {
                // Source index j = base + k + amount must lie in [0, n).
                let lo = (-amount - base as isize).clamp(0, len as isize) as usize;
                let hi = (n as isize - amount - base as isize).clamp(0, len as isize) as usize;
                let hi = hi.max(lo);
                out[..lo].fill(fv);
                if lo < hi {
                    let s0 = (base as isize + lo as isize + amount) as usize;
                    out[lo..hi].copy_from_slice(&src[s0..s0 + (hi - lo)]);
                }
                out[hi..].fill(fv);
            }
        }
        return;
    }
    let period = stride * n;
    for (k, o) in out.iter_mut().enumerate() {
        let f = base + k;
        let lane = (f / period) * period + f % stride;
        let c = (f / stride) % n;
        let j = c as isize + amount;
        *o = match fill {
            None => src[lane + (j.rem_euclid(n as isize) as usize) * stride],
            Some(fv) => {
                if j < 0 || j >= n as isize {
                    fv
                } else {
                    src[lane + (j as usize) * stride]
                }
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cshift, eoshift};
    use dpf_array::PAR;
    use dpf_core::Machine;

    fn ctx(p: usize) -> Ctx {
        Ctx::new(Machine::cm5(p))
    }

    #[test]
    fn fused_chain_matches_eager_values_and_metrics() {
        let ec = ctx(4);
        let fc = ctx(4);
        let mk = |c: &Ctx| DistArray::<f64>::from_fn(c, &[37], &[PAR], |i| i[0] as f64 * 0.5 - 3.0);
        let a_e = mk(&ec);
        let a_f = mk(&fc);

        let s = cshift(&ec, &a_e, 0, 2);
        let t = a_e.zip_map(&ec, 1, &s, |x, y| x * y);
        let eager = t.map(&ec, 2, |x| x + 0.25);

        let e = Expr::leaf(&a_f)
            .zip(Expr::leaf(&a_f).shift(0, 2), 1, |x, y| x * y)
            .map(2, |x| x + 0.25);
        let fused = eval(&fc, &e);

        assert_eq!(eager.to_vec(), fused.to_vec());
        assert_eq!(ec.instr.flops(), fc.instr.flops());
        assert_eq!(ec.instr.comm_snapshot(), fc.instr.comm_snapshot());
    }

    #[test]
    fn fused_eoshift_and_const_match_eager() {
        let ec = ctx(4);
        let fc = ctx(4);
        let mk = |c: &Ctx| {
            DistArray::<f64>::from_fn(c, &[5, 6], &[PAR, PAR], |i| (i[0] * 6 + i[1]) as f64)
        };
        let a_e = mk(&ec);
        let a_f = mk(&fc);

        let s = eoshift(&ec, &a_e, 1, -2, -1.0);
        let eager = s.zip_map(&ec, 1, &a_e, |x, y| x + 2.0 * y);

        let e = Expr::leaf(&a_f)
            .eoshift(1, -2, -1.0)
            .zip(Expr::leaf(&a_f), 1, |x, y| x + 2.0 * y);
        let fused = eval(&fc, &e);

        assert_eq!(eager.to_vec(), fused.to_vec());
        assert_eq!(ec.instr.comm_snapshot(), fc.instr.comm_snapshot());

        let c = Expr::leaf(&a_f).zip(Expr::lit(3.0), 1, |x, c| x * c);
        assert_eq!(
            eval(&fc, &c).to_vec(),
            a_f.map(&fc, 1, |x| x * 3.0).to_vec()
        );
    }

    #[test]
    fn shift_of_compound_matches_eager_composition() {
        let ec = ctx(4);
        let fc = ctx(4);
        let mk = |c: &Ctx| DistArray::<f64>::from_fn(c, &[23], &[PAR], |i| (i[0] as f64).sin());
        let a_e = mk(&ec);
        let a_f = mk(&fc);

        let sq = a_e.map(&ec, 1, |x| x * x);
        let eager = cshift(&ec, &sq, 0, -3);

        let e = Expr::leaf(&a_f).map(1, |x| x * x).shift(0, -3);
        let fused = eval(&fc, &e);
        assert_eq!(eager.to_vec(), fused.to_vec());
        assert_eq!(ec.instr.flops(), fc.instr.flops());
        assert_eq!(ec.instr.comm_snapshot(), fc.instr.comm_snapshot());
    }

    #[test]
    fn bcast_aligns_lower_rank_operand() {
        let c = ctx(4);
        let m = DistArray::<f64>::from_fn(&c, &[4, 3], &[PAR, PAR], |i| (i[0] * 3 + i[1]) as f64);
        let v = DistArray::<f64>::from_fn(&c, &[4], &[PAR], |i| 10.0 * i[0] as f64);
        // m[i][j] - v[i]: broadcast v along a new axis 1 of extent 3.
        let e = Expr::leaf(&m).zip(Expr::leaf(&v).bcast(1, 3), 1, |a, b| a - b);
        let got = eval(&c, &e);
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(got.get(&[i, j]), (i * 3 + j) as f64 - 10.0 * i as f64);
            }
        }
    }

    #[test]
    fn fold_rows_sums_last_axis() {
        let c = ctx(4);
        let m = DistArray::<f64>::from_fn(&c, &[3, 5], &[PAR, PAR], |i| (i[0] * 5 + i[1]) as f64);
        let acc = fold_rows(&c, &Expr::leaf(&m), 0.0, |a, v| a + v);
        assert_eq!(acc, vec![10.0, 35.0, 60.0]);
    }

    #[test]
    fn eval_into_reuses_caller_buffer_and_pool_round_trips() {
        let c = ctx(4);
        let a = DistArray::<f64>::from_fn(&c, &[40_000], &[PAR], |i| i[0] as f64);
        let mut out = DistArray::<f64>::zeros(&c, &[40_000], &[PAR]);
        let e = Expr::leaf(&a)
            .zip(Expr::leaf(&a).shift(0, 1), 1, |x, y| x + y)
            .map(1, |x| 0.5 * x);
        eval_into(&c, &e, &mut out);
        assert_eq!(out.get(&[0]), 0.5);
        // Second evaluation reuses pooled scratch chunks.
        let before = c.pool.hits();
        eval_into(&c, &e, &mut out);
        assert!(c.pool.hits() > before);
    }

    #[test]
    fn spmd_backend_matches_virtual_with_real_traffic() {
        use dpf_core::Backend;
        let vc = ctx(4);
        let sc = Ctx::with_backend(Machine::cm5(4), Backend::Spmd);
        let mk = |c: &Ctx| DistArray::<f64>::from_fn(c, &[64], &[PAR], |i| i[0] as f64);
        let av = mk(&vc);
        let asp = mk(&sc);
        let build = |a| {
            Expr::leaf(a)
                .zip(Expr::leaf(a).shift(0, 1), 1, |x, y| x - y)
                .zip(Expr::leaf(a).shift(0, -1), 1, |x, y| x + y)
        };
        let rv = eval(&vc, &build(&av));
        let rs = eval(&sc, &build(&asp));
        assert_eq!(rv.to_vec(), rs.to_vec());
        assert_eq!(vc.instr.comm_snapshot(), sc.instr.comm_snapshot());
        assert_eq!(vc.link.messages(), 0);
        assert!(
            sc.link.payload_bytes() > 0,
            "fused SPMD shift must exchange halos"
        );
    }
}
