//! Parallel-prefix (scan) operations, plain and segmented.
//!
//! Scans appear in the paper's qptransport (sum-scans over the bipartite
//! graph), qmc (segmented copy-scans for walker spawning) and
//! pic-gather-scatter (sum-scans before the router operation). Like
//! reductions, an add-scan over `N` elements charges `N − 1` FLOPs per
//! lane; a copy-scan moves data without arithmetic.
//!
//! Under the SPMD backend the scans run as per-lane pipelines
//! ([`crate::spmd`]): each axis block's owner folds its stretch of every
//! lane and ships the lane accumulators to the next block's owner —
//! exactly the `lanes × (p − 1)` partials the Scan pattern models — in
//! the same element order as the serial loops, so results match bit for
//! bit.

use crate::spmd::axis_exec;
use dpf_array::DistArray;
use dpf_core::{flops, CommPattern, Ctx, Elem, Num};

fn record_scan<T: Elem>(ctx: &Ctx, a: &DistArray<T>, axis: usize) {
    let lanes = a.layout().lanes(axis) as u64;
    let partials = lanes * (a.layout().procs_on(axis) as u64).saturating_sub(1);
    ctx.record_comm(
        CommPattern::Scan,
        a.rank(),
        a.rank(),
        a.len() as u64,
        partials * T::DTYPE.size() as u64,
    );
}

/// Inclusive add-scan along `axis`.
pub fn scan_add<T: Num>(ctx: &Ctx, a: &DistArray<T>, axis: usize) -> DistArray<T> {
    scan_add_impl(ctx, a, axis, true)
}

/// Exclusive add-scan along `axis` (element `i` receives the sum of
/// elements `0..i`; element 0 receives zero).
pub fn scan_add_exclusive<T: Num>(ctx: &Ctx, a: &DistArray<T>, axis: usize) -> DistArray<T> {
    scan_add_impl(ctx, a, axis, false)
}

fn scan_add_impl<T: Num>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    inclusive: bool,
) -> DistArray<T> {
    assert!(axis < a.rank());
    record_scan(ctx, a, axis);
    let n = a.shape()[axis];
    let lanes = a.layout().lanes(axis) as u64;
    ctx.add_flops(lanes * flops::reduction(n as u64) * T::DTYPE.add_flops());
    let outer: usize = a.shape()[..axis].iter().product();
    let inner: usize = a.shape()[axis + 1..].iter().product();
    let mut out = DistArray::<T>::zeros(ctx, a.shape(), a.layout().axes());
    if ctx.spmd() && a.layout().procs_on(axis) > 1 {
        let src = a.as_slice();
        ctx.busy(|| {
            axis_exec::<T, T>(
                ctx,
                a.layout(),
                axis,
                Some(out.as_mut_slice()),
                T::zero(),
                T::DTYPE.size() as u64,
                &|acc, flat, write| {
                    if inclusive {
                        *acc += src[flat];
                        write(flat, *acc);
                    } else {
                        write(flat, *acc);
                        *acc += src[flat];
                    }
                },
            );
        });
    } else {
        ctx.busy(|| {
            let src = a.as_slice();
            let dst = out.as_mut_slice();
            for o in 0..outer {
                for k in 0..inner {
                    let mut acc = T::zero();
                    for i in 0..n {
                        let off = (o * n + i) * inner + k;
                        if inclusive {
                            acc += src[off];
                            dst[off] = acc;
                        } else {
                            dst[off] = acc;
                            acc += src[off];
                        }
                    }
                }
            }
        });
    }
    out
}

/// Segmented inclusive add-scan along `axis`: the accumulator resets at
/// every element whose `segment_start` flag is true.
pub fn segmented_scan_add<T: Num>(
    ctx: &Ctx,
    a: &DistArray<T>,
    segment_start: &DistArray<bool>,
    axis: usize,
) -> DistArray<T> {
    assert_eq!(
        a.shape(),
        segment_start.shape(),
        "segment flag shape mismatch"
    );
    assert!(axis < a.rank());
    record_scan(ctx, a, axis);
    let n = a.shape()[axis];
    let lanes = a.layout().lanes(axis) as u64;
    ctx.add_flops(lanes * flops::reduction(n as u64) * T::DTYPE.add_flops());
    let outer: usize = a.shape()[..axis].iter().product();
    let inner: usize = a.shape()[axis + 1..].iter().product();
    let mut out = DistArray::<T>::zeros(ctx, a.shape(), a.layout().axes());
    if ctx.spmd() && a.layout().procs_on(axis) > 1 {
        // Segment flags are read in place (aligned with the data); only
        // the lane accumulators cross the pipeline.
        let src = a.as_slice();
        let seg = segment_start.as_slice();
        ctx.busy(|| {
            axis_exec::<T, T>(
                ctx,
                a.layout(),
                axis,
                Some(out.as_mut_slice()),
                T::zero(),
                T::DTYPE.size() as u64,
                &|acc, flat, write| {
                    if seg[flat] {
                        *acc = T::zero();
                    }
                    *acc += src[flat];
                    write(flat, *acc);
                },
            );
        });
    } else {
        ctx.busy(|| {
            let src = a.as_slice();
            let seg = segment_start.as_slice();
            let dst = out.as_mut_slice();
            for o in 0..outer {
                for k in 0..inner {
                    let mut acc = T::zero();
                    for i in 0..n {
                        let off = (o * n + i) * inner + k;
                        if seg[off] {
                            acc = T::zero();
                        }
                        acc += src[off];
                        dst[off] = acc;
                    }
                }
            }
        });
    }
    out
}

/// Segmented copy-scan along `axis`: every element receives the value its
/// segment started with (the qmc walker-spawning primitive). Charges no
/// FLOPs — pure data motion.
pub fn segmented_copy_scan<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    segment_start: &DistArray<bool>,
    axis: usize,
) -> DistArray<T> {
    assert_eq!(
        a.shape(),
        segment_start.shape(),
        "segment flag shape mismatch"
    );
    assert!(axis < a.rank());
    record_scan(ctx, a, axis);
    let n = a.shape()[axis];
    let outer: usize = a.shape()[..axis].iter().product();
    let inner: usize = a.shape()[axis + 1..].iter().product();
    let mut out = DistArray::<T>::zeros(ctx, a.shape(), a.layout().axes());
    if ctx.spmd() && a.layout().procs_on(axis) > 1 {
        let src = a.as_slice();
        let seg = segment_start.as_slice();
        let stride = a.layout().strides()[axis];
        ctx.busy(|| {
            axis_exec::<T, T>(
                ctx,
                a.layout(),
                axis,
                Some(out.as_mut_slice()),
                T::default(),
                T::DTYPE.size() as u64,
                &|cur, flat, write| {
                    // Axis coordinate 0 starts a segment implicitly.
                    if (flat / stride).is_multiple_of(n) || seg[flat] {
                        *cur = src[flat];
                    }
                    write(flat, *cur);
                },
            );
        });
    } else {
        ctx.busy(|| {
            let src = a.as_slice();
            let seg = segment_start.as_slice();
            let dst = out.as_mut_slice();
            for o in 0..outer {
                for k in 0..inner {
                    let mut current = T::default();
                    for i in 0..n {
                        let off = (o * n + i) * inner + k;
                        if i == 0 || seg[off] {
                            current = src[off];
                        }
                        dst[off] = current;
                    }
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpf_array::PAR;
    use dpf_core::Machine;

    fn ctx() -> Ctx {
        Ctx::new(Machine::cm5(4))
    }

    #[test]
    fn inclusive_scan_is_prefix_sum() {
        let ctx = ctx();
        let a = DistArray::<f64>::from_vec(&ctx, &[5], &[PAR], vec![1., 2., 3., 4., 5.]);
        let s = scan_add(&ctx, &a, 0);
        assert_eq!(s.to_vec(), vec![1., 3., 6., 10., 15.]);
        assert_eq!(ctx.instr.flops(), 4);
    }

    #[test]
    fn exclusive_scan_shifts_by_one() {
        let ctx = ctx();
        let a = DistArray::<i32>::from_vec(&ctx, &[4], &[PAR], vec![1, 2, 3, 4]);
        let s = scan_add_exclusive(&ctx, &a, 0);
        assert_eq!(s.to_vec(), vec![0, 1, 3, 6]);
    }

    #[test]
    fn scan_along_second_axis() {
        let ctx = ctx();
        let a = DistArray::<i32>::from_fn(&ctx, &[2, 3], &[PAR, PAR], |i| (i[1] + 1) as i32);
        let s = scan_add(&ctx, &a, 1);
        assert_eq!(s.to_vec(), vec![1, 3, 6, 1, 3, 6]);
    }

    #[test]
    fn scan_along_first_axis_of_2d() {
        let ctx = ctx();
        let a = DistArray::<i32>::full(&ctx, &[3, 2], &[PAR, PAR], 1);
        let s = scan_add(&ctx, &a, 0);
        assert_eq!(s.to_vec(), vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn segmented_scan_resets_at_flags() {
        let ctx = ctx();
        let a = DistArray::<i32>::from_vec(&ctx, &[6], &[PAR], vec![1, 1, 1, 1, 1, 1]);
        let seg = DistArray::<bool>::from_vec(
            &ctx,
            &[6],
            &[PAR],
            vec![true, false, false, true, false, false],
        );
        let s = segmented_scan_add(&ctx, &a, &seg, 0);
        assert_eq!(s.to_vec(), vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn segmented_copy_scan_fills_segments() {
        let ctx = ctx();
        let a = DistArray::<i32>::from_vec(&ctx, &[6], &[PAR], vec![7, 0, 0, 9, 0, 0]);
        let seg = DistArray::<bool>::from_vec(
            &ctx,
            &[6],
            &[PAR],
            vec![true, false, false, true, false, false],
        );
        let s = segmented_copy_scan(&ctx, &a, &seg, 0);
        assert_eq!(s.to_vec(), vec![7, 7, 7, 9, 9, 9]);
        // Copy-scan charges no FLOPs.
        assert_eq!(ctx.instr.flops(), 0);
    }

    #[test]
    fn scans_record_scan_pattern() {
        let ctx = ctx();
        let a = DistArray::<f64>::zeros(&ctx, &[16], &[PAR]);
        let _ = scan_add(&ctx, &a, 0);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Scan), 1);
    }
}
