//! Distributed transpose — all-to-all personalized communication (AAPC).
//!
//! The paper's `transpose` communication benchmark is implemented as an
//! AAPC and "may be used to confirm advertised bisection bandwidths". The
//! off-processor volume is computed exactly: an element moves iff its
//! owner under the source layout differs from the owner of its transposed
//! position under the destination layout.
//!
//! Under the SPMD backend the destination owners pull their elements from
//! the source owners ([`crate::spmd::pull_exec`]); the owner-mismatch
//! predicate of the pull is the same one `count_moves` models, so metered
//! and modeled bytes agree exactly.

use crate::spmd::{pull_exec, Src};
use dpf_array::{DistArray, MAX_RANK, PAR_THRESHOLD};
use dpf_core::{CommPattern, Ctx, DpfError, Elem};
use rayon::prelude::*;

/// Elements per task in the parallel owner-comparison loop.
const COUNT_CHUNK: usize = 4096;

/// Transpose a 2-D array (AAPC).
pub fn transpose<T: Elem>(ctx: &Ctx, a: &DistArray<T>) -> DistArray<T> {
    assert_eq!(
        a.rank(),
        2,
        "transpose expects a 2-D array (use transpose_axes)"
    );
    transpose_axes(ctx, a, 0, 1)
}

/// [`transpose`] reporting a wrong-rank argument as a recoverable
/// [`DpfError`] instead of panicking.
pub fn try_transpose<T: Elem>(ctx: &Ctx, a: &DistArray<T>) -> Result<DistArray<T>, DpfError> {
    if a.rank() != 2 {
        return Err(DpfError::Shape {
            what: "transpose expects a 2-D array (use transpose_axes)",
        });
    }
    Ok(transpose_axes(ctx, a, 0, 1))
}

/// Swap two axes of an array of any rank (AAPC along the pair).
pub fn transpose_axes<T: Elem>(ctx: &Ctx, a: &DistArray<T>, d0: usize, d1: usize) -> DistArray<T> {
    assert!(
        d0 < a.rank() && d1 < a.rank() && d0 != d1,
        "invalid axis pair"
    );
    let mut order: Vec<usize> = (0..a.rank()).collect();
    order.swap(d0, d1);
    // Build the result through the storage permutation, then account the
    // movement exactly against the fresh layout.
    let out = if ctx.spmd() && a.layout().is_distributed() {
        // Same layout the permute would produce, but every destination
        // owner pulls its elements from the source owners.
        let rank = a.rank();
        let new_shape: Vec<usize> = order.iter().map(|&d| a.shape()[d]).collect();
        let new_axes: Vec<_> = order.iter().map(|&d| a.layout().axes()[d]).collect();
        let mut out = DistArray::<T>::scratch(ctx, &new_shape, &new_axes);
        let out_layout = out.layout().clone();
        let src_strides = a.layout().strides();
        ctx.busy(|| {
            pull_exec(
                ctx,
                a.layout(),
                a.as_slice(),
                &out_layout,
                out.as_mut_slice(),
                &|flat| {
                    let mut rem = flat;
                    let mut src_flat = 0usize;
                    for k in (0..rank).rev() {
                        let i = rem % new_shape[k];
                        rem /= new_shape[k];
                        src_flat += i * src_strides[order[k]];
                    }
                    Src::Flat(src_flat)
                },
            );
        });
        out
    } else {
        ctx.suppress_comm(|| a.permute(ctx, &order))
    };
    let offproc = if a.layout().is_distributed() || out.layout().is_distributed() {
        count_moves(a.shape(), &order, a.layout(), out.layout())
    } else {
        0
    };
    finish(ctx, a, out, offproc)
}

/// Count elements whose owner differs between the source layout and their
/// permuted position in the destination layout.
///
/// Walks source flat offsets in parallel chunks with a stack-local
/// odometer index (decoded once per chunk, advanced in place) — the
/// source-side owner comes from block segments of the flat range, so only
/// the permuted destination owner is computed per element.
fn count_moves(
    shape: &[usize],
    order: &[usize],
    src: &dpf_array::Layout,
    dst: &dpf_array::Layout,
) -> u64 {
    let rank = shape.len();
    assert!(rank <= MAX_RANK, "transpose supports rank <= {MAX_RANK}");
    let len: usize = shape.iter().product();
    let count_chunk = |start: usize, chunk_len: usize| -> u64 {
        let mut count = 0u64;
        src.for_each_owner_segment(start, chunk_len, |seg0, seg_len, sown| {
            // Decode the segment's first multi-index, then advance the
            // odometer in place.
            let mut idx = [0usize; MAX_RANK];
            let mut rem = seg0;
            for d in (0..rank).rev() {
                idx[d] = rem % shape[d];
                rem /= shape[d];
            }
            let mut tidx = [0usize; MAX_RANK];
            for _ in 0..seg_len {
                for (k, &d) in order.iter().enumerate() {
                    tidx[k] = idx[d];
                }
                if dst.owner_id(&tidx[..rank]) != sown {
                    count += 1;
                }
                for d in (0..rank).rev() {
                    idx[d] += 1;
                    if idx[d] < shape[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        });
        count
    };
    if len >= PAR_THRESHOLD {
        let chunks = len.div_ceil(COUNT_CHUNK);
        (0..chunks)
            .into_par_iter()
            .map(|c| {
                let start = c * COUNT_CHUNK;
                count_chunk(start, COUNT_CHUNK.min(len - start))
            })
            .reduce(|| 0u64, |a, b| a + b)
    } else {
        count_chunk(0, len)
    }
}

fn finish<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    mut out: DistArray<T>,
    offproc_elems: u64,
) -> DistArray<T> {
    ctx.record_comm(
        CommPattern::Aapc,
        a.rank(),
        out.rank(),
        a.len() as u64,
        offproc_elems * T::DTYPE.size() as u64,
    );
    ctx.faults.inject_slice("transpose", out.as_mut_slice());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpf_array::{PAR, SER};
    use dpf_core::Machine;

    fn ctx(p: usize) -> Ctx {
        Ctx::new(Machine::cm5(p))
    }

    #[test]
    fn transpose_2d_is_correct() {
        let ctx = ctx(4);
        let a = DistArray::<i32>::from_fn(&ctx, &[2, 3], &[PAR, PAR], |i| (i[0] * 3 + i[1]) as i32);
        let t = transpose(&ctx, &a);
        assert_eq!(t.shape(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.get(&[j, i]), a.get(&[i, j]));
            }
        }
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Aapc), 1);
    }

    #[test]
    fn transpose_moves_off_diagonal_blocks() {
        // Square array over a square grid: diagonal blocks stay home.
        let ctx = ctx(4);
        let a = DistArray::<f64>::zeros(&ctx, &[8, 8], &[PAR, PAR]);
        let _ = transpose(&ctx, &a);
        let snap = ctx.instr.comm_snapshot();
        let stats = snap.values().next().unwrap();
        // 2x2 grid of 4x4 blocks: the two off-diagonal blocks move -> 32
        // elements of 8 bytes.
        assert_eq!(stats.offproc_bytes, 32 * 8);
    }

    #[test]
    fn serial_transpose_is_local() {
        let ctx = ctx(1);
        let a = DistArray::<f64>::zeros(&ctx, &[4, 4], &[SER, SER]);
        let _ = transpose(&ctx, &a);
        let snap = ctx.instr.comm_snapshot();
        assert_eq!(snap.values().next().unwrap().offproc_bytes, 0);
    }

    #[test]
    fn transpose_axes_of_3d() {
        let ctx = ctx(2);
        let a = DistArray::<i32>::from_fn(&ctx, &[2, 3, 4], &[PAR, PAR, SER], |i| {
            (i[0] * 100 + i[1] * 10 + i[2]) as i32
        });
        let t = transpose_axes(&ctx, &a, 0, 2);
        assert_eq!(t.shape(), &[4, 3, 2]);
        assert_eq!(t.get(&[3, 1, 0]), a.get(&[0, 1, 3]));
    }

    #[test]
    fn double_transpose_is_identity() {
        let ctx = ctx(4);
        let a = DistArray::<i32>::from_fn(&ctx, &[3, 5], &[PAR, PAR], |i| (i[0] * 5 + i[1]) as i32);
        let tt = transpose(&ctx, &transpose(&ctx, &a));
        assert_eq!(tt.to_vec(), a.to_vec());
    }
}
