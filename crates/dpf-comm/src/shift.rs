//! CSHIFT and EOSHIFT — the suite's most frequent communication pattern.
//!
//! A circular shift along a parallel axis moves the elements near each
//! block boundary to the neighbouring processor; along a serial axis it is
//! a local memory move and records no communication. Off-processor volume
//! is computed from the block map via
//! [`Layout::offproc_per_lane`](dpf_array::Layout::offproc_per_lane).

use dpf_array::DistArray;
use dpf_core::{CommPattern, Ctx, Elem};

/// Circular shift by `shift` along `axis`: `out[.., i, ..] = a[.., (i + shift) mod n, ..]`
/// (CMF/HPF convention: positive shift moves data toward lower indices).
pub fn cshift<T: Elem>(ctx: &Ctx, a: &DistArray<T>, axis: usize, shift: isize) -> DistArray<T> {
    record_shift(ctx, a, axis, shift, CommPattern::Cshift);
    shifted(ctx, a, axis, shift, Boundary::Cyclic)
}

/// End-off shift: elements shifted off the end are discarded and `fill`
/// enters from the other side.
pub fn eoshift<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    shift: isize,
    fill: T,
) -> DistArray<T> {
    record_shift(ctx, a, axis, shift, CommPattern::Eoshift);
    shifted(ctx, a, axis, shift, Boundary::Fill(fill))
}

fn record_shift<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    shift: isize,
    pattern: CommPattern,
) {
    let offproc = a.layout().offproc_per_lane(axis, shift) * a.layout().lanes(axis);
    ctx.record_comm(
        pattern,
        a.rank(),
        a.rank(),
        a.len() as u64,
        (offproc * T::DTYPE.size()) as u64,
    );
}

enum Boundary<T> {
    Cyclic,
    Fill(T),
}

fn shifted<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    shift: isize,
    boundary: Boundary<T>,
) -> DistArray<T> {
    assert!(axis < a.rank(), "shift axis {axis} out of rank {}", a.rank());
    let shape = a.shape().to_vec();
    let n = shape[axis];
    let outer: usize = shape[..axis].iter().product();
    let inner: usize = shape[axis + 1..].iter().product();
    let mut out = DistArray::<T>::zeros(ctx, &shape, a.layout().axes());
    ctx.busy(|| {
        let src = a.as_slice();
        let dst = out.as_mut_slice();
        // View the array as [outer, n, inner]; a shift along `axis` copies
        // whole inner-contiguous lanes.
        for o in 0..outer {
            let base = o * n * inner;
            for i in 0..n {
                let j = i as isize + shift;
                let d0 = base + i * inner;
                match boundary {
                    Boundary::Cyclic => {
                        let j = j.rem_euclid(n as isize) as usize;
                        let s0 = base + j * inner;
                        dst[d0..d0 + inner].copy_from_slice(&src[s0..s0 + inner]);
                    }
                    Boundary::Fill(fill) => {
                        if j < 0 || j >= n as isize {
                            dst[d0..d0 + inner].fill(fill);
                        } else {
                            let s0 = base + j as usize * inner;
                            dst[d0..d0 + inner].copy_from_slice(&src[s0..s0 + inner]);
                        }
                    }
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpf_array::{PAR, SER};
    use dpf_core::Machine;

    fn ctx(p: usize) -> Ctx {
        Ctx::new(Machine::cm5(p))
    }

    #[test]
    fn cshift_1d_moves_toward_lower_indices() {
        let ctx = ctx(4);
        let a = DistArray::<i32>::from_fn(&ctx, &[5], &[PAR], |i| i[0] as i32);
        let s = cshift(&ctx, &a, 0, 1);
        assert_eq!(s.to_vec(), vec![1, 2, 3, 4, 0]);
        let s = cshift(&ctx, &a, 0, -1);
        assert_eq!(s.to_vec(), vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn cshift_2d_along_each_axis() {
        let ctx = ctx(4);
        let a = DistArray::<i32>::from_fn(&ctx, &[2, 3], &[PAR, PAR], |i| {
            (i[0] * 3 + i[1]) as i32
        });
        let r = cshift(&ctx, &a, 1, 1);
        assert_eq!(r.to_vec(), vec![1, 2, 0, 4, 5, 3]);
        let c = cshift(&ctx, &a, 0, 1);
        assert_eq!(c.to_vec(), vec![3, 4, 5, 0, 1, 2]);
    }

    #[test]
    fn eoshift_fills_vacated_positions() {
        let ctx = ctx(4);
        let a = DistArray::<i32>::from_fn(&ctx, &[4], &[PAR], |i| i[0] as i32 + 1);
        let s = eoshift(&ctx, &a, 0, 1, -9);
        assert_eq!(s.to_vec(), vec![2, 3, 4, -9]);
        let s = eoshift(&ctx, &a, 0, -2, 0);
        assert_eq!(s.to_vec(), vec![0, 0, 1, 2]);
    }

    #[test]
    fn cshift_records_offproc_bytes() {
        let ctx = ctx(4);
        // 16 f64 over 4 procs: shift 1 moves 4 elements off-proc = 32 bytes.
        let a = DistArray::<f64>::zeros(&ctx, &[16], &[PAR]);
        let _ = cshift(&ctx, &a, 0, 1);
        let snap = ctx.instr.comm_snapshot();
        let (key, stats) = snap.iter().next().unwrap();
        assert_eq!(key.pattern, CommPattern::Cshift);
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.offproc_bytes, 32);
    }

    #[test]
    fn serial_axis_shift_is_local() {
        let ctx = ctx(4);
        let a = DistArray::<f64>::zeros(&ctx, &[16], &[SER]);
        let _ = cshift(&ctx, &a, 0, 3);
        let snap = ctx.instr.comm_snapshot();
        let stats = snap.values().next().unwrap();
        assert_eq!(stats.offproc_bytes, 0);
        assert_eq!(stats.calls, 1);
    }

    #[test]
    fn full_cycle_shift_is_identity() {
        let ctx = ctx(2);
        let a = DistArray::<i32>::from_fn(&ctx, &[6], &[PAR], |i| i[0] as i32);
        assert_eq!(cshift(&ctx, &a, 0, 6).to_vec(), a.to_vec());
        assert_eq!(cshift(&ctx, &a, 0, 0).to_vec(), a.to_vec());
    }
}
