//! CSHIFT and EOSHIFT — the suite's most frequent communication pattern.
//!
//! A circular shift along a parallel axis moves the elements near each
//! block boundary to the neighbouring processor; along a serial axis it is
//! a local memory move and records no communication. Off-processor volume
//! is computed from the block map via
//! [`Layout::offproc_per_lane`](dpf_array::Layout::offproc_per_lane).
//! Under the SPMD backend the shifted lanes are assembled by each
//! destination worker pulling the boundary elements from the neighbouring
//! blocks' owners over the channels.

use crate::spmd::{pull_exec, Src};
use dpf_array::{DistArray, PAR_THRESHOLD};
use dpf_core::{CommPattern, Ctx, Elem};
use rayon::prelude::*;

/// Circular shift by `shift` along `axis`: `out[.., i, ..] = a[.., (i + shift) mod n, ..]`
/// (CMF/HPF convention: positive shift moves data toward lower indices).
pub fn cshift<T: Elem>(ctx: &Ctx, a: &DistArray<T>, axis: usize, shift: isize) -> DistArray<T> {
    record_shift(ctx, a, axis, shift, CommPattern::Cshift);
    let mut out = shifted(ctx, a, axis, shift, Boundary::Cyclic);
    ctx.faults.inject_slice("cshift", out.as_mut_slice());
    out
}

/// Like [`cshift`], but writing into an existing same-shaped array instead
/// of allocating. Records the identical communication event.
pub fn cshift_into<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    shift: isize,
    out: &mut DistArray<T>,
) {
    record_shift(ctx, a, axis, shift, CommPattern::Cshift);
    shifted_into(ctx, a, axis, shift, Boundary::Cyclic, out);
    ctx.faults.inject_slice("cshift", out.as_mut_slice());
}

/// End-off shift: elements shifted off the end are discarded and `fill`
/// enters from the other side.
pub fn eoshift<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    shift: isize,
    fill: T,
) -> DistArray<T> {
    record_shift(ctx, a, axis, shift, CommPattern::Eoshift);
    let mut out = shifted(ctx, a, axis, shift, Boundary::Fill(fill));
    ctx.faults.inject_slice("eoshift", out.as_mut_slice());
    out
}

/// Like [`eoshift`], but writing into an existing same-shaped array
/// instead of allocating. Records the identical communication event.
pub fn eoshift_into<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    shift: isize,
    fill: T,
    out: &mut DistArray<T>,
) {
    record_shift(ctx, a, axis, shift, CommPattern::Eoshift);
    shifted_into(ctx, a, axis, shift, Boundary::Fill(fill), out);
    ctx.faults.inject_slice("eoshift", out.as_mut_slice());
}

/// Record the analytic Cshift/Eoshift event for a shift of `a` — shared
/// with the fusing evaluator (`crate::fuse`), which must replay the exact
/// eager record for each deferred shift node.
pub(crate) fn record_shift<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    shift: isize,
    pattern: CommPattern,
) {
    let offproc = a.layout().offproc_per_lane(axis, shift) * a.layout().lanes(axis);
    ctx.record_comm(
        pattern,
        a.rank(),
        a.rank(),
        a.len() as u64,
        (offproc * T::DTYPE.size()) as u64,
    );
}

pub(crate) enum Boundary<T> {
    Cyclic,
    Fill(T),
}

fn shifted<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    shift: isize,
    boundary: Boundary<T>,
) -> DistArray<T> {
    // Every output lane is fully overwritten below, so a pooled scratch
    // buffer (possibly holding stale data) is safe.
    let mut out = DistArray::<T>::scratch(ctx, a.shape(), a.layout().axes());
    shifted_into(ctx, a, axis, shift, boundary, &mut out);
    out
}

pub(crate) fn shifted_into<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    shift: isize,
    boundary: Boundary<T>,
    out: &mut DistArray<T>,
) {
    assert!(
        axis < a.rank(),
        "shift axis {axis} out of rank {}",
        a.rank()
    );
    assert_eq!(a.shape(), out.shape(), "shift output shape mismatch");
    let shape = a.shape();
    let n = shape[axis];
    let inner: usize = shape[axis + 1..].iter().product();
    if ctx.spmd() && a.layout().procs_on(axis) > 1 && a.layout() == out.layout() {
        // Pull protocol: the owner of each output lane fetches its source
        // lane from the neighbouring block's owner.
        let out_layout = out.layout().clone();
        ctx.busy(|| {
            pull_exec(
                ctx,
                a.layout(),
                a.as_slice(),
                &out_layout,
                out.as_mut_slice(),
                &|flat| {
                    let o = flat / (n * inner);
                    let i = (flat / inner) % n;
                    let k = flat % inner;
                    let j = i as isize + shift;
                    match boundary {
                        Boundary::Cyclic => {
                            let j = j.rem_euclid(n as isize) as usize;
                            Src::Flat((o * n + j) * inner + k)
                        }
                        Boundary::Fill(fill) => {
                            if j < 0 || j >= n as isize {
                                Src::Fill(fill)
                            } else {
                                Src::Flat((o * n + j as usize) * inner + k)
                            }
                        }
                    }
                },
            );
        });
        return;
    }
    ctx.busy(|| {
        let src = a.as_slice();
        let dst = out.as_mut_slice();
        // View the array as [outer, n, inner]; a shift along `axis` copies
        // whole inner-contiguous lanes. Each output lane `(o, i)` is an
        // independent copy, so lanes parallelize directly.
        let copy_lane = |row: usize, d: &mut [T]| {
            let o = row / n;
            let i = row % n;
            let base = o * n * inner;
            let j = i as isize + shift;
            match boundary {
                Boundary::Cyclic => {
                    let j = j.rem_euclid(n as isize) as usize;
                    d.copy_from_slice(&src[base + j * inner..base + (j + 1) * inner]);
                }
                Boundary::Fill(fill) => {
                    if j < 0 || j >= n as isize {
                        d.fill(fill);
                    } else {
                        let j = j as usize;
                        d.copy_from_slice(&src[base + j * inner..base + (j + 1) * inner]);
                    }
                }
            }
        };
        // Splitting lanes across rayon only pays when there is more than
        // one worker thread; on a single-core host the parallel dispatch
        // overhead made cshift@65K ~0.74x of the seed loop (BENCH_1).
        if dst.len() >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
            dst.par_chunks_mut(inner.max(1))
                .enumerate()
                .for_each(|(row, d)| copy_lane(row, d));
        } else {
            dst.chunks_mut(inner.max(1))
                .enumerate()
                .for_each(|(row, d)| copy_lane(row, d));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpf_array::{PAR, SER};
    use dpf_core::Machine;

    fn ctx(p: usize) -> Ctx {
        Ctx::new(Machine::cm5(p))
    }

    #[test]
    fn cshift_1d_moves_toward_lower_indices() {
        let ctx = ctx(4);
        let a = DistArray::<i32>::from_fn(&ctx, &[5], &[PAR], |i| i[0] as i32);
        let s = cshift(&ctx, &a, 0, 1);
        assert_eq!(s.to_vec(), vec![1, 2, 3, 4, 0]);
        let s = cshift(&ctx, &a, 0, -1);
        assert_eq!(s.to_vec(), vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn cshift_2d_along_each_axis() {
        let ctx = ctx(4);
        let a = DistArray::<i32>::from_fn(&ctx, &[2, 3], &[PAR, PAR], |i| (i[0] * 3 + i[1]) as i32);
        let r = cshift(&ctx, &a, 1, 1);
        assert_eq!(r.to_vec(), vec![1, 2, 0, 4, 5, 3]);
        let c = cshift(&ctx, &a, 0, 1);
        assert_eq!(c.to_vec(), vec![3, 4, 5, 0, 1, 2]);
    }

    #[test]
    fn eoshift_fills_vacated_positions() {
        let ctx = ctx(4);
        let a = DistArray::<i32>::from_fn(&ctx, &[4], &[PAR], |i| i[0] as i32 + 1);
        let s = eoshift(&ctx, &a, 0, 1, -9);
        assert_eq!(s.to_vec(), vec![2, 3, 4, -9]);
        let s = eoshift(&ctx, &a, 0, -2, 0);
        assert_eq!(s.to_vec(), vec![0, 0, 1, 2]);
    }

    #[test]
    fn cshift_records_offproc_bytes() {
        let ctx = ctx(4);
        // 16 f64 over 4 procs: shift 1 moves 4 elements off-proc = 32 bytes.
        let a = DistArray::<f64>::zeros(&ctx, &[16], &[PAR]);
        let _ = cshift(&ctx, &a, 0, 1);
        let snap = ctx.instr.comm_snapshot();
        let (key, stats) = snap.iter().next().unwrap();
        assert_eq!(key.pattern, CommPattern::Cshift);
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.offproc_bytes, 32);
    }

    #[test]
    fn serial_axis_shift_is_local() {
        let ctx = ctx(4);
        let a = DistArray::<f64>::zeros(&ctx, &[16], &[SER]);
        let _ = cshift(&ctx, &a, 0, 3);
        let snap = ctx.instr.comm_snapshot();
        let stats = snap.values().next().unwrap();
        assert_eq!(stats.offproc_bytes, 0);
        assert_eq!(stats.calls, 1);
    }

    #[test]
    fn into_variants_match_allocating_and_record_identically() {
        let ctx_a = ctx(4);
        let ctx_b = ctx(4);
        let mk = |c: &Ctx| {
            DistArray::<i32>::from_fn(c, &[6, 5], &[PAR, PAR], |i| (i[0] * 5 + i[1]) as i32)
        };
        let a = mk(&ctx_a);
        let b = mk(&ctx_b);
        let expected_c = cshift(&ctx_a, &a, 1, 2);
        let expected_e = eoshift(&ctx_a, &a, 0, -1, -7);

        let mut out = DistArray::<i32>::zeros(&ctx_b, &[6, 5], &[PAR, PAR]);
        cshift_into(&ctx_b, &b, 1, 2, &mut out);
        assert_eq!(out.to_vec(), expected_c.to_vec());
        eoshift_into(&ctx_b, &b, 0, -1, -7, &mut out);
        assert_eq!(out.to_vec(), expected_e.to_vec());

        // Byte-identical communication records.
        assert_eq!(ctx_a.instr.comm_snapshot(), ctx_b.instr.comm_snapshot());
    }

    #[test]
    fn parallel_lane_path_matches_serial() {
        // Above PAR_THRESHOLD the lane loop runs under rayon; verify it
        // against the sub-threshold result on the same values.
        let ctx = ctx(4);
        let shape = [130, 131]; // 17_030 elements
        let a =
            DistArray::<i32>::from_fn(&ctx, &shape, &[PAR, PAR], |i| (i[0] * 131 + i[1]) as i32);
        for (axis, sh) in [(0usize, 3isize), (1, -2), (0, -129), (1, 131)] {
            let got = cshift(&ctx, &a, axis, sh);
            for probe in [(0usize, 0usize), (7, 99), (129, 130), (64, 1)] {
                let (i, j) = probe;
                let n = shape[axis] as isize;
                let mut src_idx = [i, j];
                src_idx[axis] = (src_idx[axis] as isize + sh).rem_euclid(n) as usize;
                assert_eq!(got.get(&[i, j]), a.get(&src_idx), "axis {axis} shift {sh}");
            }
        }
    }

    #[test]
    fn spmd_backend_matches_virtual_and_meters_traffic() {
        use dpf_core::Backend;
        let vctx = ctx(4);
        let sctx = Ctx::with_backend(Machine::cm5(4), Backend::Spmd);
        let mk = |c: &Ctx| {
            DistArray::<i32>::from_fn(c, &[6, 5], &[PAR, PAR], |i| (i[0] * 5 + i[1]) as i32)
        };
        let a = mk(&vctx);
        let b = mk(&sctx);
        for (axis, sh) in [(0usize, 1isize), (1, -2), (0, 7), (1, 0)] {
            assert_eq!(
                cshift(&sctx, &b, axis, sh).to_vec(),
                cshift(&vctx, &a, axis, sh).to_vec(),
                "axis {axis} shift {sh}"
            );
            assert_eq!(
                eoshift(&sctx, &b, axis, sh, -3).to_vec(),
                eoshift(&vctx, &a, axis, sh, -3).to_vec(),
            );
        }
        // Identical analytic records; real channel traffic only on spmd.
        assert_eq!(vctx.instr.comm_snapshot(), sctx.instr.comm_snapshot());
        assert_eq!(vctx.link.messages(), 0);
        assert!(sctx.link.payload_bytes() > 0);
    }

    #[test]
    fn full_cycle_shift_is_identity() {
        let ctx = ctx(2);
        let a = DistArray::<i32>::from_fn(&ctx, &[6], &[PAR], |i| i[0] as i32);
        assert_eq!(cshift(&ctx, &a, 0, 6).to_vec(), a.to_vec());
        assert_eq!(cshift(&ctx, &a, 0, 0).to_vec(), a.to_vec());
    }
}
