//! Parallel sort — the router-collision mitigation primitive.
//!
//! The paper's qptransport and pic-gather-scatter sort particles by their
//! destination cell so that a sum-scan can replace colliding router
//! traffic. On the CM-5 this was a sample/radix sort over the data
//! network; here the compute is a rayon parallel sort and the accounting
//! charges the classical all-to-all volume (every element may change
//! processor, `(p−1)/p` of them in expectation — we charge the exact
//! count by comparing owners of the initial and final positions).

use dpf_array::DistArray;
use dpf_core::{CommPattern, Ctx, Elem, Num};
use rayon::prelude::*;

/// Sort an `i32` key array ascending, carrying a payload permutation.
/// Returns `(sorted_keys, permutation)` where `permutation[k]` is the
/// original index of the `k`-th smallest key (ties broken by original
/// index, so the sort is stable).
pub fn sort_keys(ctx: &Ctx, keys: &DistArray<i32>) -> (DistArray<i32>, DistArray<i32>) {
    assert_eq!(keys.rank(), 1, "sort operates on 1-D arrays");
    let n = keys.len();
    let mut pairs: Vec<(i32, i32)> = ctx.busy(|| {
        keys.as_slice()
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as i32))
            .collect()
    });
    ctx.busy(|| {
        if n >= dpf_array::PAR_THRESHOLD {
            pairs.par_sort_unstable();
        } else {
            pairs.sort_unstable();
        }
    });
    let sorted = DistArray::<i32>::from_vec(
        ctx,
        keys.shape(),
        keys.layout().axes(),
        pairs.iter().map(|&(k, _)| k).collect(),
    );
    let perm = DistArray::<i32>::from_vec(
        ctx,
        keys.shape(),
        keys.layout().axes(),
        pairs.iter().map(|&(_, i)| i).collect(),
    );
    record_sort(ctx, keys, perm.as_slice());
    (sorted, perm)
}

/// Sort `f64` keys ascending (total order via `total_cmp`), returning the
/// sorted keys and the permutation.
pub fn sort_keys_f64(ctx: &Ctx, keys: &DistArray<f64>) -> (DistArray<f64>, DistArray<i32>) {
    assert_eq!(keys.rank(), 1, "sort operates on 1-D arrays");
    let n = keys.len();
    let mut pairs: Vec<(f64, i32)> = ctx.busy(|| {
        keys.as_slice()
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as i32))
            .collect()
    });
    ctx.busy(|| {
        let cmp = |a: &(f64, i32), b: &(f64, i32)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
        if n >= dpf_array::PAR_THRESHOLD {
            pairs.par_sort_unstable_by(cmp);
        } else {
            pairs.sort_unstable_by(cmp);
        }
    });
    let sorted = DistArray::<f64>::from_vec(
        ctx,
        keys.shape(),
        keys.layout().axes(),
        pairs.iter().map(|&(k, _)| k).collect(),
    );
    let perm = DistArray::<i32>::from_vec(
        ctx,
        keys.shape(),
        keys.layout().axes(),
        pairs.iter().map(|&(_, i)| i).collect(),
    );
    record_sort(ctx, keys, perm.as_slice());
    (sorted, perm)
}

/// Apply a permutation produced by [`sort_keys`] to a payload array
/// (local data motion already accounted by the sort itself).
pub fn apply_perm<T: Num>(ctx: &Ctx, a: &DistArray<T>, perm: &DistArray<i32>) -> DistArray<T> {
    assert_eq!(a.shape(), perm.shape(), "permutation shape mismatch");
    let mut out = DistArray::<T>::zeros(ctx, a.shape(), a.layout().axes());
    ctx.busy(|| {
        let src = a.as_slice();
        for (o, &p) in out.as_mut_slice().iter_mut().zip(perm.as_slice()) {
            *o = src[p as usize];
        }
    });
    out
}

fn record_sort<T: Elem>(ctx: &Ctx, keys: &DistArray<T>, perm: &[i32]) {
    let layout = keys.layout();
    let offproc = if layout.is_distributed() {
        perm.iter()
            .enumerate()
            .filter(|&(dst, &src)| layout.owner_id_flat(src as usize) != layout.owner_id_flat(dst))
            .count() as u64
    } else {
        0
    };
    ctx.record_comm(
        CommPattern::Sort,
        keys.rank(),
        keys.rank(),
        keys.len() as u64,
        offproc * T::DTYPE.size() as u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpf_array::PAR;
    use dpf_core::Machine;

    fn ctx(p: usize) -> Ctx {
        Ctx::new(Machine::cm5(p))
    }

    #[test]
    fn sort_orders_keys_and_returns_permutation() {
        let ctx = ctx(4);
        let keys = DistArray::<i32>::from_vec(&ctx, &[5], &[PAR], vec![3, 1, 4, 1, 5]);
        let (sorted, perm) = sort_keys(&ctx, &keys);
        assert_eq!(sorted.to_vec(), vec![1, 1, 3, 4, 5]);
        assert_eq!(perm.to_vec(), vec![1, 3, 0, 2, 4]);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Sort), 1);
    }

    #[test]
    fn permutation_carries_payload() {
        let ctx = ctx(2);
        let keys = DistArray::<i32>::from_vec(&ctx, &[4], &[PAR], vec![2, 0, 3, 1]);
        let vals = DistArray::<f64>::from_vec(&ctx, &[4], &[PAR], vec![20., 0., 30., 10.]);
        let (_, perm) = sort_keys(&ctx, &keys);
        let sorted_vals = apply_perm(&ctx, &vals, &perm);
        assert_eq!(sorted_vals.to_vec(), vec![0., 10., 20., 30.]);
    }

    #[test]
    fn float_sort_handles_negatives() {
        let ctx = ctx(2);
        let keys = DistArray::<f64>::from_vec(&ctx, &[4], &[PAR], vec![0.5, -1.5, 2.0, -0.1]);
        let (sorted, _) = sort_keys_f64(&ctx, &keys);
        assert_eq!(sorted.to_vec(), vec![-1.5, -0.1, 0.5, 2.0]);
    }

    #[test]
    fn already_sorted_array_moves_nothing() {
        let ctx = ctx(4);
        let keys = DistArray::<i32>::from_fn(&ctx, &[16], &[PAR], |i| i[0] as i32);
        let _ = sort_keys(&ctx, &keys);
        let snap = ctx.instr.comm_snapshot();
        assert_eq!(snap.values().next().unwrap().offproc_bytes, 0);
    }
}
