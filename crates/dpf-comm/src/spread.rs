//! SPREAD and broadcast — one-to-many replication.
//!
//! `SPREAD(a, dim, copies)` inserts a new axis and replicates the source
//! along it; the paper's md and n-body codes build their all-to-all
//! broadcast (AABC) from it, and jacobi/qmc use "1-D to 2-D Broadcasts" —
//! the same data motion under the language's broadcast-on-assignment
//! spelling. Both are provided, recording their respective patterns.
//!
//! Off-processor volume models a broadcast tree along the new axis's grid
//! dimension: `q − 1` copies of the source leave the owning processors.

use crate::spmd::{broadcast_scalar_exec, pull_exec, Src};
use dpf_array::{AxisKind, DistArray, Layout};
use dpf_core::{CommPattern, Ctx, Elem};

/// `SPREAD(a, dim=axis, ncopies)`: the result has a new axis of extent
/// `ncopies` (of the given kind) inserted at position `axis`.
pub fn spread<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    ncopies: usize,
    kind: AxisKind,
) -> DistArray<T> {
    replicate(ctx, a, axis, ncopies, kind, CommPattern::Spread)
}

/// Broadcast of a lower-rank array along a new axis — identical data
/// motion to [`spread`], recorded as the Broadcast pattern (the language
/// spelling `b(i, j) = a(j)`).
pub fn broadcast<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    ncopies: usize,
    kind: AxisKind,
) -> DistArray<T> {
    replicate(ctx, a, axis, ncopies, kind, CommPattern::Broadcast)
}

/// Broadcast a scalar to a full array shape.
pub fn broadcast_scalar<T: Elem>(
    ctx: &Ctx,
    value: T,
    shape: &[usize],
    axes: &[AxisKind],
) -> DistArray<T> {
    let out = if ctx.spmd() && Layout::new(&ctx.machine, shape, axes).is_distributed() {
        // Worker 0 ships the scalar to every block owner, which fills its
        // own blocks; every element is written, so scratch is safe.
        let mut out = DistArray::<T>::scratch(ctx, shape, axes);
        let layout = out.layout().clone();
        ctx.busy(|| broadcast_scalar_exec(ctx, &layout, value, out.as_mut_slice()));
        out
    } else {
        DistArray::<T>::full(ctx, shape, axes, value)
    };
    let procs: usize = (0..out.rank()).map(|d| out.layout().procs_on(d)).product();
    ctx.record_comm(
        CommPattern::Broadcast,
        0,
        out.rank(),
        out.len() as u64,
        ((procs.max(1) - 1) * T::DTYPE.size()) as u64,
    );
    out
}

fn replicate<T: Elem>(
    ctx: &Ctx,
    a: &DistArray<T>,
    axis: usize,
    ncopies: usize,
    kind: AxisKind,
    pattern: CommPattern,
) -> DistArray<T> {
    assert!(
        axis <= a.rank(),
        "spread position {axis} out of rank {}",
        a.rank()
    );
    assert!(ncopies > 0, "spread needs at least one copy");
    let mut shape = a.shape().to_vec();
    shape.insert(axis, ncopies);
    let mut axes = a.layout().axes().to_vec();
    axes.insert(axis, kind);
    let mut out = DistArray::<T>::zeros(ctx, &shape, &axes);
    let q = out.layout().procs_on(axis);
    ctx.record_comm(
        pattern,
        a.rank(),
        out.rank(),
        out.len() as u64,
        (a.len() * (q.max(1) - 1) * T::DTYPE.size()) as u64,
    );
    let outer: usize = a.shape()[..axis].iter().product();
    let inner: usize = a.shape()[axis..].iter().product();
    if ctx.spmd() && q > 1 {
        // Each owner of a replica block pulls the source row from its
        // owners; the copies themselves are what crosses the channels.
        let out_layout = out.layout().clone();
        ctx.busy(|| {
            pull_exec(
                ctx,
                a.layout(),
                a.as_slice(),
                &out_layout,
                out.as_mut_slice(),
                &|flat| {
                    let o = flat / (ncopies * inner);
                    let k = flat % inner;
                    Src::Flat(o * inner + k)
                },
            );
        });
    } else {
        ctx.busy(|| {
            let src = a.as_slice();
            let dst = out.as_mut_slice();
            // Result viewed as [outer, ncopies, inner]; source as [outer, inner].
            for o in 0..outer.max(1) {
                let s = &src[o * inner..(o + 1) * inner];
                for c in 0..ncopies {
                    let d0 = (o * ncopies + c) * inner;
                    dst[d0..d0 + inner].copy_from_slice(s);
                }
            }
        });
    }
    ctx.faults.inject_slice("spread", out.as_mut_slice());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpf_array::{PAR, SER};
    use dpf_core::Machine;

    fn ctx(p: usize) -> Ctx {
        Ctx::new(Machine::cm5(p))
    }

    #[test]
    fn spread_prepends_axis() {
        let ctx = ctx(4);
        let a = DistArray::<i32>::from_fn(&ctx, &[3], &[PAR], |i| i[0] as i32);
        let s = spread(&ctx, &a, 0, 2, PAR);
        assert_eq!(s.shape(), &[2, 3]);
        assert_eq!(s.to_vec(), vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn spread_appends_axis() {
        let ctx = ctx(4);
        let a = DistArray::<i32>::from_fn(&ctx, &[3], &[PAR], |i| i[0] as i32);
        let s = spread(&ctx, &a, 1, 2, SER);
        assert_eq!(s.shape(), &[3, 2]);
        assert_eq!(s.to_vec(), vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn spread_middle_axis_of_2d() {
        let ctx = ctx(2);
        let a = DistArray::<i32>::from_fn(&ctx, &[2, 2], &[PAR, PAR], |i| (i[0] * 2 + i[1]) as i32);
        let s = spread(&ctx, &a, 1, 3, PAR);
        assert_eq!(s.shape(), &[2, 3, 2]);
        assert_eq!(s.get(&[0, 0, 1]), 1);
        assert_eq!(s.get(&[0, 2, 1]), 1);
        assert_eq!(s.get(&[1, 2, 0]), 2);
    }

    #[test]
    fn patterns_are_labelled_distinctly() {
        let ctx = ctx(4);
        let a = DistArray::<f64>::zeros(&ctx, &[8], &[PAR]);
        let _ = spread(&ctx, &a, 0, 4, PAR);
        let _ = broadcast(&ctx, &a, 0, 4, PAR);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Spread), 1);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Broadcast), 1);
    }

    #[test]
    fn broadcast_scalar_fills() {
        let ctx = ctx(4);
        let b = broadcast_scalar(&ctx, 2.5f64, &[4, 4], &[PAR, PAR]);
        assert_eq!(b.to_vec(), vec![2.5; 16]);
        assert_eq!(ctx.instr.pattern_calls(CommPattern::Broadcast), 1);
    }
}
