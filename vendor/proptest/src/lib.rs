//! A vendored, dependency-free subset of
//! [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no registry access, so this shim implements
//! the slice of proptest this workspace uses: the `proptest!` macro with
//! `name in strategy` bindings, range strategies over the primitive
//! numeric types, `prop::collection::vec`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!` and `ProptestConfig::with_cases`.
//!
//! Semantics: each test runs `cases` random cases from a seed derived
//! deterministically from the test name, so failures reproduce across
//! runs. There is no shrinking — the failing inputs are printed instead.

/// Strategy trait: something that can draw a value from entropy.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value produced.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
            self.start + unit * (self.end - self.start)
        }
    }

    /// Strategy yielding a fixed value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a `Vec` with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element_strategy, len_range)` as in proptest.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Configuration for a property test (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; these properties run whole
            // instrumented benchmarks, so the vendored runner trims the
            // count to keep `cargo test` fast while still sweeping the
            // parameter space every run.
            Config { cases: 64 }
        }
    }

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically (callers derive the seed from the test
        /// name and case number so failures reproduce).
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// FNV-1a hash of a test name, for seeding.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fail the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}) at {}:{}",
                stringify!($a), stringify!($b), left, right, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}; {}) at {}:{}",
                stringify!($a), stringify!($b), left, right,
                format!($($fmt)*), file!(), line!()
            ));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}` (both: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                left,
                file!(),
                line!()
            ));
        }
    }};
}

/// Skip the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            // Vendored runner: an unmet assumption skips the case.
            return ::std::result::Result::Ok(());
        }
    };
}

/// The `proptest!` macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let seed = $crate::test_runner::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::new(
                    seed ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+), $(&$arg),+
                );
                let result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = result {
                    panic!(
                        "proptest case {}/{} failed with inputs [{}]: {}",
                        case + 1, cfg.cases, inputs, message
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..17, x in -4i32..9, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-4..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_strategy_obeys_len(keys in prop::collection::vec(-100i32..100, 1..80)) {
            prop_assert!(!keys.is_empty() && keys.len() < 80);
            for &k in &keys {
                prop_assert!((-100..100).contains(&k));
            }
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(n in 1usize..4) {
            prop_assert!(n >= 1);
        }
    }

    #[test]
    fn assertion_macros_return_err() {
        // The proptest! macro wraps bodies in a Result closure; exercise
        // the Err paths of the assertion macros directly.
        fn body(n: usize) -> Result<(), String> {
            prop_assert!(n > 100, "n was {}", n);
            Ok(())
        }
        let err = body(3).unwrap_err();
        assert!(err.contains("n > 100") && err.contains("n was 3"), "{err}");

        fn body_eq(a: i32, b: i32) -> Result<(), String> {
            prop_assert_eq!(a, b);
            Ok(())
        }
        assert!(body_eq(1, 2).unwrap_err().contains("left: 1"));
        assert!(body_eq(4, 4).is_ok());

        fn body_ne(a: i32, b: i32) -> Result<(), String> {
            prop_assert_ne!(a, b);
            Ok(())
        }
        assert!(body_ne(5, 5).is_err());
    }
}
