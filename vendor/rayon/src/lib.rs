//! A vendored, dependency-free subset of [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this repository has no access to the crates.io
//! registry, so the workspace ships the slice of rayon's API it actually
//! uses, implemented on `std::thread::scope`. Every parallel iterator here
//! is *indexed*: it has an exact length and can be split at an element
//! boundary, which is all the DPF runtime needs (element-wise maps, lane
//! chunks, zips and reductions over contiguous buffers).
//!
//! Execution model: a terminal operation splits the iterator into one
//! piece per available core and runs each piece on a scoped thread, so
//! borrowed data (slices, closures) works exactly as with real rayon.
//! There is no work stealing; DPF's hot loops are uniform-cost, so even
//! splits lose little to imbalance.

use std::sync::Arc;

/// `use rayon::prelude::*` — the traits that put `par_iter` & friends in
/// scope, mirroring rayon's prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads a terminal operation fans out to.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// An indexed parallel iterator: exact length, splittable at any element
/// boundary, convertible into a sequential iterator for per-thread drive.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;
    /// The sequential iterator a piece lowers to.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of elements.
    fn pi_len(&self) -> usize;
    /// Split into `[0, mid)` and `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Lower to a sequential iterator over all remaining elements.
    fn into_seq(self) -> Self::Seq;

    /// Map each element through `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync + Send>(self, f: F) -> Map<Self, F> {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Pair with another indexed iterator (length = the shorter).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Attach the element index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Run `op` on every element in parallel.
    fn for_each<OP: Fn(Self::Item) + Sync + Send>(self, op: OP) {
        let op = &op;
        run_pieces(self, |piece| piece.into_seq().for_each(op));
    }

    /// Collect into a container (only `Vec<Item>` is supported, matching
    /// every use in this workspace).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Fold each piece sequentially and combine piece results with `op`,
    /// seeded by `identity` (rayon's signature).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        let parts = run_pieces(self, |piece| piece.into_seq().fold(identity(), &op));
        parts.into_iter().fold(identity(), op)
    }

    /// Sum all elements.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        run_pieces(self, |piece| piece.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }
}

/// Conversion into a parallel iterator (`(0..n).into_par_iter()`).
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

/// `&[T]` parallel views.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> Iter<'_, T>;
    /// Parallel iterator over non-overlapping `chunk_size` chunks.
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Iter<'_, T> {
        Iter { slice: self }
    }
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        Chunks {
            slice: self,
            size: chunk_size,
        }
    }
}

/// `&mut [T]` parallel views and parallel sorts.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
    /// Parallel unstable sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Copy;
    /// Parallel unstable sort with a comparator.
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        T: Copy,
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync + Send;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Copy,
    {
        par_merge_sort(self, &|a, b| a.cmp(b));
    }
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        T: Copy,
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync + Send,
    {
        par_merge_sort(self, &cmp);
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over `&T` (see [`ParallelSlice::par_iter`]).
pub struct Iter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(mid);
        (Iter { slice: a }, Iter { slice: b })
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// Parallel iterator over `&mut T` (see [`ParallelSliceMut::par_iter_mut`]).
pub struct IterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(mid);
        (IterMut { slice: a }, IterMut { slice: b })
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

/// Parallel iterator over `&[T]` chunks.
pub struct Chunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;
    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let elems = (mid * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(elems);
        (
            Chunks {
                slice: a,
                size: self.size,
            },
            Chunks {
                slice: b,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.size)
    }
}

/// Parallel iterator over `&mut [T]` chunks.
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;
    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let elems = (mid * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(elems);
        (
            ChunksMut {
                slice: a,
                size: self.size,
            },
            ChunksMut {
                slice: b,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.size)
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct RangeIter {
    range: std::ops::Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    type Seq = std::ops::Range<usize>;
    fn pi_len(&self) -> usize {
        self.range.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let split = self.range.start + mid;
        (
            RangeIter {
                range: self.range.start..split,
            },
            RangeIter {
                range: split..self.range.end,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.range
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Map adapter (the closure is shared between split pieces via `Arc`).
pub struct Map<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;
    type Seq = MapSeq<I::Seq, F>;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }
    fn into_seq(self) -> Self::Seq {
        MapSeq {
            base: self.base.into_seq(),
            f: self.f,
        }
    }
}

/// Sequential side of [`Map`].
pub struct MapSeq<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S: Iterator, R, F: Fn(S::Item) -> R> Iterator for MapSeq<S, F> {
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.base.next().map(|x| (self.f)(x))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

/// Zip adapter.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;
    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(mid);
        let (b1, b2) = self.b.split_at(mid);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Enumerate adapter (pieces carry their global base offset).
pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type Seq = EnumerateSeq<I::Seq>;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + mid,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            base: self.base.into_seq(),
            next: self.offset,
        }
    }
}

/// Sequential side of [`Enumerate`].
pub struct EnumerateSeq<S> {
    base: S,
    next: usize,
}

impl<S: Iterator> Iterator for EnumerateSeq<S> {
    type Item = (usize, S::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let x = self.base.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, x))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Split `it` into roughly even pieces (one per core) and run `f` on each
/// piece, the last inline on the calling thread. Results come back in
/// piece order.
fn run_pieces<I, R, F>(it: I, f: F) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = it.pi_len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 {
        return vec![f(it)];
    }
    let pieces = split_into(it, threads);
    let f = &f;
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(pieces.len(), || None);
    std::thread::scope(|s| {
        let mut pieces = pieces.into_iter().zip(results.iter_mut());
        // Keep one piece for the calling thread.
        let (last_piece, last_slot) = pieces.next_back().expect("at least one piece");
        for (piece, slot) in pieces {
            s.spawn(move || *slot = Some(f(piece)));
        }
        *last_slot = Some(f(last_piece));
    });
    results.into_iter().map(|r| r.expect("piece ran")).collect()
}

/// Split into exactly `k` pieces of near-equal length (k >= 1, len >= k).
fn split_into<I: ParallelIterator>(it: I, k: usize) -> Vec<I> {
    let mut pieces = Vec::with_capacity(k);
    let mut rest = it;
    for i in 0..k - 1 {
        let remaining = rest.pi_len();
        let take = remaining.div_ceil(k - i);
        let (head, tail) = rest.split_at(take);
        pieces.push(head);
        rest = tail;
    }
    pieces.push(rest);
    pieces
}

/// Containers a parallel iterator can collect into.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the container from the iterator.
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self {
        let n = it.pi_len();
        let mut out: Vec<T> = Vec::with_capacity(n);
        {
            // Each piece writes its exact-length window of the spare
            // capacity; windows are disjoint, so threads never alias.
            let spare = &mut out.spare_capacity_mut()[..n];
            let threads = current_num_threads().min(n.max(1));
            if threads <= 1 {
                let mut written = 0usize;
                for (slot, v) in spare.iter_mut().zip(it.into_seq()) {
                    slot.write(v);
                    written += 1;
                }
                assert_eq!(written, n, "parallel iterator under-produced");
            } else {
                let pieces = split_into(it, threads);
                std::thread::scope(|s| {
                    let mut spare = &mut *spare;
                    let mut handles = Vec::new();
                    for piece in pieces {
                        let (window, rest) = spare.split_at_mut(piece.pi_len());
                        spare = rest;
                        handles.push(s.spawn(move || {
                            let mut written = 0usize;
                            for (slot, v) in window.iter_mut().zip(piece.into_seq()) {
                                slot.write(v);
                                written += 1;
                            }
                            assert_eq!(written, window.len(), "parallel iterator under-produced");
                        }));
                    }
                    for h in handles {
                        h.join().expect("collect worker panicked");
                    }
                });
            }
        }
        // SAFETY: every slot in [0, n) was written exactly once (asserted
        // per piece above) and the scope joined all writers.
        unsafe { out.set_len(n) };
        out
    }
}

// ---------------------------------------------------------------------------
// Parallel sort
// ---------------------------------------------------------------------------

/// Sort by parallel chunk sorts followed by rounds of pairwise merges.
/// `T: Copy` keeps the merge buffers trivial — every call site in this
/// workspace sorts `(key, index)` pairs.
fn par_merge_sort<T, F>(v: &mut [T], cmp: &F)
where
    T: Copy + Send,
    F: Fn(&T, &T) -> std::cmp::Ordering + Sync + Send,
{
    let n = v.len();
    let threads = current_num_threads();
    if n < 8192 || threads <= 1 {
        v.sort_unstable_by(cmp);
        return;
    }
    // Sort one chunk per thread in parallel.
    let chunk = n.div_ceil(threads);
    {
        let mut runs: Vec<&mut [T]> = v.chunks_mut(chunk).collect();
        std::thread::scope(|s| {
            let last = runs.pop().expect("at least one run");
            for run in runs {
                s.spawn(move || run.sort_unstable_by(cmp));
            }
            last.sort_unstable_by(cmp);
        });
    }
    // Merge sorted runs pairwise until one remains.
    let mut width = chunk;
    let mut buf: Vec<T> = Vec::with_capacity(n);
    while width < n {
        buf.clear();
        {
            let mut src = &v[..];
            while !src.is_empty() {
                let a_len = width.min(src.len());
                let b_len = width.min(src.len() - a_len);
                let (a, rest) = src.split_at(a_len);
                let (b, rest) = rest.split_at(b_len);
                merge_into(a, b, &mut buf, cmp);
                src = rest;
            }
        }
        v.copy_from_slice(&buf);
        width *= 2;
    }
}

fn merge_into<T: Copy, F: Fn(&T, &T) -> std::cmp::Ordering>(
    a: &[T],
    b: &[T],
    out: &mut Vec<T>,
    cmp: &F,
) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(&a[i], &b[j]) != std::cmp::Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..100_000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out.len(), 100_000);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i * 2);
        }
    }

    #[test]
    fn zip_enumerate_for_each_writes_every_slot() {
        let a: Vec<u64> = (0..50_000).collect();
        let mut out = vec![0u64; 50_000];
        out.par_iter_mut()
            .zip(a.par_iter())
            .enumerate()
            .for_each(|(i, (o, &x))| *o = x + i as u64);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, 2 * i as u64);
        }
    }

    #[test]
    fn chunks_cover_exactly() {
        let v: Vec<u32> = (0..10_001).collect();
        let total: u32 = v.par_chunks(97).map(|c| c.len() as u32).sum();
        assert_eq!(total, 10_001);
    }

    #[test]
    fn reduce_matches_serial() {
        let v: Vec<u64> = (1..=200_000).collect();
        let s = v
            .par_chunks(4096)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 200_000u64 * 200_001 / 2);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (10..20usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, (10..20usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_sort_sorts() {
        let mut v: Vec<(i32, i32)> = (0..100_000).map(|i| (i * 7919 % 1000 - 500, i)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        v.par_sort_unstable();
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut back: Vec<i32> = v.iter().map(|p| p.1).collect();
        back.sort_unstable();
        assert_eq!(back, (0..100_000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let v: Vec<i32> = vec![];
        let out: Vec<i32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [42i32];
        let out: Vec<i32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![43]);
    }
}
