//! A vendored, dependency-free subset of
//! [parking_lot](https://crates.io/crates/parking_lot) over `std::sync`.
//!
//! The build environment has no registry access, so this shim provides the
//! `Mutex`/`RwLock` API shape parking_lot exposes (guards without
//! `Result`, poison-free semantics) on top of the standard library. A
//! poisoned std lock simply yields the inner guard, matching parking_lot's
//! behaviour of not poisoning.

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock (no poisoning: a panicked holder does not make the
    /// data unreachable).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
