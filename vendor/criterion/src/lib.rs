//! A vendored, dependency-free subset of
//! [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no registry access, so this shim implements
//! the harness surface the workspace's benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!`
//! / `criterion_main!` macros.
//!
//! Measurement model: per benchmark, calibrate the iteration count to a
//! target sample time, run warmup, then collect `sample_size` timed
//! samples and report the median ns/iter. Besides the human-readable
//! line, each result is emitted as a `CRITERION_JSON {...}` stdout line
//! so scripts can assemble machine-readable snapshots (see
//! `scripts/bench_snapshot.sh`).

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("cshift", 1_000_000)` → `cshift/1000000`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Throughput annotation (recorded, used to derive elements/sec).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`, keeping each result opaque.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Real criterion defaults to 100 samples / 5s targets; the
            // vendored harness trims both so the full suite stays fast
            // while medians remain stable on an idle machine.
            sample_size: 15,
            target_sample_time: Duration::from_millis(25),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            target_sample_time: None,
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        let time = self.target_sample_time;
        run_benchmark(id, sample_size, time, None, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    target_sample_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Target wall time per sample.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.target_sample_time = Some(d);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<I: IntoBenchId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_benchmark(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.target_sample_time
                .unwrap_or(self.criterion.target_sample_time),
            self.throughput,
            f,
        );
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (report nothing extra; results already printed).
    pub fn finish(self) {}
}

/// Things accepted as a benchmark id within a group.
pub trait IntoBenchId {
    /// Render as the id path segment.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.full
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    target_sample_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: grow the iteration count until one sample takes at least
    // the target time (or a single iteration already exceeds it).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target_sample_time || iters >= 1 << 24 {
            break;
        }
        let factor = if b.elapsed.is_zero() {
            8.0
        } else {
            (target_sample_time.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.2, 8.0)
        };
        iters = ((iters as f64 * factor).ceil() as u64).max(iters + 1);
    }

    // Warmup once at the calibrated count, then collect timed samples.
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size.max(1));
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_secs_f64() * 1e9 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let min = per_iter_ns[0];
    let max = per_iter_ns[per_iter_ns.len() - 1];

    let (tp_str, tp_json) = match throughput {
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 * 1e9 / median;
            (
                format!("  thrpt: {:>11} elem/s", format_count(eps)),
                format!(",\"elements\":{n},\"elem_per_sec\":{eps:.1}"),
            )
        }
        Some(Throughput::Bytes(n)) => {
            let bps = n as f64 * 1e9 / median;
            (
                format!("  thrpt: {:>11} B/s", format_count(bps)),
                format!(",\"bytes\":{n},\"bytes_per_sec\":{bps:.1}"),
            )
        }
        None => (String::new(), String::new()),
    };

    println!(
        "{id:<48} time: [{} {} {}]{tp_str}",
        format_ns(min),
        format_ns(median),
        format_ns(max)
    );
    println!(
        "CRITERION_JSON {{\"id\":\"{id}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\
         \"max_ns\":{max:.1},\"iters\":{iters},\"samples\":{}{tp_json}}}",
        per_iter_ns.len()
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn format_count(x: f64) -> String {
    if x < 1e3 {
        format!("{x:.1}")
    } else if x < 1e6 {
        format!("{:.2}K", x / 1e3)
    } else if x < 1e9 {
        format!("{:.2}M", x / 1e6)
    } else {
        format!("{:.2}G", x / 1e9)
    }
}

/// Declare a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Generated benchmark group runner.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main`, as in real criterion. CLI arguments from
/// `cargo bench` (e.g. `--bench`) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            target_sample_time: Duration::from_micros(200),
        };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).throughput(Throughput::Elements(128));
        let data: Vec<u64> = (0..128).collect();
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher {
            iters: 1000,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.elapsed > Duration::ZERO || b.iters == 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("map", 4096).into_bench_id(), "map/4096");
        assert_eq!(BenchmarkId::from_parameter(7).into_bench_id(), "7");
    }
}
