//! A vendored, dependency-free subset of [rand](https://crates.io/crates/rand).
//!
//! The build environment has no registry access; this shim provides the
//! `SmallRng`/`SeedableRng`/`Rng::gen_range` surface the workspace uses,
//! backed by the SplitMix64 + xoshiro256** generators (the same family
//! real `SmallRng` uses on 64-bit targets). Not cryptographically secure —
//! exactly like the real `SmallRng`.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of the `Rng` trait the workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<std::ops::Range<T>>,
        Self: Sized,
    {
        let r: std::ops::Range<T> = range.into();
        T::sample(self, r)
    }

    /// Uniform sample of the full type (bool, f64 in [0,1), ints).
    fn gen<T: SampleFull>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_full(self)
    }
}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    /// Small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand_xoshiro does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_u64(seed)
        }
    }
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `range`.
    fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is < 2^-64 for the spans this suite uses.
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        range.start + unit * (range.end - range.start)
    }
}

/// Types `gen` can produce over their full domain.
pub trait SampleFull {
    /// Sample the full domain (floats: `[0, 1)`).
    fn sample_full<R: Rng>(rng: &mut R) -> Self;
}

impl SampleFull for f64 {
    fn sample_full<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleFull for bool {
    fn sample_full<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleFull for u64 {
    fn sample_full<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&x));
            let k: i32 = r.gen_range(-5..17);
            assert!((-5..17).contains(&k));
            let u: usize = r.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut r = SmallRng::seed_from_u64(42);
        let mean: f64 = (0..100_000).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / 1e5;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
