//! Hot-path microbenchmarks: the optimized primitives against inline
//! seed-equivalent baselines.
//!
//! Each operation is measured two ways at three sizes:
//!
//! * `new`  — the current library path (chunked index decoding, pooled
//!   output buffers, lane-parallel loops).
//! * `seed` — a faithful inline copy of the pre-optimization
//!   implementation (per-element [`unflatten`] heap allocation, serial
//!   lane loops, fresh zeroed output buffers, per-element owner-id
//!   comparisons).
//!
//! The seed variants are kept inline because this build environment
//! cannot check out and build the seed commit side by side; the code is
//! transcribed from it. `scripts/bench_snapshot.sh` runs this harness and
//! assembles the `CRITERION_JSON` lines into `BENCH_1.json`, including
//! per-op seed/new throughput ratios.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpf_array::{unflatten, DistArray, Expr, MAX_RANK, PAR};
use dpf_comm::{cshift, fuse, gather, star_stencil, stencil_into, StencilBoundary, StencilPoint};
use dpf_core::{Ctx, Machine};
use rayon::prelude::*;

fn ctx() -> Ctx {
    Ctx::new(Machine::cm5(4))
}

/// Benchmark element counts: 64K, 1M, 4M.
const SIZES: [usize; 3] = [1 << 16, 1 << 20, 1 << 22];

/// Square side per size (all sizes are powers of four).
fn side(len: usize) -> usize {
    let s = (len as f64).sqrt() as usize;
    assert_eq!(s * s, len);
    s
}

// ---------------------------------------------------------------- map --

/// Seed `map`: rayon above the threshold, but collecting into a freshly
/// allocated vector every call.
fn seed_map(a: &DistArray<f64>) -> Vec<f64> {
    if a.len() >= dpf_array::PAR_THRESHOLD {
        a.as_slice().par_iter().map(|&x| 1.5 * x + 0.5).collect()
    } else {
        a.as_slice().iter().map(|&x| 1.5 * x + 0.5).collect()
    }
}

fn bench_map(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("map");
    for &n in &SIZES {
        let a = DistArray::<f64>::from_fn(&ctx, &[n], &[PAR], |i| i[0] as f64);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("new", n), &n, |b, _| {
            b.iter(|| {
                let r = a.map(&ctx, 2, |x| 1.5 * x + 0.5);
                let probe = r.as_slice()[n / 2];
                r.recycle(&ctx);
                black_box(probe)
            })
        });
        g.bench_with_input(BenchmarkId::new("seed", n), &n, |b, _| {
            b.iter(|| {
                let r = seed_map(&a);
                black_box(r[n / 2])
            })
        });
    }
    g.finish();
}

// ------------------------------------------------------------- cshift --

/// Seed `cshift` data movement: serial lane loop into a zeroed output.
fn seed_cshift(ctx: &Ctx, a: &DistArray<f64>, axis: usize, shift: isize) -> DistArray<f64> {
    let shape = a.shape().to_vec();
    let n = shape[axis];
    let outer: usize = shape[..axis].iter().product();
    let inner: usize = shape[axis + 1..].iter().product();
    let mut out = DistArray::<f64>::zeros(ctx, &shape, a.layout().axes());
    let src = a.as_slice();
    let dst = out.as_mut_slice();
    for o in 0..outer {
        let base = o * n * inner;
        for i in 0..n {
            let j = (i as isize + shift).rem_euclid(n as isize) as usize;
            let d0 = base + i * inner;
            let s0 = base + j * inner;
            dst[d0..d0 + inner].copy_from_slice(&src[s0..s0 + inner]);
        }
    }
    out
}

fn bench_cshift(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("cshift");
    for &n in &SIZES {
        let s = side(n);
        let a = DistArray::<f64>::from_fn(&ctx, &[s, s], &[PAR, PAR], |i| (i[0] * s + i[1]) as f64);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("new", n), &n, |b, _| {
            b.iter(|| {
                let r = cshift(&ctx, &a, 0, 1);
                let probe = r.as_slice()[n / 2];
                r.recycle(&ctx);
                black_box(probe)
            })
        });
        g.bench_with_input(BenchmarkId::new("seed", n), &n, |b, _| {
            b.iter(|| {
                let r = seed_cshift(&ctx, &a, 0, 1);
                black_box(r.as_slice()[n / 2])
            })
        });
    }
    g.finish();
}

// ------------------------------------------------------------ permute --

/// Seed `permute`: serial, with a heap-allocated `unflatten` vector per
/// element.
fn seed_permute(a: &DistArray<f64>, order: &[usize]) -> Vec<f64> {
    let new_shape: Vec<usize> = order.iter().map(|&d| a.shape()[d]).collect();
    let old_strides = a.layout().strides();
    let strides_in_new_order: Vec<usize> = order.iter().map(|&d| old_strides[d]).collect();
    let mut data = vec![0.0f64; a.len()];
    for (flat_new, slot) in data.iter_mut().enumerate() {
        let idx_new = unflatten(flat_new, &new_shape);
        let mut flat_old = 0;
        for d in 0..idx_new.len() {
            flat_old += idx_new[d] * strides_in_new_order[d];
        }
        *slot = a.as_slice()[flat_old];
    }
    data
}

fn bench_permute(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("permute");
    for &n in &SIZES {
        let s = side(n);
        let a = DistArray::<f64>::from_fn(&ctx, &[s, s], &[PAR, PAR], |i| (i[0] * s + i[1]) as f64);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("new", n), &n, |b, _| {
            b.iter(|| {
                let r = a.permute(&ctx, &[1, 0]);
                let probe = r.as_slice()[n / 2];
                r.recycle(&ctx);
                black_box(probe)
            })
        });
        g.bench_with_input(BenchmarkId::new("seed", n), &n, |b, _| {
            b.iter(|| {
                let r = seed_permute(&a, &[1, 0]);
                black_box(r[n / 2])
            })
        });
    }
    g.finish();
}

// ------------------------------------------------------- indexed_fill --

/// Seed `indexed_fill`: rayon above the threshold, but with a
/// heap-allocated `unflatten` vector per element.
fn seed_indexed_fill(data: &mut [f64], shape: &[usize]) {
    if data.len() >= dpf_array::PAR_THRESHOLD {
        data.par_iter_mut().enumerate().for_each(|(flat, x)| {
            let idx = unflatten(flat, shape);
            *x = (idx[0] + 2 * idx[1]) as f64;
        });
    } else {
        data.iter_mut().enumerate().for_each(|(flat, x)| {
            let idx = unflatten(flat, shape);
            *x = (idx[0] + 2 * idx[1]) as f64;
        });
    }
}

fn bench_indexed_fill(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("indexed_fill");
    for &n in &SIZES {
        let s = side(n);
        let mut a = DistArray::<f64>::zeros(&ctx, &[s, s], &[PAR, PAR]);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("new", n), &n, |b, _| {
            b.iter(|| {
                a.indexed_fill(&ctx, 2, |idx| (idx[0] + 2 * idx[1]) as f64);
                black_box(a.as_slice()[n / 2])
            })
        });
        let shape = vec![s, s];
        let mut raw = vec![0.0f64; n];
        g.bench_with_input(BenchmarkId::new("seed", n), &n, |b, _| {
            b.iter(|| {
                seed_indexed_fill(&mut raw, &shape);
                black_box(raw[n / 2])
            })
        });
    }
    g.finish();
}

// ------------------------------------------------------------- gather --

/// Seed `gather`: serial per-element owner-id comparison for the
/// off-processor count, a zeroed output, then a serial copy loop.
fn seed_gather(ctx: &Ctx, src: &DistArray<f64>, idx: &DistArray<i32>) -> DistArray<f64> {
    let n = src.shape()[0] as i32;
    let mut out = DistArray::<f64>::zeros(ctx, idx.shape(), idx.layout().axes());
    let sl = src.layout();
    let dl = out.layout().clone();
    let offproc = if sl.is_distributed() || dl.is_distributed() {
        idx.as_slice()
            .iter()
            .enumerate()
            .filter(|&(d, &s)| {
                assert!(s >= 0 && s < n, "gather index {s} out of bounds {n}");
                sl.owner_id_flat(s as usize) != dl.owner_id_flat(d)
            })
            .count() as u64
    } else {
        0
    };
    black_box(offproc);
    let s = src.as_slice();
    for (o, &i) in out.as_mut_slice().iter_mut().zip(idx.as_slice()) {
        *o = s[i as usize];
    }
    out
}

fn bench_gather(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("gather");
    for &n in &SIZES {
        let src = DistArray::<f64>::from_fn(&ctx, &[n], &[PAR], |i| i[0] as f64);
        let idx =
            DistArray::<i32>::from_fn(&ctx, &[n], &[PAR], |i| ((i[0] * 7919 + 13) % n) as i32);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("new", n), &n, |b, _| {
            b.iter(|| {
                let r = gather(&ctx, &src, &idx);
                let probe = r.as_slice()[n / 2];
                r.recycle(&ctx);
                black_box(probe)
            })
        });
        g.bench_with_input(BenchmarkId::new("seed", n), &n, |b, _| {
            b.iter(|| {
                let r = seed_gather(&ctx, &src, &idx);
                black_box(r.as_slice()[n / 2])
            })
        });
    }
    g.finish();
}

// ------------------------------------------------------- star_stencil --

/// Seed stencil host loop: per-element multi-index decode and per-point
/// wrap handling for *every* element, transcribed from the pre-split
/// `stencil_into` host branch (boundary and interior took the same path).
fn seed_star_stencil(a: &DistArray<f64>, points: &[StencilPoint<f64>], out: &mut [f64]) {
    let shape = a.shape();
    let rank = shape.len();
    let strides = a.layout().strides().to_vec();
    let src = a.as_slice();
    let apply = |flat: usize, slot: &mut f64| {
        let mut idx = [0usize; MAX_RANK];
        let mut rem = flat;
        for d in (0..rank).rev() {
            idx[d] = rem % shape[d];
            rem /= shape[d];
        }
        let mut acc = 0.0;
        for p in points {
            let mut off = 0usize;
            for d in 0..rank {
                let j = idx[d] as isize + p.offset[d];
                let j = if j < 0 || j >= shape[d] as isize {
                    j.rem_euclid(shape[d] as isize) as usize
                } else {
                    j as usize
                };
                off += j * strides[d];
            }
            acc += p.weight * src[off];
        }
        *slot = acc;
    };
    if out.len() >= dpf_array::PAR_THRESHOLD {
        out.par_iter_mut()
            .enumerate()
            .for_each(|(flat, slot)| apply(flat, slot));
    } else {
        out.iter_mut()
            .enumerate()
            .for_each(|(flat, slot)| apply(flat, slot));
    }
}

fn bench_star_stencil(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("star_stencil");
    let points = star_stencil(2, -4.0, 1.0);
    for &n in &SIZES {
        let s = side(n);
        let a = DistArray::<f64>::from_fn(&ctx, &[s, s], &[PAR, PAR], |i| (i[0] * s + i[1]) as f64);
        let mut out = DistArray::<f64>::zeros(&ctx, &[s, s], &[PAR, PAR]);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("new", n), &n, |b, _| {
            b.iter(|| {
                stencil_into(&ctx, &a, &points, StencilBoundary::Cyclic, &mut out);
                black_box(out.as_slice()[n / 2])
            })
        });
        let mut raw = vec![0.0f64; n];
        g.bench_with_input(BenchmarkId::new("seed", n), &n, |b, _| {
            b.iter(|| {
                seed_star_stencil(&a, &points, &mut raw);
                black_box(raw[n / 2])
            })
        });
    }
    g.finish();
}

// --------------------------------------------------------- fused_diff1 --

/// Seed 1-D diffusion step: the pre-fusion eager composition — two
/// whole-array CSHIFT temporaries plus three full elementwise passes,
/// each materializing a pooled intermediate.
fn seed_diff1(ctx: &Ctx, u: &DistArray<f64>, k: f64, out: &mut DistArray<f64>) {
    let up = cshift(ctx, u, 0, 1);
    let um = cshift(ctx, u, 0, -1);
    let sum = up.zip_map(ctx, 1, &um, |a, b| a + b);
    let lap = sum.zip_map(ctx, 2, u, |s, x| s - 2.0 * x);
    u.zip_map_into(ctx, 2, &lap, out, move |x, l| x + k * l);
    up.recycle(ctx);
    um.recycle(ctx);
    sum.recycle(ctx);
    lap.recycle(ctx);
}

fn bench_fused_diff1(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("fused_diff1");
    let k = 0.1;
    for &n in &SIZES {
        let u = DistArray::<f64>::from_fn(&ctx, &[n], &[PAR], |i| (i[0] % 101) as f64 * 0.01);
        let mut out = DistArray::<f64>::zeros(&ctx, &[n], &[PAR]);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("new", n), &n, |b, _| {
            b.iter(|| {
                let e = Expr::leaf(&u)
                    .shift(0, 1)
                    .zip(Expr::leaf(&u).shift(0, -1), 1, |a, b| a + b)
                    .zip(Expr::leaf(&u), 2, |s, x| s - 2.0 * x)
                    .zip(Expr::leaf(&u), 2, move |l, x| x + k * l);
                fuse::eval_into(&ctx, &e, &mut out);
                black_box(out.as_slice()[n / 2])
            })
        });
        g.bench_with_input(BenchmarkId::new("seed", n), &n, |b, _| {
            b.iter(|| {
                seed_diff1(&ctx, &u, k, &mut out);
                black_box(out.as_slice()[n / 2])
            })
        });
    }
    g.finish();
}

criterion_group!(
    hotpath,
    bench_map,
    bench_cshift,
    bench_permute,
    bench_indexed_fill,
    bench_gather,
    bench_star_stencil,
    bench_fused_diff1
);
criterion_main!(hotpath);
