//! A plasma-in-a-box scenario on the two PIC implementations.
//!
//! The paper ships a straightforward PIC (`pic-simple`: colliding
//! deposits + spectral field solve) and a sophisticated one
//! (`pic-gather-scatter`: sort + segmented scan + collision-free router
//! traffic). This example runs a clustered plasma through both deposit
//! strategies and shows why the second exists: identical grids, very
//! different router collision profiles.
//!
//! Run with: `cargo run --release --example plasma_pic`

use dpf::apps::{pic_gather_scatter, pic_simple};
use dpf::core::{Ctx, Machine};

fn main() {
    let machine = Machine::cm5(32);

    // --- pic-simple: full field-solve loop --------------------------------
    let ctx = Ctx::new(machine.clone());
    let p = pic_simple::Params {
        np: 4096,
        ng: 64,
        dt: 0.05,
        steps: 8,
    };
    let (_, verify) = pic_simple::run(&ctx, &p);
    println!(
        "pic-simple: {} particles on a {}x{} grid, {} steps",
        p.np, p.ng, p.ng, p.steps
    );
    println!("  verification : {verify}");
    println!("  FLOPs        : {}", ctx.instr.flops());
    for (key, stats) in ctx.instr.comm_snapshot() {
        println!(
            "  {:<26} {:>6} calls {:>12} off-proc bytes",
            key.to_string(),
            stats.calls,
            stats.offproc_bytes
        );
    }

    // --- pic-gather-scatter: the collision-free deposit -------------------
    let ctx = Ctx::new(machine);
    let p = pic_gather_scatter::Params {
        np: 4096,
        ng: 8,
        steps: 8,
    };
    let (grid, verify) = pic_gather_scatter::run(&ctx, &p);
    let hottest = grid.as_slice().iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\npic-gather-scatter: {} clustered particles into {}^3 cells, {} rounds",
        p.np, p.ng, p.steps
    );
    println!("  verification : {verify}");
    println!("  hottest cell : {hottest:.1} units of charge");
    for (key, stats) in ctx.instr.comm_snapshot() {
        println!(
            "  {:<26} {:>6} calls {:>12} off-proc bytes",
            key.to_string(),
            stats.calls,
            stats.offproc_bytes
        );
    }
    println!(
        "\nHalf the particles pile into 1/16th of the box, yet the sorted\n\
         pipeline's scatter writes at most one value per cell per round —\n\
         the collisions were absorbed by the sort and the segmented scan."
    );
}
