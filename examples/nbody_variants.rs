//! The eight n-body variants — the paper's cleanest illustration of its
//! purpose: the *same physics*, spelled with different language idioms
//! (broadcast, SPREAD, systolic CSHIFT, Newton-symmetry, padding), so a
//! compiler's handling of each idiom becomes directly comparable.
//!
//! Prints Table 6's n-body block from live measurements: FLOPs,
//! communication pattern and volume per variant, plus agreement of the
//! computed forces across all eight.
//!
//! Run with: `cargo run --release --example nbody_variants`

use dpf::apps::n_body::{forces, workload, Variant};
use dpf::core::{Ctx, Machine};

fn main() {
    let n = 96;
    let eps2 = 1e-2;
    println!("n-body, n = {n} particles, all eight paper variants\n");
    println!(
        "{:<20} {:>10} {:>11} {:>14} {:>14}",
        "variant", "FLOPs", "comm calls", "off-proc B", "max dev."
    );

    // Reference forces from the first variant.
    let ctx_ref = Ctx::new(Machine::cm5(16));
    let parts_ref = workload(&ctx_ref, n, n);
    let (fx_ref, fy_ref) = forces(&ctx_ref, &parts_ref, Variant::Broadcast, eps2);

    for variant in Variant::ALL {
        let ctx = Ctx::new(Machine::cm5(16));
        let pad = match variant {
            Variant::BroadcastFill
            | Variant::SpreadFill
            | Variant::CshiftFill
            | Variant::CshiftSymmetryFill => n.next_power_of_two(),
            _ => n,
        };
        let parts = workload(&ctx, n, pad);
        let (fx, fy) = forces(&ctx, &parts, variant, eps2);
        let mut dev = 0.0f64;
        for i in 0..n {
            dev = dev.max((fx.as_slice()[i] - fx_ref.as_slice()[i]).abs());
            dev = dev.max((fy.as_slice()[i] - fy_ref.as_slice()[i]).abs());
        }
        let comm = ctx.instr.comm_snapshot();
        let calls: u64 = comm.values().map(|s| s.calls).sum();
        let bytes: u64 = comm.values().map(|s| s.offproc_bytes).sum();
        println!(
            "{:<20} {:>10} {:>11} {:>14} {:>14.2e}",
            variant.name(),
            ctx.instr.flops(),
            calls,
            bytes,
            dev
        );
    }

    println!(
        "\nTable 6's shape reproduces: the symmetry variants do ~13.5/17 of\n\
         the FLOPs, the broadcast variant trades volume for call count, and\n\
         padding changes memory, never answers."
    );
}
