//! Compiler evaluation — the suite's raison d'être (paper §1.1): compare
//! a "typical user code" against a tuned library version of the same
//! kernel, across virtual machine sizes, using the §1.5 metrics.
//!
//! Here: `matrix-vector` basic (`SUM(SPREAD(x)·A, dim)`, what an HPF
//! compiler sees) versus library (the CMSSL-style blocked kernel), the
//! exact comparison CMSSL existed to win in 1997.
//!
//! Run with: `cargo run --release --example compiler_eval`

use std::time::Instant;

use dpf::core::Machine;
use dpf::suite::{find, run, Size, Version};

fn main() {
    let entry = find("matrix-vector").expect("registry");
    println!("matrix-vector: basic (compiler-visible) vs library (tuned kernel)\n");
    println!(
        "{:<8} {:<10} {:>12} {:>12} {:>12} {:>12}",
        "procs", "version", "FLOPs", "busy (ms)", "elapsed(ms)", "busy MF/s"
    );
    for procs in [1usize, 8, 32, 128] {
        let machine = Machine::cm5(procs);
        for version in [Version::Basic, Version::Library] {
            let res = run(&entry, version, &machine, Size::Large);
            assert!(res.report.verify.is_pass());
            let p = &res.report.perf;
            println!(
                "{:<8} {:<10} {:>12} {:>12.3} {:>12.3} {:>12.1}",
                procs,
                version.name(),
                p.flops,
                p.busy.as_secs_f64() * 1e3,
                p.elapsed.as_secs_f64() * 1e3,
                p.busy_mflops()
            );
        }
    }

    // Wall-clock speedup of the tuned kernel over repeated trials.
    let machine = Machine::cm5(32);
    let trials = 5;
    let mut t_basic = f64::INFINITY;
    let mut t_lib = f64::INFINITY;
    for _ in 0..trials {
        let s = Instant::now();
        let _ = run(&entry, Version::Basic, &machine, Size::Large);
        t_basic = t_basic.min(s.elapsed().as_secs_f64());
        let s = Instant::now();
        let _ = run(&entry, Version::Library, &machine, Size::Large);
        t_lib = t_lib.min(s.elapsed().as_secs_f64());
    }
    println!(
        "\nbest-of-{trials} wall clock: basic {:.1} ms, library {:.1} ms — {:.2}x",
        t_basic * 1e3,
        t_lib * 1e3,
        t_basic / t_lib
    );
    println!(
        "The basic spelling materializes the SPREAD and the product matrix;\n\
         the library version streams rows through dot products. The gap is\n\
         what the DPF suite asked compilers to close."
    );
}
