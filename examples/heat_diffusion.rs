//! Heat diffusion across methods — the fluid-dynamics workload family the
//! paper's introduction motivates.
//!
//! Solves the same physics three ways, exactly as the suite's diff-1D
//! (implicit tridiagonal), diff-2D (ADI with an AAPC transpose) and
//! diff-3D (explicit stencil) codes do, and contrasts their measured
//! computation-to-communication ratios — the quantity Table 6 tabulates.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use dpf::apps::{diff_1d, diff_2d, diff_3d};
use dpf::core::{Ctx, Machine};

fn main() {
    let machine = Machine::cm5(32);
    println!(
        "heat diffusion three ways on a {}-processor virtual machine\n",
        machine.nprocs
    );
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>10}",
        "method", "FLOPs", "comm calls", "off-proc B", "verify"
    );

    // 1-D: Crank–Nicolson + parallel cyclic reduction.
    let ctx = Ctx::new(machine.clone());
    let p1 = diff_1d::Params {
        nx: 4096,
        steps: 32,
        lambda: 0.4,
    };
    let (_, v1) = diff_1d::run(&ctx, &p1);
    row("diff-1D (implicit, PCR)", &ctx, &v1);

    // 2-D: alternating-direction implicit, transposing between sweeps.
    let ctx = Ctx::new(machine.clone());
    let p2 = diff_2d::Params {
        nx: 128,
        steps: 16,
        lambda: 0.3,
    };
    let (_, v2) = diff_2d::run(&ctx, &p2);
    row("diff-2D (ADI + AAPC)", &ctx, &v2);

    // 3-D: explicit 7-point stencil.
    let ctx = Ctx::new(machine.clone());
    let p3 = diff_3d::Params {
        n: 48,
        steps: 32,
        lambda: 0.15,
    };
    let (_, v3) = diff_3d::run(&ctx, &p3);
    row("diff-3D (explicit stencil)", &ctx, &v3);

    println!(
        "\nThe implicit 1-D solver pays log(n) communication rounds per step;\n\
         ADI trades them for one transpose; the explicit 3-D method has the\n\
         highest FLOP count but only nearest-neighbour halo traffic — the\n\
         trade-off the DPF suite was designed to expose to compilers."
    );
}

fn row(label: &str, ctx: &Ctx, verify: &dpf::Verify) {
    let comm = ctx.instr.comm_snapshot();
    let calls: u64 = comm.values().map(|s| s.calls).sum();
    let bytes: u64 = comm.values().map(|s| s.offproc_bytes).sum();
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>10}",
        label,
        ctx.instr.flops(),
        calls,
        bytes,
        if verify.is_pass() { "PASS" } else { "FAIL" }
    );
}
