//! Quickstart: the DPF substrate in five minutes.
//!
//! Builds HPF-style distributed arrays, applies collective communication
//! primitives, and prints the §1.5-style instrumentation the suite
//! collects — FLOPs, communication patterns with exact off-processor
//! volumes, and busy time.
//!
//! Run with: `cargo run --release --example quickstart`

use dpf::array::{DistArray, PAR, SER};
use dpf::comm;
use dpf::core::{Ctx, Machine};

fn main() {
    // A virtual CM-5 with 32 processors: parallel axes are block
    // distributed over it, and every primitive accounts the data that
    // crosses (virtual) processor boundaries.
    let ctx = Ctx::new(Machine::cm5(32));

    // An HPF array: `heat(:serial, :, :)` — a field axis that lives in
    // local memory over a 64x64 parallel grid.
    let mut heat = DistArray::<f64>::from_fn(&ctx, &[2, 64, 64], &[SER, PAR, PAR], |i| {
        let (x, y) = (i[1] as f64 - 32.0, i[2] as f64 - 32.0);
        (-(x * x + y * y) / 64.0).exp()
    })
    .declare(&ctx);

    // CSHIFT: the workhorse neighbour exchange (Tables 3 and 7).
    let east = comm::cshift(&ctx, &heat, 2, 1);
    let west = comm::cshift(&ctx, &heat, 2, -1);

    // Element-wise compute charges FLOPs explicitly — the paper's
    // conventions (add = 1, divide = 4, ...) live in `dpf::core::flops`.
    heat = heat
        .zip_map(&ctx, 1, &east, |c, e| c + 0.1 * e)
        .zip_map(&ctx, 2, &west, |c, w| c + 0.1 * w);

    // Reductions move partial values up a tree — and count N−1 FLOPs.
    let total = comm::sum_all(&ctx, &heat);
    println!("total heat = {total:.4}");

    // A composite stencil records itself once, with its internal shifts
    // suppressed — matching how the paper counts "1 7-point Stencil".
    let pts = comm::star_stencil(3, 1.0 - 0.6, 0.1);
    let smoothed = comm::stencil(&ctx, &heat, &pts, comm::StencilBoundary::Cyclic);
    println!("centre after smoothing = {:.6}", smoothed.get(&[0, 32, 32]));

    // Everything was measured along the way:
    println!("\ninstrumentation:");
    println!("  FLOPs charged : {}", ctx.instr.flops());
    println!("  memory (B)    : {}", ctx.instr.declared_bytes());
    println!(
        "  busy time     : {:.3} ms",
        ctx.instr.busy_ns() as f64 / 1e6
    );
    println!("  communication :");
    for (key, stats) in ctx.instr.comm_snapshot() {
        println!(
            "    {:<24} {:>4} calls {:>10} off-proc bytes",
            key.to_string(),
            stats.calls,
            stats.offproc_bytes
        );
    }
}
