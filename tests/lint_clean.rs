//! Tier-1 gate: the shipped tree is clean under the project's own
//! static-analysis pass (`crates/dpf-lint`). Any NaN-unsafe fold, raw
//! clock read, hot-path allocation, broken `try_*` twin, unmetered
//! transport send, drifted §1.5 FLOP weight, unexcused `unsafe`,
//! rank-gated collective, lock-order inversion, nondeterminism flow
//! into verified state, or unrunnable registry paper version anywhere
//! in `crates/*/src` fails this test with the offending `file:line` in
//! the message — same contract as the CI lint job, but enforced by
//! `cargo test` alone. The regression tests below pin the acceptance
//! scenarios: reintroducing each class of SPMD-protocol bug must keep
//! failing the lint with the right rule, file, and line.

use std::path::Path;

#[test]
fn live_tree_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = dpf_lint::lint_tree(root).expect("walk crates/*/src");
    assert!(
        diags.is_empty(),
        "dpf-lint findings in the live tree (run `cargo run -p dpf-lint` for details):\n{}",
        dpf_lint::render_text(&diags)
    );
}

/// Shared scaffolding for the reintroduction scenarios: lint a snippet
/// under a real in-tree path and assert the expected rule fires as an
/// error (the `--deny warnings` exit-2 class) anchored at a real line.
fn assert_reintroduction_caught(path: &str, src: &str, rule: &str, line_needle: &str) {
    let diags = dpf_lint::lint_source(path, src);
    let hit = diags.iter().find(|d| d.rule == rule).unwrap_or_else(|| {
        panic!(
            "no {rule} diagnostic in:\n{}",
            dpf_lint::render_text(&diags)
        )
    });
    assert_eq!(hit.file, path);
    assert!(hit.line > 0, "{hit:?}");
    let line_text = src.lines().nth(hit.line as usize - 1).unwrap();
    assert!(
        line_text.contains(line_needle),
        "{rule} anchored at {:?}, expected a line containing {line_needle:?}",
        line_text
    );
    assert!(
        dpf_lint::is_failing(&diags, false),
        "{rule} must be an error: reintroduction has to exit 2 even without --deny warnings"
    );
}

#[test]
fn reintroduced_rank_gated_barrier_is_caught() {
    assert_reintroduction_caught(
        "crates/dpf-core/src/spmd.rs",
        r#"
pub fn run(m: &Machine) {
    run_workers(m, |rank, comm| {
        if rank == 0 {
            comm.barrier();
        }
        comm.fold_exec(rank, 1.0)
    });
}
"#,
        "collective-parity",
        "barrier",
    );
}

#[test]
fn reintroduced_inverted_lock_pair_is_caught() {
    assert_reintroduction_caught(
        "crates/dpf-core/src/spmd.rs",
        r#"
impl Pool {
    pub fn reap(&self) {
        let d = self.deaths.lock();
        let w = self.waits.lock();
        d.push(w.len());
    }
    pub fn stall(&self) {
        let w = self.waits.lock();
        let d = self.deaths.lock();
        w.push(d.len());
    }
}
"#,
        "lock-order",
        ".lock()",
    );
}

#[test]
fn reintroduced_hash_iteration_into_verify_is_caught() {
    assert_reintroduction_caught(
        "crates/dpf-suite/src/harness.rs",
        r#"
pub fn verify(map: &HashMap<String, f64>) -> Verify {
    let mut acc = 0.0;
    for v in map.values() {
        acc += v;
    }
    Verify::Residual(acc)
}
"#,
        "determinism-taint",
        "Verify",
    );
}

#[test]
fn live_tree_json_is_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let first = dpf_lint::render_json(&dpf_lint::lint_tree(root).unwrap());
    let second = dpf_lint::render_json(&dpf_lint::lint_tree(root).unwrap());
    assert_eq!(
        first, second,
        "`dpf lint --format json` must be byte-stable"
    );
}
