//! Tier-1 gate: the shipped tree is clean under the project's own
//! static-analysis pass (`crates/dpf-lint`). Any NaN-unsafe fold, raw
//! clock read, hot-path allocation, broken `try_*` twin, unmetered
//! transport send, drifted §1.5 FLOP weight, or unexcused `unsafe`
//! anywhere in `crates/*/src` fails this test with the offending
//! `file:line` in the message — same contract as the CI lint job, but
//! enforced by `cargo test` alone.

use std::path::Path;

#[test]
fn live_tree_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = dpf_lint::lint_tree(root).expect("walk crates/*/src");
    assert!(
        diags.is_empty(),
        "dpf-lint findings in the live tree (run `cargo run -p dpf-lint` for details):\n{}",
        dpf_lint::render_text(&diags)
    );
}

#[test]
fn live_tree_json_is_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let first = dpf_lint::render_json(&dpf_lint::lint_tree(root).unwrap());
    let second = dpf_lint::render_json(&dpf_lint::lint_tree(root).unwrap());
    assert_eq!(
        first, second,
        "`dpf lint --format json` must be byte-stable"
    );
}
