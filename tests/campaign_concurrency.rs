//! Concurrency stress for the campaign engine: many tenants on an
//! oversubscribed worker pool must record row-for-row exactly the same
//! logical metrics as a serial sweep, and the admission controls (worker
//! bound, pool byte budget) must actually bind.

use std::sync::Arc;

use dpf::core::BufferPool;
use dpf::suite::campaign::{run_campaign, CampaignSpec, ExecMode};
use dpf::{Backend, ProblemClass};

/// Sixteen tenants: S x procs {1, 2, 4, 8} x both backends x fault rates
/// {0, 0.01}, on a pool of only 3 workers. A benchmark subset keeps the
/// stress seconds-scale without losing any of the contention.
fn stress_spec() -> CampaignSpec {
    CampaignSpec {
        name: "stress".to_string(),
        classes: vec![ProblemClass::S],
        procs: vec![1, 2, 4, 8],
        backends: vec![Backend::Virtual, Backend::Spmd],
        fault_rates: vec![0.0, 0.01],
        link_rates: vec![0.0],
        benchmarks: vec![
            "conj-grad".to_string(),
            "gather".to_string(),
            "transpose".to_string(),
            "wave-1D".to_string(),
        ],
        seed: 42,
        workers: 3,
        pool_budget_bytes: 0,
        timeout_secs: 300,
        retries: 1,
        deadline_secs: None,
    }
}

#[test]
fn oversubscribed_pool_matches_serial_row_for_row() {
    let spec = stress_spec();
    assert_eq!(spec.tenants().len(), 16, "16 tenants on 3 workers");

    let serial = run_campaign(&spec, ExecMode::Serial).unwrap();
    let concurrent = run_campaign(&spec, ExecMode::Concurrent).unwrap();

    // Row-for-row: same tenants in the same order with identical logical
    // metrics (outcome, verify, flops, memory, points, comm records).
    assert_eq!(serial.tenants.len(), concurrent.tenants.len());
    for (s, c) in serial.tenants.iter().zip(&concurrent.tenants) {
        assert_eq!(s.spec.key(), c.spec.key());
        assert_eq!(s.rows, c.rows, "tenant {} diverged", s.spec.key());
    }
    // And therefore byte-identical artifacts.
    assert_eq!(serial.render_json(), concurrent.render_json());

    // The worker bound held.
    assert!(concurrent.stats.peak_concurrent >= 1);
    assert!(
        concurrent.stats.peak_concurrent <= spec.workers,
        "admission control exceeded the worker bound: {} > {}",
        concurrent.stats.peak_concurrent,
        spec.workers
    );
}

#[test]
fn pool_budget_is_never_exceeded_under_contention() {
    // A deliberately tiny budget: tenants will constantly hit the
    // admission check and drop retired buffers instead of shelving them.
    let budget = 64 * 1024;
    let spec = CampaignSpec {
        pool_budget_bytes: budget,
        ..stress_spec()
    };
    let report = run_campaign(&spec, ExecMode::Concurrent).unwrap();
    assert_eq!(report.stats.pool_budget_bytes, budget);
    assert!(
        report.stats.pool_peak_bytes <= budget,
        "shared pool burst its budget: {} > {budget}",
        report.stats.pool_peak_bytes
    );

    // Metric invariance: the budgeted run records the same artifact as
    // an unbounded serial run — the pool is invisible to §1.5 metrics.
    let unbounded = run_campaign(&stress_spec(), ExecMode::Serial).unwrap();
    assert_eq!(report.render_json(), unbounded.render_json());
}

#[test]
fn shared_pool_admission_is_thread_safe_under_direct_stress() {
    // Direct pool-level stress (no harness in the way): hammer one
    // budgeted pool from many threads and check the high-water mark.
    let budget = 16 * 1024;
    let pool = Arc::new(BufferPool::with_budget(budget));
    std::thread::scope(|scope| {
        for t in 0..8 {
            let pool = Arc::clone(&pool);
            scope.spawn(move || {
                for i in 0..500 {
                    let len = 64 + (t * 131 + i * 17) % 512;
                    let buf: Vec<f64> = pool.take(len);
                    pool.put(buf);
                }
            });
        }
    });
    assert!(
        pool.peak_shelved_bytes() <= budget,
        "pool burst its budget: {} > {budget}",
        pool.peak_shelved_bytes()
    );
    assert!(pool.shelved_bytes() <= budget);
}
