//! Golden tests for the campaign engine's artifacts.
//!
//! The golden campaign (`campaigns/golden_s.toml`: class S, procs {1, 4},
//! both backends, fault-free) is run once and its three artifacts —
//! `campaign.json`, `tables.md`, `tables.json` — are pinned byte-for-byte
//! under `tests/golden/campaign/`. CI additionally runs the same spec
//! through the `dpf campaign` CLI and diffs against the same files.
//!
//! What the pins prove:
//! * determinism — rerunning the campaign reproduces every byte;
//! * schedule independence — the concurrent executor renders the same
//!   artifact as the serial one;
//! * backend invariance — the tables from the virtual-only tenants equal
//!   the tables from the SPMD-only tenants (the tables carry only
//!   logical §1.5 quantities, which PR 3 made backend-invariant).
//!
//! Regenerate after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test --test campaign_tables` and review the
//! diff like any other golden update.

use std::fs;
use std::path::{Path, PathBuf};

use dpf::suite::campaign::{run_campaign, CampaignReport, CampaignSpec, ExecMode};
use dpf::suite::harness::{RunOutcome, SuiteReport, SuiteRow};
use dpf::suite::schema::Json;
use dpf::suite::{report_tables, run_guarded, SuiteConfig, Version};
use dpf::Machine;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn golden_dir() -> PathBuf {
    repo_root().join("tests/golden/campaign")
}

fn golden_spec() -> CampaignSpec {
    let path = repo_root().join("campaigns/golden_s.toml");
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    CampaignSpec::parse(&text).expect("golden campaign spec parses")
}

fn run_golden(mode: ExecMode) -> CampaignReport {
    run_campaign(&golden_spec(), mode).expect("golden campaign runs")
}

fn check_golden(file: &str, rendered: &str) {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let expected_path = golden_dir().join(file);
    if update {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&expected_path, rendered).unwrap();
        return;
    }
    let expected = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
        panic!(
            "{} is missing; run UPDATE_GOLDEN=1 cargo test --test campaign_tables",
            expected_path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "{file} drifted from its golden; if intentional, bless with \
         UPDATE_GOLDEN=1 cargo test --test campaign_tables"
    );
}

#[test]
fn golden_campaign_artifacts_are_byte_stable() {
    let report = run_golden(ExecMode::Serial);
    assert_eq!(report.failed(), 0, "golden campaign must be clean");
    check_golden("campaign.expected.json", &report.render_json());
    check_golden(
        "tables.expected.md",
        &report_tables::render_markdown(&report),
    );
    check_golden("tables.expected.json", &report_tables::render_json(&report));

    // Determinism: a second run of the same spec reproduces every byte.
    let again = run_golden(ExecMode::Serial);
    assert_eq!(again.render_json(), report.render_json());
}

#[test]
fn concurrent_execution_renders_identical_artifacts() {
    let serial = run_golden(ExecMode::Serial);
    let concurrent = run_golden(ExecMode::Concurrent);
    assert_eq!(concurrent.render_json(), serial.render_json());
    assert_eq!(
        report_tables::render_markdown(&concurrent),
        report_tables::render_markdown(&serial)
    );
    assert_eq!(
        report_tables::render_json(&concurrent),
        report_tables::render_json(&serial)
    );
}

/// Keep only the tenants running on the named backend.
fn backend_only(report: &CampaignReport, backend: &str) -> CampaignReport {
    let mut out = report.clone();
    out.tenants
        .retain(|t| t.spec.backend.to_string() == backend);
    out
}

#[test]
fn tables_are_backend_invariant() {
    let report = run_golden(ExecMode::Serial);
    let virtual_only = backend_only(&report, "virtual");
    let spmd_only = backend_only(&report, "spmd");
    assert!(!virtual_only.tenants.is_empty() && !spmd_only.tenants.is_empty());
    assert_eq!(
        report_tables::render_markdown(&virtual_only),
        report_tables::render_markdown(&spmd_only),
        "tables must not depend on the execution backend"
    );
    assert_eq!(
        report_tables::render_json(&virtual_only),
        report_tables::render_json(&spmd_only)
    );
}

#[test]
fn campaign_artifact_round_trips_through_schema() {
    let report = run_golden(ExecMode::Serial);
    let text = report.render_json();
    let back = CampaignReport::parse(&text).expect("artifact parses back");
    assert_eq!(back.name, report.name);
    assert_eq!(back.seed, report.seed);
    assert_eq!(back.tenants, report.tenants);
    assert_eq!(back.render_json(), text, "render must be a fixed point");
    // The regenerated-from-artifact tables match the originals exactly.
    assert_eq!(
        report_tables::render_markdown(&back),
        report_tables::render_markdown(&report)
    );
}

#[test]
fn suite_report_json_shares_the_schema() {
    // One real row (completed, verified) plus every synthetic outcome
    // class the harness can record.
    let entry = dpf::find("conj-grad").unwrap();
    let cfg = SuiteConfig {
        machine: Machine::cm5(4),
        ..SuiteConfig::default()
    };
    let guarded = run_guarded(&entry, Version::Basic, &cfg);
    let report = SuiteReport {
        rows: vec![
            SuiteRow {
                name: "conj-grad",
                outcome: guarded.outcome.clone(),
                result: guarded.result,
            },
            SuiteRow {
                name: "panicky",
                outcome: RunOutcome::Panicked("boom \"quoted\"\n".to_string()),
                result: None,
            },
            SuiteRow {
                name: "slow",
                outcome: RunOutcome::TimedOut,
                result: None,
            },
            SuiteRow {
                name: "healed",
                outcome: RunOutcome::Healed {
                    respawns: 2,
                    epochs_rewound: 3,
                },
                result: None,
            },
            SuiteRow {
                name: "retried",
                outcome: RunOutcome::Recovered { retries: 1 },
                result: None,
            },
            SuiteRow {
                name: "skipped",
                outcome: RunOutcome::Quarantined,
                result: None,
            },
            SuiteRow {
                name: "misconfigured",
                outcome: RunOutcome::ConfigError("no such variant".to_string()),
                result: None,
            },
            SuiteRow {
                name: "halted",
                outcome: RunOutcome::Interrupted,
                result: None,
            },
            SuiteRow {
                name: "overdue",
                outcome: RunOutcome::DeadlineExceeded,
                result: None,
            },
        ],
        setup_errors: vec![dpf::DpfError::Config {
            what: "unknown benchmark \"nope\"".to_string(),
        }],
    };

    // The rendered report parses back through the shared schema and the
    // parse → render cycle is the identity on bytes.
    let text = report.render_json();
    let doc = Json::parse(&text).expect("suite report JSON parses");
    assert_eq!(doc.render(), text);
    assert_eq!(doc, report.to_json());

    // Every row's outcome object round-trips through the RunOutcome
    // codec the campaign artifact reuses.
    let rows = doc.get("benchmarks").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), report.rows.len());
    for (row_json, row) in rows.iter().zip(&report.rows) {
        assert_eq!(row_json.get("name").and_then(Json::as_str), Some(row.name),);
        let outcome = RunOutcome::from_json(row_json.get("outcome").unwrap()).unwrap();
        assert_eq!(outcome, row.outcome);
    }
    assert_eq!(doc.get("total").and_then(Json::as_u64), Some(9));
    assert_eq!(doc.get("config_errors").and_then(Json::as_u64), Some(2));
    // The one Interrupted row surfaces in the partial-sweep counter
    // (and only then does the JSON carry the field at all).
    assert_eq!(doc.get("interrupted").and_then(Json::as_u64), Some(1));
}
