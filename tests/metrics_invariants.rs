//! Cross-crate invariants of the §1.5 metric machinery, checked through
//! full benchmark runs.

use dpf::core::{cost::CostModel, Machine};
use dpf::suite::{registry, run_basic, Size};

#[test]
fn busy_never_exceeds_elapsed() {
    let machine = Machine::cm5(8);
    for entry in registry() {
        let res = run_basic(&entry, &machine, Size::Small);
        assert!(
            res.report.perf.busy <= res.report.perf.elapsed,
            "{}: busy {:?} > elapsed {:?}",
            entry.name,
            res.report.perf.busy,
            res.report.perf.elapsed
        );
    }
}

#[test]
fn memory_usage_is_declared_for_every_benchmark() {
    let machine = Machine::cm5(8);
    for entry in registry() {
        let res = run_basic(&entry, &machine, Size::Small);
        assert!(
            res.report.memory_bytes > 0,
            "{} declared no memory",
            entry.name
        );
    }
}

#[test]
fn full_registry_sweep_upholds_metric_invariants() {
    // Every benchmark, both backends: wherever the paper tabulates
    // floating-point work the run must charge FLOPs (only the three pure
    // data-motion functions are exempt), the declared memory accounting
    // must be present, and busy time can never exceed elapsed time.
    use dpf::core::Backend;
    use dpf::suite::{run_on, Version};
    let machine = Machine::cm5(8);
    for backend in [Backend::Virtual, Backend::Spmd] {
        for entry in registry() {
            let res = run_on(&entry, Version::Basic, &machine, Size::Small, backend);
            assert!(
                res.report.verify.is_pass(),
                "{} failed verification under {backend}",
                entry.name
            );
            // The pure data-motion functions are exempt (scatter still
            // charges its one combining pass, so no zero assertion here).
            let pure_data_motion = entry.flops_formula.starts_with('0');
            if !pure_data_motion {
                assert!(
                    res.report.perf.flops > 0,
                    "{}: paper tabulates work but no FLOPs charged under {backend}",
                    entry.name
                );
            }
            assert!(
                res.report.memory_bytes > 0,
                "{}: no memory declared under {backend}",
                entry.name
            );
            assert!(
                res.report.perf.busy <= res.report.perf.elapsed,
                "{}: busy {:?} > elapsed {:?} under {backend}",
                entry.name,
                res.report.perf.busy,
                res.report.perf.elapsed
            );
        }
    }
}

#[test]
fn offproc_volume_grows_with_machine_size_for_transpose() {
    // The AAPC moves (P−1)/P of the matrix: more processors, more volume.
    let entry = dpf::suite::find("transpose").unwrap();
    let v2 = run_basic(&entry, &Machine::cm5(2), Size::Small)
        .report
        .offproc_bytes();
    let v16 = run_basic(&entry, &Machine::cm5(16), Size::Small)
        .report
        .offproc_bytes();
    assert!(v16 > v2, "AAPC volume did not grow: {v2} -> {v16}");
}

#[test]
fn modeled_cm5_time_scales_down_with_processors() {
    // The analytic cost model: compute-bound kernels should speed up with
    // machine size.
    let entry = dpf::suite::find("matrix-vector").unwrap();
    let cost = CostModel::cm5();
    let m4 = Machine::cm5(4);
    let m64 = Machine::cm5(64);
    let r4 = run_basic(&entry, &m4, Size::Medium);
    let r64 = run_basic(&entry, &m64, Size::Medium);
    let t4 = cost.total_time(&m4, r4.report.perf.flops, &r4.report.comm);
    let t64 = cost.total_time(&m64, r64.report.perf.flops, &r64.report.comm);
    assert!(
        t64 < t4,
        "modeled time did not improve: {t4:?} (P=4) vs {t64:?} (P=64)"
    );
}

#[test]
fn reduction_flop_convention_holds_through_the_harness() {
    // The reduction benchmark charges exactly (n−1) + side(side−1) FLOPs.
    let entry = dpf::suite::find("reduction").unwrap();
    let res = run_basic(&entry, &Machine::cm5(8), Size::Small);
    let n = 1u64 << 10;
    let side = 32u64;
    assert_eq!(res.report.perf.flops, (n - 1) + side * (side - 1));
}

#[test]
fn pure_data_motion_benchmarks_report_near_zero_flops() {
    // Paper §2: the communication functions except reduction perform no
    // floating-point operations (our scatter adds one combining pass).
    for name in ["gather", "transpose"] {
        let entry = dpf::suite::find(name).unwrap();
        let res = run_basic(&entry, &Machine::cm5(8), Size::Small);
        assert_eq!(res.report.perf.flops, 0, "{name} charged FLOPs");
    }
}
