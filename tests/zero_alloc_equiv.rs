//! Property tests: the zero-allocation hot paths are observationally
//! identical to their allocating counterparts.
//!
//! Every `_into` variant must be bit-identical to the allocating version
//! in all four observable dimensions: result data, result layout,
//! instrumented FLOP count, and recorded communication events. The
//! chunked `permute` fast path is checked against a naive per-element
//! reference for random shapes and axis orders up to rank 4.

use dpf_array::{DistArray, IndexIter, PAR, SER};
use dpf_comm::{
    cshift, cshift_into, eoshift, eoshift_into, star_stencil, stencil, stencil_into,
    StencilBoundary,
};
use dpf_core::{Ctx, Machine};
use proptest::prelude::*;

fn ctx(p: usize) -> Ctx {
    Ctx::new(Machine::cm5(p))
}

/// Two contexts with identical machines: one drives the allocating path,
/// the other the `_into` path, so instrumentation can be compared.
fn ctx_pair(p: usize) -> (Ctx, Ctx) {
    (ctx(p), ctx(p))
}

fn assert_instr_identical(a: &Ctx, b: &Ctx) -> Result<(), String> {
    prop_assert_eq!(a.instr.flops(), b.instr.flops());
    prop_assert_eq!(a.instr.comm_snapshot(), b.instr.comm_snapshot());
    Ok(())
}

proptest! {
    #[test]
    fn map_into_equals_map(n in 1usize..2500, p in 1usize..9) {
        let (ca, cb) = ctx_pair(p);
        let a = DistArray::<f64>::from_fn(&ca, &[n], &[PAR], |i| i[0] as f64 * 0.5 - 3.0);
        let b = DistArray::<f64>::from_fn(&cb, &[n], &[PAR], |i| i[0] as f64 * 0.5 - 3.0);
        let want = a.map(&ca, 2, |x| 1.5 * x + 0.25);
        let mut got = DistArray::<f64>::zeros(&cb, &[n], &[PAR]);
        b.map_into(&cb, 2, &mut got, |x| 1.5 * x + 0.25);
        prop_assert_eq!(&got, &want); // data AND layout
        assert_instr_identical(&ca, &cb)?;
    }

    #[test]
    fn zip_map_into_equals_zip_map(n in 1usize..2500, p in 1usize..9) {
        let (ca, cb) = ctx_pair(p);
        let mk = |c: &Ctx, salt: f64| {
            DistArray::<f64>::from_fn(c, &[n], &[PAR], move |i| i[0] as f64 * salt + 1.0)
        };
        let (a1, a2) = (mk(&ca, 0.75), mk(&ca, -0.25));
        let (b1, b2) = (mk(&cb, 0.75), mk(&cb, -0.25));
        let want = a1.zip_map(&ca, 1, &a2, |x, y| x * y - x);
        let mut got = DistArray::<f64>::zeros(&cb, &[n], &[PAR]);
        b1.zip_map_into(&cb, 1, &b2, &mut got, |x, y| x * y - x);
        prop_assert_eq!(&got, &want);
        assert_instr_identical(&ca, &cb)?;
    }

    #[test]
    fn cshift_into_equals_cshift(
        rows in 1usize..40,
        cols in 1usize..40,
        axis in 0usize..2,
        shift in -90isize..90,
        p in 1usize..9,
    ) {
        let (ca, cb) = ctx_pair(p);
        let mk = |c: &Ctx| {
            DistArray::<i32>::from_fn(c, &[rows, cols], &[PAR, PAR], |i| {
                (i[0] * cols + i[1]) as i32
            })
        };
        let a = mk(&ca);
        let b = mk(&cb);
        let want = cshift(&ca, &a, axis, shift);
        let mut got = DistArray::<i32>::zeros(&cb, &[rows, cols], &[PAR, PAR]);
        cshift_into(&cb, &b, axis, shift, &mut got);
        prop_assert_eq!(&got, &want);
        assert_instr_identical(&ca, &cb)?;
    }

    #[test]
    fn eoshift_into_equals_eoshift(
        n in 1usize..120,
        shift in -130isize..130,
        fill in -50i32..50,
        p in 1usize..9,
    ) {
        let (ca, cb) = ctx_pair(p);
        let mk = |c: &Ctx| DistArray::<i32>::from_fn(c, &[n], &[PAR], |i| i[0] as i32 + 7);
        let a = mk(&ca);
        let b = mk(&cb);
        let want = eoshift(&ca, &a, 0, shift, fill);
        let mut got = DistArray::<i32>::zeros(&cb, &[n], &[PAR]);
        eoshift_into(&cb, &b, 0, shift, fill, &mut got);
        prop_assert_eq!(&got, &want);
        assert_instr_identical(&ca, &cb)?;
    }

    #[test]
    fn stencil_into_equals_stencil(
        rows in 1usize..24,
        cols in 1usize..24,
        cyclic in 0usize..2,
        p in 1usize..9,
    ) {
        let (ca, cb) = ctx_pair(p);
        let mk = |c: &Ctx| {
            DistArray::<f64>::from_fn(c, &[rows, cols], &[PAR, SER], |i| {
                (i[0] * 31 + i[1] * 7) as f64 * 0.125
            })
        };
        let a = mk(&ca);
        let b = mk(&cb);
        let pts = star_stencil(2, -4.0, 1.0);
        let boundary = if cyclic == 1 {
            StencilBoundary::Cyclic
        } else {
            StencilBoundary::Fixed(1.5)
        };
        let want = stencil(&ca, &a, &pts, boundary);
        let mut got = DistArray::<f64>::zeros(&cb, &[rows, cols], &[PAR, SER]);
        stencil_into(&cb, &b, &pts, boundary, &mut got);
        prop_assert_eq!(&got, &want);
        assert_instr_identical(&ca, &cb)?;
    }

    #[test]
    fn permute_equals_naive_reference(
        d0 in 1usize..9,
        d1 in 1usize..9,
        d2 in 1usize..9,
        d3 in 1usize..9,
        rank in 1usize..5,
        perm_seed in 0usize..10_000,
        p in 1usize..9,
    ) {
        let shape: Vec<usize> = [d0, d1, d2, d3][..rank].to_vec();
        // A random permutation of the axes via seeded Fisher–Yates.
        let mut order: Vec<usize> = (0..rank).collect();
        let mut state = (perm_seed as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        for i in (1..rank).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let ctx = ctx(p);
        let a = DistArray::<i32>::from_fn(&ctx, &shape, &vec![PAR; rank], |idx| {
            idx.iter().fold(0i32, |acc, &i| acc * 64 + i as i32)
        });
        let out = a.permute(&ctx, &order);
        // Reference: out[j] = a[i] where j[k] = i[order[k]].
        let new_shape: Vec<usize> = order.iter().map(|&d| shape[d]).collect();
        prop_assert_eq!(out.shape(), &new_shape[..]);
        for jdx in IndexIter::new(&new_shape) {
            let mut idx = vec![0usize; rank];
            for (k, &d) in order.iter().enumerate() {
                idx[d] = jdx[k];
            }
            prop_assert_eq!(out.get(&jdx), a.get(&idx));
        }
    }
}
