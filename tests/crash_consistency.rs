//! Crash-consistency tests for the campaign journal + resume engine.
//!
//! The durability contract under test: a campaign killed at *any* point
//! and resumed with `--resume` produces artifacts **byte-identical** to
//! an uninterrupted run — serially and concurrently. The journal is a
//! write-ahead row log (one fsync'd, CRC-tagged line per completed
//! row), so a kill can be simulated exactly by truncating the journal
//! to the rows that were durable at death and running again with
//! `resume: true`. `scripts/chaos_campaign.sh` performs the same
//! experiment with a real SIGKILL via the hidden `--crash-after-rows`
//! flag; these tests pin the engine-level semantics in-process.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dpf::suite::campaign::{
    run_campaign, run_campaign_with, CampaignReport, CampaignRun, CampaignSpec, ExecMode,
};
use dpf::suite::harness::RunOutcome;
use dpf::suite::journal::JOURNAL_FILE;
use dpf::suite::report_tables;
use dpf::DpfError;
use dpf_core::{Backend, ProblemClass};

/// A seconds-scale spec: two tenants (procs 1 and 4), three benchmarks
/// each — six rows total, enough to truncate mid-tenant.
fn spec() -> CampaignSpec {
    CampaignSpec {
        name: "crash-consistency".to_string(),
        classes: vec![ProblemClass::S],
        procs: vec![1, 4],
        backends: vec![Backend::Virtual],
        benchmarks: vec![
            "gather".to_string(),
            "conj-grad".to_string(),
            "diff-1D".to_string(),
        ],
        workers: 2,
        ..CampaignSpec::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The three artifact bodies, rendered exactly as `--out` writes them.
fn artifacts(report: &CampaignReport) -> [String; 3] {
    [
        report.render_json(),
        report_tables::render_markdown(report),
        report_tables::render_json(report),
    ]
}

/// Truncate the journal to its header plus the first `keep_rows` rows —
/// the exact on-disk state after a SIGKILL once that many rows were
/// durable (the append path fsyncs every line).
fn truncate_journal(path: &Path, keep_rows: usize) {
    let text = fs::read_to_string(path).unwrap();
    let keep: String = text
        .split_inclusive('\n')
        .take(1 + keep_rows)
        .collect::<Vec<_>>()
        .concat();
    fs::write(path, keep).unwrap();
}

fn journaled_run(dir: &Path, mode: ExecMode, resume: bool) -> CampaignReport {
    let run = CampaignRun {
        mode,
        journal: Some(dir.join(JOURNAL_FILE)),
        resume,
        ..CampaignRun::default()
    };
    let outcome = run_campaign_with(&spec(), &run).expect("campaign runs");
    assert!(!outcome.interrupted);
    outcome.report
}

#[test]
fn kill_and_resume_is_byte_identical_serial() {
    let clean = artifacts(&run_campaign(&spec(), ExecMode::Serial).unwrap());
    for keep_rows in [0, 1, 3, 5] {
        let dir = scratch(&format!("resume-serial-{keep_rows}"));
        journaled_run(&dir, ExecMode::Serial, false);
        truncate_journal(&dir.join(JOURNAL_FILE), keep_rows);
        let resumed = journaled_run(&dir, ExecMode::Serial, true);
        assert_eq!(
            artifacts(&resumed),
            clean,
            "serial resume after {keep_rows} durable row(s) must reproduce every byte"
        );
    }
}

#[test]
fn kill_and_resume_is_byte_identical_concurrent() {
    // The reference is the *serial* clean run: resume identity must
    // hold across schedules, not just within one.
    let clean = artifacts(&run_campaign(&spec(), ExecMode::Serial).unwrap());
    let dir = scratch("resume-concurrent");
    journaled_run(&dir, ExecMode::Concurrent, false);
    truncate_journal(&dir.join(JOURNAL_FILE), 2);
    let resumed = journaled_run(&dir, ExecMode::Concurrent, true);
    assert_eq!(artifacts(&resumed), clean);
}

#[test]
fn torn_tail_line_is_tolerated_on_resume() {
    let clean = artifacts(&run_campaign(&spec(), ExecMode::Serial).unwrap());
    let dir = scratch("resume-torn");
    journaled_run(&dir, ExecMode::Serial, false);
    // Chop mid-line: the state after a power cut during the very last
    // append (everything before it was fsync'd line-by-line).
    let path = dir.join(JOURNAL_FILE);
    let text = fs::read_to_string(&path).unwrap();
    fs::write(&path, &text[..text.len() - 11]).unwrap();
    let resumed = journaled_run(&dir, ExecMode::Serial, true);
    assert_eq!(artifacts(&resumed), clean);
}

#[test]
fn resume_against_a_changed_spec_is_a_typed_config_error() {
    let dir = scratch("resume-changed-spec");
    journaled_run(&dir, ExecMode::Serial, false);
    let mut changed = spec();
    changed.seed += 1;
    let run = CampaignRun {
        journal: Some(dir.join(JOURNAL_FILE)),
        resume: true,
        ..CampaignRun::default()
    };
    let err = run_campaign_with(&changed, &run).unwrap_err();
    assert!(matches!(err, DpfError::Config { .. }), "{err}");
    assert!(err.to_string().contains("--resume"), "{err}");
}

#[test]
fn interior_corruption_is_a_typed_config_error_with_an_offset() {
    let dir = scratch("resume-corrupt");
    journaled_run(&dir, ExecMode::Serial, false);
    let path = dir.join(JOURNAL_FILE);
    let text = fs::read_to_string(&path).unwrap();
    // Flip one content byte on line 2 (an interior, fully-fsync'd row).
    let mut lines: Vec<String> = text.split_inclusive('\n').map(str::to_string).collect();
    lines[1] = lines[1].replacen("\"kind\"", "\"KIND\"", 1);
    fs::write(&path, lines.concat()).unwrap();
    let run = CampaignRun {
        journal: Some(path.clone()),
        resume: true,
        ..CampaignRun::default()
    };
    let err = run_campaign_with(&spec(), &run).unwrap_err();
    assert!(matches!(err, DpfError::Config { .. }), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("line 2"), "{msg}");
    assert!(msg.contains("byte offset"), "{msg}");
}

#[test]
fn resume_without_a_journal_path_is_a_config_error() {
    let run = CampaignRun {
        resume: true,
        ..CampaignRun::default()
    };
    let err = run_campaign_with(&spec(), &run).unwrap_err();
    assert!(matches!(err, DpfError::Config { .. }), "{err}");
    let dir = scratch("resume-no-journal");
    let run = CampaignRun {
        journal: Some(dir.join(JOURNAL_FILE)),
        resume: true,
        ..CampaignRun::default()
    };
    let err = run_campaign_with(&spec(), &run).unwrap_err();
    assert!(err.to_string().contains("no journal"), "{err}");
}

#[test]
fn preset_shutdown_flag_interrupts_and_resume_completes() {
    let clean = artifacts(&run_campaign(&spec(), ExecMode::Serial).unwrap());
    let dir = scratch("resume-interrupt");
    let cancel = Arc::new(AtomicBool::new(true));
    let run = CampaignRun {
        journal: Some(dir.join(JOURNAL_FILE)),
        cancel: Some(cancel),
        ..CampaignRun::default()
    };
    let outcome = run_campaign_with(&spec(), &run).unwrap();
    assert!(outcome.interrupted);
    assert!(outcome.report.interrupted() > 0);
    for tenant in &outcome.report.tenants {
        for row in &tenant.rows {
            assert_eq!(row.outcome, RunOutcome::Interrupted, "{}", row.name);
        }
    }
    // Interrupted rows are "not measured", never journaled: the journal
    // holds only the header, and a resume measures everything for real.
    let lines = fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
    assert_eq!(lines.lines().count(), 1, "only the header is durable");
    let resumed = journaled_run(&dir, ExecMode::Serial, true);
    assert_eq!(artifacts(&resumed), clean);
}

#[test]
fn expired_deadline_marks_rows_deadline_exceeded_and_journals_them() {
    let dir = scratch("deadline-zero");
    let run = CampaignRun {
        journal: Some(dir.join(JOURNAL_FILE)),
        deadline: Some(Duration::ZERO),
        ..CampaignRun::default()
    };
    let outcome = run_campaign_with(&spec(), &run).unwrap();
    assert!(!outcome.interrupted, "a deadline is a verdict, not a stop");
    let mut rows = 0;
    for tenant in &outcome.report.tenants {
        for row in &tenant.rows {
            assert_eq!(row.outcome, RunOutcome::DeadlineExceeded, "{}", row.name);
            rows += 1;
        }
    }
    // DeadlineExceeded is definitive and therefore durable: header + one
    // journal line per row.
    let lines = fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
    assert_eq!(lines.lines().count(), 1 + rows);
    // Resuming (without the deadline) replays the recorded verdicts
    // instead of re-measuring — the journal pinned them.
    let resumed = journaled_run(&dir, ExecMode::Serial, true);
    assert!(resumed
        .tenants
        .iter()
        .flat_map(|t| &t.rows)
        .all(|r| r.outcome == RunOutcome::DeadlineExceeded));
}

/// An in-flight cancellation (flag flips mid-run) journals completed
/// rows and leaves the rest for resume; the resumed artifacts still
/// match a clean run byte-for-byte.
#[test]
fn mid_run_interrupt_preserves_completed_rows() {
    let clean = artifacts(&run_campaign(&spec(), ExecMode::Serial).unwrap());
    let dir = scratch("resume-mid-interrupt");
    journaled_run(&dir, ExecMode::Serial, false);
    let path = dir.join(JOURNAL_FILE);
    let full = fs::read_to_string(&path).unwrap();
    let total_rows = full.lines().count() - 1;
    truncate_journal(&path, 2);
    // Resume under a pre-set cancel flag: the replayed rows come back
    // from the journal, the missing ones are Interrupted, and nothing
    // new is journaled.
    let cancel = Arc::new(AtomicBool::new(true));
    let run = CampaignRun {
        journal: Some(path.clone()),
        resume: true,
        cancel: Some(cancel.clone()),
        ..CampaignRun::default()
    };
    let outcome = run_campaign_with(&spec(), &run).unwrap();
    assert!(outcome.interrupted);
    let replayed = outcome
        .report
        .tenants
        .iter()
        .flat_map(|t| &t.rows)
        .filter(|r| r.outcome != RunOutcome::Interrupted)
        .count();
    assert_eq!(replayed, 2, "exactly the durable rows survive the flag");
    assert_eq!(
        fs::read_to_string(&path).unwrap().lines().count(),
        3,
        "an interrupted resume adds no journal lines"
    );
    // Clear the flag and finish: byte-identity end to end.
    cancel.store(false, Ordering::Relaxed);
    let resumed = journaled_run(&dir, ExecMode::Serial, true);
    assert_eq!(artifacts(&resumed), clean);
    assert_eq!(
        fs::read_to_string(&path).unwrap().lines().count(),
        1 + total_rows
    );
}
