//! Failure injection: the substrate and kernels must fail loudly on
//! invalid inputs, not corrupt results.

use dpf::array::{DistArray, PAR};
use dpf::core::{Ctx, Machine};

fn ctx() -> Ctx {
    Ctx::new(Machine::cm5(4))
}

#[test]
#[should_panic(expected = "singular matrix")]
fn lu_rejects_singular_systems() {
    let ctx = ctx();
    // Rank-1 matrix.
    let a = DistArray::<f64>::from_fn(&ctx, &[4, 4], &[PAR, PAR], |i| {
        (i[0] + 1) as f64 * (i[1] + 1) as f64
    });
    let _ = dpf::linalg::lu::lu_factor(&ctx, &a);
}

#[test]
#[should_panic(expected = "singular matrix")]
fn gauss_jordan_rejects_singular_systems() {
    let ctx = ctx();
    let a = DistArray::<f64>::zeros(&ctx, &[3, 3], &[PAR, PAR]);
    let b = DistArray::<f64>::zeros(&ctx, &[3], &[PAR]);
    let _ = dpf::linalg::gauss_jordan::gauss_jordan_solve(&ctx, &a, &b);
}

#[test]
#[should_panic(expected = "not a power of two")]
fn fft_rejects_non_power_of_two() {
    let ctx = ctx();
    let a = DistArray::<dpf::core::C64>::zeros(&ctx, &[100], &[PAR]);
    let _ = dpf::fft::fft(&ctx, &a, dpf::fft::Direction::Forward);
}

#[test]
#[should_panic(expected = "overflowed capacity")]
fn mdcell_rejects_cell_overflow() {
    let ctx = ctx();
    // Capacity 1 with fill 3 guarantees a rebin overflow.
    let p = dpf::apps::mdcell::Params {
        nc: 2,
        cap: 1,
        fill: 3.0,
        cell: 2.0,
        dt: 1e-3,
        steps: 1,
    };
    // The workload itself caps placement at capacity, so force the
    // overflow through rebin by squeezing two particles into one cell.
    let mut c = dpf::apps::mdcell::workload(&ctx, &p);
    // Find two occupied slots and move both into cell 0.
    let occupied: Vec<usize> = {
        let occ = c.occ.as_slice();
        (0..occ.len()).filter(|&e| occ[e] == 1.0).take(2).collect()
    };
    assert!(occupied.len() == 2, "workload too sparse for the test");
    for &e in &occupied {
        for d in 0..3 {
            c.pos[d].as_mut_slice()[e] = 0.5;
        }
    }
    dpf::apps::mdcell::rebin(&ctx, &p, &mut c);
}

#[test]
#[should_panic(expected = "mask shape mismatch")]
fn where_rejects_mismatched_mask() {
    let ctx = ctx();
    let mut a = DistArray::<f64>::zeros(&ctx, &[4], &[PAR]);
    let mask = DistArray::<bool>::zeros(&ctx, &[5], &[PAR]);
    a.where_fill(&ctx, &mask, 1.0);
}

#[test]
#[should_panic(expected = "out of bounds")]
fn scatter_rejects_out_of_range_indices() {
    let ctx = ctx();
    let mut dst = DistArray::<f64>::zeros(&ctx, &[4], &[PAR]);
    let idx = DistArray::<i32>::from_vec(&ctx, &[1], &[PAR], vec![9]);
    let src = DistArray::<f64>::zeros(&ctx, &[1], &[PAR]);
    dpf::comm::scatter(&ctx, &mut dst, &idx, &src);
}

#[test]
#[should_panic(expected = "m >= n")]
fn qr_rejects_underdetermined_shapes() {
    let ctx = ctx();
    let a = DistArray::<f64>::zeros(&ctx, &[3, 5], &[PAR, PAR]);
    let _ = dpf::linalg::qr::qr_factor(&ctx, &a);
}

#[test]
#[should_panic(expected = "zero extent")]
fn arrays_reject_zero_extents() {
    let ctx = ctx();
    let _ = DistArray::<f64>::zeros(&ctx, &[4, 0], &[PAR, PAR]);
}

// --------------------------------------------------------- try_* parity
//
// The recoverable `try_*` APIs must report the SAME message text their
// panicking wrappers abort with, so diagnostics stay identical whichever
// entry point a caller uses.

/// Run `f`, catch its panic and return the payload as a string.
fn panic_message<R>(f: impl FnOnce() -> R) -> String {
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = f();
    }))
    .expect_err("closure was expected to panic");
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        panic!("non-string panic payload");
    }
}

#[test]
fn try_scatter_error_matches_panic_message() {
    let ctx = ctx();
    let idx = DistArray::<i32>::from_vec(&ctx, &[1], &[PAR], vec![9]);
    let src = DistArray::<f64>::zeros(&ctx, &[1], &[PAR]);
    let err = {
        let mut dst = DistArray::<f64>::zeros(&ctx, &[4], &[PAR]);
        dpf::comm::try_scatter(&ctx, &mut dst, &idx, &src).unwrap_err()
    };
    let msg = panic_message(|| {
        let mut dst = DistArray::<f64>::zeros(&ctx, &[4], &[PAR]);
        dpf::comm::scatter(&ctx, &mut dst, &idx, &src);
    });
    assert_eq!(err.to_string(), msg);
}

#[test]
fn try_gather_error_matches_panic_message() {
    let ctx = ctx();
    let src = DistArray::<f64>::zeros(&ctx, &[4], &[PAR]);
    let idx = DistArray::<i32>::from_vec(&ctx, &[2], &[PAR], vec![0, -3]);
    let err = dpf::comm::try_gather(&ctx, &src, &idx).unwrap_err();
    let msg = panic_message(|| dpf::comm::gather(&ctx, &src, &idx));
    assert_eq!(err.to_string(), msg);
}

#[test]
fn try_lu_factor_error_matches_panic_message() {
    let ctx = ctx();
    let a = DistArray::<f64>::from_fn(&ctx, &[4, 4], &[PAR, PAR], |i| {
        (i[0] + 1) as f64 * (i[1] + 1) as f64
    });
    let err = dpf::linalg::lu::try_lu_factor(&ctx, &a).unwrap_err();
    let msg = panic_message(|| dpf::linalg::lu::lu_factor(&ctx, &a));
    assert_eq!(err.to_string(), msg);
}

#[test]
fn try_gauss_jordan_error_matches_panic_message() {
    let ctx = ctx();
    let a = DistArray::<f64>::zeros(&ctx, &[3, 3], &[PAR, PAR]);
    let b = DistArray::<f64>::zeros(&ctx, &[3], &[PAR]);
    let err = dpf::linalg::gauss_jordan::try_gauss_jordan_solve(&ctx, &a, &b).unwrap_err();
    let msg = panic_message(|| dpf::linalg::gauss_jordan::gauss_jordan_solve(&ctx, &a, &b));
    assert_eq!(err.to_string(), msg);
}

#[test]
fn try_fft_error_matches_panic_message() {
    let ctx = ctx();
    let a = DistArray::<dpf::core::C64>::zeros(&ctx, &[100], &[PAR]);
    let err = dpf::fft::try_fft(&ctx, &a, dpf::fft::Direction::Forward).unwrap_err();
    let msg = panic_message(|| dpf::fft::fft(&ctx, &a, dpf::fft::Direction::Forward));
    assert_eq!(err.to_string(), msg);
}

#[test]
fn try_transpose_rejects_wrong_rank() {
    let ctx = ctx();
    let a = DistArray::<f64>::zeros(&ctx, &[2, 2, 2], &[PAR, PAR, PAR]);
    let err = dpf::comm::try_transpose(&ctx, &a).unwrap_err();
    assert!(err.to_string().contains("transpose expects a 2-D array"));
}
