//! Scaling invariants for the NAS-style problem classes.
//!
//! Every registry entry accepts `Size::Class(c)` and scales its problem
//! from the class descriptor. These tests pin the properties the campaign
//! tables rely on:
//!
//! * memory grows strictly across S < W < A (classes really scale);
//! * class S work is non-trivial — flops > 0 wherever the paper tabulates
//!   a non-zero operation count (pure data-motion codes excepted);
//! * the communication inventory (pattern/rank keys) is a property of the
//!   algorithm, not of the class: S and W record the same key set.

use std::collections::BTreeSet;

use dpf::suite::{registry, run_basic, Size};
use dpf::{Machine, ProblemClass};

fn machine() -> Machine {
    Machine::cm5(4)
}

#[test]
fn memory_grows_strictly_with_class() {
    let machine = machine();
    for entry in registry() {
        let mut prev = 0u64;
        for class in [ProblemClass::S, ProblemClass::W, ProblemClass::A] {
            let res = run_basic(&entry, &machine, Size::Class(class));
            assert!(
                res.report.verify.is_pass(),
                "{} failed verification at class {class}",
                entry.name
            );
            assert!(
                res.report.memory_bytes > prev,
                "{}: memory did not grow from the previous class to {class} \
                 ({prev} -> {})",
                entry.name,
                res.report.memory_bytes
            );
            prev = res.report.memory_bytes;
        }
    }
}

#[test]
fn class_s_flops_are_nonzero_where_tabulated() {
    let machine = machine();
    for entry in registry() {
        // Tables 4/6 tabulate "0" for the pure data-motion communication
        // functions; everything else must count real operations.
        if entry.flops_formula.starts_with("0 (") {
            continue;
        }
        let res = run_basic(&entry, &machine, Size::Class(ProblemClass::S));
        assert!(
            res.report.perf.flops > 0,
            "{}: class S recorded zero flops but the paper tabulates {}",
            entry.name,
            entry.flops_formula
        );
    }
}

#[test]
fn comm_inventory_is_class_invariant() {
    let machine = machine();
    for entry in registry() {
        let keys = |class: ProblemClass| -> BTreeSet<String> {
            run_basic(&entry, &machine, Size::Class(class))
                .report
                .comm
                .keys()
                .map(|k| k.to_string())
                .collect()
        };
        let s = keys(ProblemClass::S);
        let w = keys(ProblemClass::W);
        assert_eq!(
            s, w,
            "{}: communication inventory changed between class S and W",
            entry.name
        );
    }
}

#[test]
fn class_s_matches_legacy_small_exactly() {
    // Class S is defined to be the legacy Small problem parameter for
    // parameter; the recorded metrics must agree exactly.
    let machine = machine();
    for entry in registry() {
        let small = run_basic(&entry, &machine, Size::Small);
        let class_s = run_basic(&entry, &machine, Size::Class(ProblemClass::S));
        assert_eq!(
            small.report.problem, class_s.report.problem,
            "{}: class S solves a different problem than legacy Small",
            entry.name
        );
        assert_eq!(small.report.perf.flops, class_s.report.perf.flops);
        assert_eq!(small.report.memory_bytes, class_s.report.memory_bytes);
        assert_eq!(small.report.comm, class_s.report.comm);
    }
}
