//! The table generators must regenerate every table of the paper with
//! the expected structure and content.

use dpf::core::Machine;
use dpf::suite::tables;
use dpf::suite::Size;

#[test]
fn table1_reproduces_the_version_matrix() {
    let t = tables::table1();
    // All 32 rows, every one marked basic.
    let rows: Vec<&str> = t.lines().skip(2).collect();
    assert_eq!(rows.len(), 32);
    for row in rows {
        assert!(row.contains('x'), "row missing basic mark: {row}");
    }
    // Spot-check the reconstruction (count mark columns, not the name).
    let marks = |l: &str| l.split_whitespace().skip(1).filter(|w| *w == "x").count();
    assert!(t
        .lines()
        .any(|l| l.starts_with("matrix-vector") && marks(l) == 4));
    assert!(t
        .lines()
        .any(|l| l.starts_with("qcd-kernel") && marks(l) == 2));
}

#[test]
fn table2_and_5_show_serial_and_parallel_axes() {
    let t2 = tables::table2();
    assert!(t2.contains("pcr"));
    assert!(t2.contains(":serial"));
    let t5 = tables::table5();
    assert!(t5.contains("boson"));
    assert!(t5.contains("X(:serial,:,:)"));
    // All 8 linalg + 20 app rows.
    assert_eq!(t2.lines().count(), 2 + 8);
    assert_eq!(t5.lines().count(), 2 + 20);
}

#[test]
fn table3_and_7_classify_measured_patterns() {
    let m = Machine::cm5(8);
    let t3 = tables::table3(&m);
    assert!(t3.contains("Reduction"));
    assert!(t3.contains("lu"));
    assert!(t3.contains("AAPC"));
    let t7 = tables::table7(&m);
    assert!(t7.contains("Stencil"));
    assert!(t7.contains("diff-3D"));
    assert!(t7.contains("Sort"));
    assert!(t7.contains("qptransport"));
    assert!(t7.contains("AABC"));
    assert!(t7.contains("Butterfly"));
}

#[test]
fn table4_and_6_report_measured_against_paper_formulas() {
    let m = Machine::cm5(8);
    let t4 = tables::table4(&m, Size::Small);
    assert!(t4.contains("matrix-vector"));
    assert!(t4.contains("2nmi"), "paper formula column missing");
    assert!(t4.contains("direct"));
    let t6 = tables::table6(&m, Size::Small);
    assert!(t6.contains("qcd-kernel"));
    assert!(t6.contains("606"));
    assert!(t6.contains("strided"));
    assert!(t6.contains("indirect"));
}

#[test]
fn table8_reproduces_technique_rows() {
    let t = tables::table8();
    for needle in [
        "chained CSHIFT",
        "Array sections",
        "CMSSL partitioned gather utility",
        "FORALL w/ SUM",
        "SPREAD",
        "CMF send overwrite",
    ] {
        assert!(t.contains(needle), "missing technique: {needle}");
    }
}

#[test]
fn perf_report_covers_the_whole_suite_and_passes() {
    let m = Machine::cm5(8);
    let report = tables::perf_report(&m, Size::Small);
    assert_eq!(report.lines().count(), 2 + 32);
    assert!(!report.contains("FAIL"), "{report}");
}

#[test]
fn matvec_layout_table_shows_layout_effect() {
    let m = Machine::cm5(16);
    let t = tables::matvec_layouts_table(&m);
    assert_eq!(t.lines().count(), 2 + 4);
    // Layout (3) keeps the broadcast within-processor: zero off-proc.
    let row3 = t.lines().find(|l| l.contains("(3)")).unwrap();
    assert!(row3.trim_end().ends_with(" 0"), "{row3}");
}

#[test]
fn scalability_table_models_all_benchmarks() {
    let t = tables::scalability_table(Size::Small);
    assert_eq!(t.lines().count(), 2 + 32);
    assert!(t.contains("P=512"));
    // The embarrassingly parallel codes must scale best-in-class.
    let fermion = t.lines().find(|l| l.starts_with("fermion")).unwrap();
    let speedup: f64 = fermion
        .split_whitespace()
        .last()
        .unwrap()
        .trim_end_matches('x')
        .parse()
        .unwrap();
    assert!(speedup > 10.0, "fermion modeled speedup only {speedup}");
}

#[test]
fn efficiency_table_reports_percentages() {
    let m = Machine::cm5(8);
    let t = tables::efficiency_table(&m, Size::Small);
    assert_eq!(t.lines().count(), 2 + 8);
    assert!(t.contains("conj-grad"));
}
