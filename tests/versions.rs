//! The Table 1 version axis: every alternate code path must compute the
//! same answer as the basic version and keep the comm/FLOP accounting
//! consistent.

use dpf::core::Machine;
use dpf::suite::{find, registry, run, Size, Version};

#[test]
fn every_runnable_variant_verifies() {
    let machine = Machine::cm5(8);
    for entry in registry() {
        for variant in entry.variants {
            let res = run(&entry, variant.version, &machine, Size::Small);
            assert!(
                res.report.verify.is_pass(),
                "{} ({}) failed: {}",
                entry.name,
                variant.version,
                res.report.verify
            );
        }
    }
}

#[test]
fn optimized_variants_charge_comparable_flops() {
    // The version axis changes the spelling, not the mathematics: FLOP
    // charges must agree within bookkeeping tolerance.
    let machine = Machine::cm5(8);
    for (name, alt) in [
        ("conj-grad", Version::Optimized),
        ("diff-3D", Version::Optimized),
        ("step4", Version::CDpeac),
        ("matrix-vector", Version::Library),
        ("lu", Version::Cmssl),
    ] {
        let entry = find(name).unwrap();
        let basic = run(&entry, Version::Basic, &machine, Size::Small);
        let tuned = run(&entry, alt, &machine, Size::Small);
        let (fb, ft) = (
            basic.report.perf.flops as f64,
            tuned.report.perf.flops as f64,
        );
        assert!(
            (fb - ft).abs() / fb < 0.15,
            "{name}: basic {fb} vs {alt} {ft}"
        );
    }
}

#[test]
fn variant_count_matches_registry_claims() {
    // Benchmarks with multiple runnable variants.
    for (name, want) in [
        ("matrix-vector", 2usize),
        ("n-body", 2),
        ("pcr", 3),
        ("conj-grad", 2),
        ("diff-3D", 2),
        ("step4", 2),
        ("lu", 2),
    ] {
        let entry = find(name).unwrap();
        assert_eq!(entry.variants.len(), want, "{name}");
    }
}
