//! Suite-level resilience of the SPMD transport: a lossy network must be
//! invisible to the benchmarks (reliable delivery repairs every injected
//! drop/duplicate/reorder/corrupt), an exhausted retransmit budget must
//! surface as a typed, run-failing [`RunOutcome::LinkFailed`], and a killed
//! worker must be survivable through checkpoint/restart.

use dpf::apps::diff_1d;
use dpf::core::{Backend, Ctx, FaultPlan, LinkFaultKind, Machine};
use dpf::suite::{find, registry, run_guarded, run_suite, RunOutcome, Size, SuiteConfig, Version};

fn lossy_cfg(link_rate: f64, seed: u64, retries: u32) -> SuiteConfig {
    let mut faults = FaultPlan::default().with_link_faults(link_rate);
    faults.seed = seed;
    SuiteConfig {
        machine: Machine::cm5(8),
        size: Size::Small,
        faults,
        retries,
        backend: Backend::Spmd,
        ..SuiteConfig::default()
    }
}

/// The acceptance sweep: all 32 benchmarks over 2%-lossy links complete
/// with zero failures, and a second run of the same seed produces a
/// byte-identical outcome table.
#[test]
fn lossy_sweep_recovers_every_benchmark_deterministically() {
    let cfg = lossy_cfg(0.02, 7, 2);
    let first = run_suite(&cfg);
    assert_eq!(
        first.failures(),
        0,
        "lossy sweep had failures:\n{}",
        first.summary()
    );
    let second = run_suite(&cfg);
    assert_eq!(
        first.summary(),
        second.summary(),
        "lossy sweep is not reproducible from its seed"
    );
}

/// With repair disabled (`max_retransmits = 0`) the first dropped frame is
/// a typed link failure: the harness classifies it, the outcome is not a
/// success (so the CLI exits nonzero), and the message names the link.
#[test]
fn exhausted_retransmit_budget_is_a_typed_failure() {
    let entry = find("transpose").unwrap();
    let mut cfg = lossy_cfg(0.5, 11, 0);
    cfg.faults = cfg
        .faults
        .only_link(LinkFaultKind::Drop)
        .with_max_retransmits(0);
    let guarded = run_guarded(&entry, Version::Basic, &cfg);
    let RunOutcome::LinkFailed(msg) = &guarded.outcome else {
        panic!("expected LinkFailed, got {:?}", guarded.outcome);
    };
    assert!(
        msg.contains("link failure") && msg.contains("worker"),
        "failure message lacks link detail: {msg}"
    );
    assert!(
        !guarded.outcome.is_success(),
        "a link failure must fail the run"
    );
}

/// Same failure at the suite level: the row reaches the outcome table as a
/// link failure and counts toward `failures()`, which is what drives the
/// CLI's nonzero exit code.
#[test]
fn link_failed_rows_fail_the_suite() {
    let mut cfg = lossy_cfg(0.5, 11, 0);
    cfg.faults.link_kinds = vec![LinkFaultKind::Drop];
    cfg.faults.max_retransmits = 0;
    cfg.quarantine = registry()
        .iter()
        .map(|e| e.name.to_string())
        .filter(|n| n != "transpose")
        .collect();
    let report = run_suite(&cfg);
    assert!(report.failures() > 0, "link failure did not fail the suite");
    assert!(
        report.summary().contains("link-failure"),
        "summary does not show the link failure:\n{}",
        report.summary()
    );
}

/// The retry harness recovers from a link failure when the final attempt
/// runs with injection disarmed: outcome is Recovered, not LinkFailed.
#[test]
fn retry_harness_recovers_from_link_failure() {
    let entry = find("transpose").unwrap();
    let mut cfg = lossy_cfg(0.5, 11, 1);
    cfg.faults = cfg
        .faults
        .only_link(LinkFaultKind::Drop)
        .with_max_retransmits(0);
    let guarded = run_guarded(&entry, Version::Basic, &cfg);
    assert_eq!(
        guarded.outcome,
        RunOutcome::Recovered { retries: 1 },
        "expected recovery on the disarmed final attempt"
    );
    assert!(guarded.result.is_some(), "recovered run has no report");
}

/// A deterministically killed worker mid-run is survivable: supervision
/// releases the blocked peers, the checkpoint driver restores the last
/// snapshot and replays, and the recovered answer matches a clean run.
#[test]
fn killed_worker_recovers_through_checkpoint_restart() {
    let p = diff_1d::Params {
        nx: 64,
        steps: 6,
        lambda: 0.4,
    };

    // Clean reference run, which also tells us how many SPMD collectives
    // the kernel issues so the kill can land squarely mid-run.
    let clean = Ctx::build(Machine::cm5(4), None, Backend::Spmd);
    let (u_clean, v_clean, s_clean) =
        diff_1d::run_checkpointed(&clean, &p, 2, 0).expect("clean run failed");
    assert!(v_clean.is_pass());
    assert_eq!(s_clean.restores, 0);
    let total = clean.link.collectives();
    assert!(total > 4, "too few collectives to place a mid-run kill");

    let plan = FaultPlan::default().with_kill_worker(1, total / 2);
    let ctx = Ctx::build(Machine::cm5(4), Some(plan), Backend::Spmd);
    let (u, verify, stats) =
        diff_1d::run_checkpointed(&ctx, &p, 2, 4).expect("recovery from worker death failed");
    assert!(verify.is_pass(), "recovered run failed verification");
    assert!(
        stats.restores >= 1,
        "kill injection never fired (restores = {})",
        stats.restores
    );
    assert_eq!(
        u.to_vec(),
        u_clean.to_vec(),
        "recovered answer differs from the clean run"
    );
}
