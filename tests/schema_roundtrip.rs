//! Property tests for the shared JSON schema (`dpf::suite::schema`).
//!
//! The schema is the byte-level contract behind every artifact the
//! campaign engine journals, writes and resumes: both renderers must be
//! fixed points under `parse` (value-identical AND byte-identical), and
//! the parser must reject malformed input with a typed error — never a
//! panic — because `dpf tables --campaign` and `--resume` feed it
//! whatever a crash left on disk.
//!
//! The vendored proptest subset has no recursive tree strategy, so the
//! random `Json` trees come from a hand-rolled SplitMix64 generator
//! driven by a proptest-supplied seed: every case is reproducible from
//! the printed seed alone.

use dpf::suite::schema::Json;
use proptest::prelude::*;

/// SplitMix64: tiny, seedable, and good enough to cover the value space.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A string off a palette that exercises every escaping branch:
/// quotes, backslashes, control characters, multi-byte UTF-8.
fn gen_string(rng: &mut Rng) -> String {
    const PALETTE: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{7f}', 'é', '§', '→', '🦀',
        '/', ':', ',', '{', ']',
    ];
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| PALETTE[rng.below(PALETTE.len() as u64) as usize])
        .collect()
}

/// A finite f64 drawn from raw bits (clamping away inf/NaN), so odd
/// exponents and subnormals hit the shortest-round-trip formatter.
fn gen_float(rng: &mut Rng) -> f64 {
    let f = f64::from_bits(rng.next());
    if f.is_finite() {
        f
    } else {
        (rng.below(2_000_001) as f64 - 1_000_000.0) / 64.0
    }
}

fn gen_value(rng: &mut Rng, depth: usize) -> Json {
    let pick = if depth >= 4 {
        rng.below(5) // scalars only at the depth cap
    } else {
        rng.below(7)
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.below(2) == 1),
        2 => Json::U64(rng.next()),
        3 => Json::F64(gen_float(rng)),
        4 => Json::Str(gen_string(rng)),
        5 => {
            let n = rng.below(5) as usize;
            Json::Arr((0..n).map(|_| gen_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.below(5) as usize;
            Json::Obj(
                (0..n)
                    .map(|i| (format!("{}{i}", gen_string(rng)), gen_value(rng, depth + 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // parse ∘ render is the identity on values, and render is a fixed
    // point on bytes — for both the pretty and the compact renderer.
    #[test]
    fn render_parse_is_the_identity(seed in 0u64..u64::MAX) {
        let value = gen_value(&mut Rng(seed), 0);

        let pretty = value.render();
        let back = Json::parse(&pretty).expect("own pretty output parses");
        prop_assert_eq!(&back, &value);
        prop_assert_eq!(back.render(), pretty);

        let compact = value.render_compact();
        prop_assert!(!compact.contains('\n'), "compact output is one line");
        let back = Json::parse(&compact).expect("own compact output parses");
        prop_assert_eq!(&back, &value);
        prop_assert_eq!(back.render_compact(), compact);
    }

    // Every strict byte-prefix of a rendered document is rejected with
    // an error (wrapping in an object means no prefix is a complete
    // value), and none of them panics — the torn-artifact case.
    #[test]
    fn truncation_at_every_boundary_is_a_clean_error(seed in 0u64..u64::MAX) {
        let value = Json::Obj(vec![("v".to_string(), gen_value(&mut Rng(seed), 1))]);
        let text = value.render_compact();
        for (cut, _) in text.char_indices().skip(1) {
            let err = Json::parse(&text[..cut]);
            prop_assert!(err.is_err(), "prefix of {cut} bytes parsed: {text:?}");
            prop_assert!(err.unwrap_err().contains("at byte"));
        }
        prop_assert!(Json::parse("").is_err());
    }

    // Trailing garbage after a complete document is an error naming the
    // offending offset.
    #[test]
    fn trailing_garbage_is_rejected(seed in 0u64..u64::MAX) {
        let value = gen_value(&mut Rng(seed), 0);
        let mut text = value.render_compact();
        let cut = text.len();
        text.push_str(" x");
        let err = Json::parse(&text).unwrap_err();
        prop_assert!(err.contains("at byte"), "{err:?}");
        prop_assert!(err.contains(&(cut + 1).to_string()), "{err:?}");
    }

    // Single-byte corruption of a valid document must produce *either*
    // a parse (some mutations stay legal JSON) or an error — never a
    // panic, hang or abort. This is the journal's checksum-miss backstop.
    #[test]
    fn mutated_documents_never_panic(seed in 0u64..u64::MAX) {
        let mut rng = Rng(seed);
        let value = gen_value(&mut rng, 0);
        let text = value.render_compact();
        if text.is_empty() {
            return Ok(());
        }
        let mut bytes = text.clone().into_bytes();
        let at = rng.below(bytes.len() as u64) as usize;
        bytes[at] = (rng.next() & 0x7f) as u8; // keep it ASCII: stays a str
        if let Ok(mutated) = String::from_utf8(bytes) {
            let _ = Json::parse(&mutated);
        }
    }
}
