//! Tables 3 and 7: every benchmark's *measured* communication pattern set
//! must contain exactly the dominating patterns its registry entry (and
//! the paper) declares.

use std::collections::BTreeSet;

use dpf::core::{CommPattern, Machine};
use dpf::suite::{registry, run_basic, Size};

#[test]
fn measured_patterns_cover_the_declared_set() {
    let machine = Machine::cm5(8);
    for entry in registry() {
        let res = run_basic(&entry, &machine, Size::Small);
        let measured: BTreeSet<CommPattern> = res.report.comm.keys().map(|k| k.pattern).collect();
        for want in entry.patterns {
            assert!(
                measured.contains(want),
                "{}: declared pattern {want} was not recorded (measured: {measured:?})",
                entry.name
            );
        }
    }
}

#[test]
fn embarrassingly_parallel_codes_record_no_communication() {
    // Paper §4: "gmo and fermion are the only two embarrassingly
    // parallel" application codes.
    let machine = Machine::cm5(8);
    for name in ["gmo", "fermion"] {
        let entry = dpf::suite::find(name).unwrap();
        let res = run_basic(&entry, &machine, Size::Small);
        assert!(
            res.report.comm.is_empty(),
            "{name} recorded communication: {:?}",
            res.report.comm.keys().collect::<Vec<_>>()
        );
    }
}

#[test]
fn stencil_codes_do_not_leak_constituent_shifts() {
    // Table 6 counts "1 7-point Stencil" for diff-3D: the composite
    // stencil must be recorded once per step with its internal shifts
    // suppressed.
    let entry = dpf::suite::find("diff-3D").unwrap();
    let res = run_basic(&entry, &Machine::cm5(8), Size::Small);
    let stencils = res
        .report
        .comm
        .iter()
        .filter(|(k, _)| k.pattern == CommPattern::Stencil)
        .map(|(_, s)| s.calls)
        .sum::<u64>();
    assert_eq!(stencils, res.output.iterations);
    let cshifts = res
        .report
        .comm
        .iter()
        .filter(|(k, _)| k.pattern == CommPattern::Cshift)
        .count();
    assert_eq!(cshifts, 0, "stencil constituents leaked as CSHIFTs");
}

#[test]
fn aapc_rank_classification_matches_transpose() {
    // Table 3 classifies the fft AAPC by rank; the transpose benchmark's
    // AAPC must be recorded as 2-D to 2-D.
    let entry = dpf::suite::find("transpose").unwrap();
    let res = run_basic(&entry, &Machine::cm5(8), Size::Small);
    for key in res.report.comm.keys() {
        assert_eq!(key.pattern, CommPattern::Aapc);
        assert_eq!((key.src_rank, key.dst_rank), (2, 2));
    }
}

#[test]
fn table6_comm_counts_for_fixed_count_codes() {
    // Codes whose per-iteration communication count is exact in Table 6.
    let machine = Machine::cm5(8);
    let cases: [(&str, CommPattern, u64); 4] = [
        ("step4", CommPattern::Cshift, 128),
        ("rp", CommPattern::Cshift, 12), // per iteration; setup adds 12 once
        ("ellip-2D", CommPattern::Cshift, 4),
        ("fem-3D", CommPattern::Gather, 1),
    ];
    for (name, pattern, per_iter) in cases {
        let entry = dpf::suite::find(name).unwrap();
        let res = run_basic(&entry, &machine, Size::Small);
        let calls: u64 = res
            .report
            .comm
            .iter()
            .filter(|(k, _)| k.pattern == pattern)
            .map(|(_, s)| s.calls)
            .sum();
        let iters = res.output.iterations;
        assert!(
            calls == per_iter * iters || calls == per_iter * (iters + 1),
            "{name}: {calls} {pattern} calls over {iters} iterations (want {per_iter}/iter)"
        );
    }
}
