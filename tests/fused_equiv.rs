#![recursion_limit = "512"]
//! Fused-vs-eager equivalence: evaluating a deferred [`Expr`] graph with
//! the fusing evaluator must be *bit-identical* to running the same
//! chain through the eager API — both the results and the recorded §1.5
//! metrics (communication-event maps and FLOP counts) — over random
//! shapes, machine sizes and shift amounts, on both the Virtual and the
//! SPMD backend.

use dpf::array::{AxisKind, DistArray, Expr, PAR, SER};
use dpf::comm::{cshift, eoshift, fuse};
use dpf::core::{Backend, Ctx, Machine};
use proptest::prelude::*;

fn ctx(p: usize, backend: Backend) -> Ctx {
    Ctx::with_backend(Machine::cm5(p), backend)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Assert the fused context saw exactly the eager context's metrics.
fn assert_metrics_equal(ec: &Ctx, fc: &Ctx) {
    assert_eq!(
        ec.instr.comm_snapshot(),
        fc.instr.comm_snapshot(),
        "fused evaluation changed the recorded communication events"
    );
    assert_eq!(
        ec.instr.flops(),
        fc.instr.flops(),
        "fused evaluation changed the recorded FLOP count"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // 1-D chain: two shifts (cyclic + end-off) feeding an elementwise
    // chain, swept over sizes, machine sizes and both backends.
    #[test]
    fn fused_1d_chain_matches_eager(
        n in 1usize..300,
        p in 1usize..9,
        s1 in -10isize..10,
        s2 in -10isize..10,
        spmd in 0usize..2,
    ) {
        let backend = if spmd == 1 { Backend::Spmd } else { Backend::Virtual };
        let ec = ctx(p, backend);
        let fc = ctx(p, backend);
        let mk = |c: &Ctx| DistArray::<f64>::from_fn(c, &[n], &[PAR], |i| (i[0] as f64).sin() + 0.25);
        let ae = mk(&ec);
        let af = mk(&fc);

        let t1 = cshift(&ec, &ae, 0, s1);
        let t2 = ae.zip_map(&ec, 1, &t1, |x, y| x * y + 0.5);
        let t3 = eoshift(&ec, &ae, 0, s2, -1.0);
        let t4 = t2.zip_map(&ec, 2, &t3, |x, y| x - 2.0 * y);
        let eager = t4.map(&ec, 1, f64::abs);

        let e = Expr::leaf(&af)
            .zip(Expr::leaf(&af).shift(0, s1), 1, |x, y| x * y + 0.5)
            .zip(Expr::leaf(&af).eoshift(0, s2, -1.0), 2, |x, y| x - 2.0 * y)
            .map(1, f64::abs);
        let fused = fuse::eval(&fc, &e);

        prop_assert_eq!(bits(&eager.to_vec()), bits(&fused.to_vec()));
        assert_metrics_equal(&ec, &fc);
        if backend == Backend::Virtual {
            prop_assert_eq!(fc.link.messages(), 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // 2-D chain with shifts along both axes and a mixed serial/parallel
    // layout — exercises the strided (non-contiguous) shift-on-read path.
    #[test]
    fn fused_2d_chain_matches_eager(
        rows in 1usize..24,
        cols in 1usize..24,
        p in 1usize..9,
        s0 in -5isize..5,
        s1 in -5isize..5,
        serial_inner in 0usize..2,
        spmd in 0usize..2,
    ) {
        let backend = if spmd == 1 { Backend::Spmd } else { Backend::Virtual };
        let axes: [AxisKind; 2] = if serial_inner == 1 { [PAR, SER] } else { [PAR, PAR] };
        let ec = ctx(p, backend);
        let fc = ctx(p, backend);
        let mk = |c: &Ctx| {
            DistArray::<f64>::from_fn(c, &[rows, cols], &axes, |i| (i[0] * cols + i[1]) as f64 * 0.75)
        };
        let ae = mk(&ec);
        let af = mk(&fc);

        let t1 = cshift(&ec, &ae, 0, s0);
        let t2 = cshift(&ec, &ae, 1, s1);
        let t3 = t1.zip_map(&ec, 2, &t2, |a, b| 0.5 * (a + b));
        let eager = t3.zip_map(&ec, 1, &ae, |m, x| m - x);

        let e = Expr::leaf(&af)
            .shift(0, s0)
            .zip(Expr::leaf(&af).shift(1, s1), 2, |a, b| 0.5 * (a + b))
            .zip(Expr::leaf(&af), 1, |m, x| m - x);
        let fused = fuse::eval(&fc, &e);

        prop_assert_eq!(bits(&eager.to_vec()), bits(&fused.to_vec()));
        assert_metrics_equal(&ec, &fc);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Broadcast + row fold against a direct reference computation, with
    // the FLOP charge exactly `Σ node_flops · node_len`.
    #[test]
    fn fused_bcast_fold_matches_reference(
        rows in 1usize..20,
        cols in 1usize..20,
        p in 1usize..9,
    ) {
        let c = ctx(p, Backend::Virtual);
        let m = DistArray::<f64>::from_fn(&c, &[rows, cols], &[PAR, PAR], |i| {
            (i[0] * cols + i[1]) as f64 * 0.5 - 1.0
        });
        let v = DistArray::<f64>::from_fn(&c, &[rows], &[PAR], |i| i[0] as f64 + 0.25);
        let e = Expr::leaf(&m).zip(Expr::leaf(&v).bcast(1, cols), 1, |a, b| a - b);
        let acc = fuse::fold_rows(&c, &e, 0.0, |a, x| a + x);

        let mv = m.to_vec();
        let vv = v.to_vec();
        let mut want = vec![0.0f64; rows];
        for i in 0..rows {
            for j in 0..cols {
                want[i] += mv[i * cols + j] - vv[i];
            }
        }
        prop_assert_eq!(bits(&acc), bits(&want));
        prop_assert_eq!(c.instr.flops(), (rows * cols) as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Shift of a compound subexpression (forcing materialization into a
    // pooled buffer) still matches the eager composition bit for bit.
    #[test]
    fn fused_shift_of_compound_matches_eager(
        n in 1usize..200,
        p in 1usize..9,
        s in -6isize..6,
        spmd in 0usize..2,
    ) {
        let backend = if spmd == 1 { Backend::Spmd } else { Backend::Virtual };
        let ec = ctx(p, backend);
        let fc = ctx(p, backend);
        let mk = |c: &Ctx| DistArray::<f64>::from_fn(c, &[n], &[PAR], |i| (i[0] as f64).cos());
        let ae = mk(&ec);
        let af = mk(&fc);

        let sq = ae.map(&ec, 1, |x| x * x);
        let sh = cshift(&ec, &sq, 0, s);
        let eager = sh.zip_map(&ec, 1, &ae, |a, b| a + b);

        let e = Expr::leaf(&af)
            .map(1, |x| x * x)
            .shift(0, s)
            .zip(Expr::leaf(&af), 1, |a, b| a + b);
        let fused = fuse::eval(&fc, &e);

        prop_assert_eq!(bits(&eager.to_vec()), bits(&fused.to_vec()));
        assert_metrics_equal(&ec, &fc);
    }
}

/// Above `PAR_THRESHOLD` the fused sweep may split across rayon workers;
/// results (and metrics) must not depend on which path ran.
#[test]
fn fused_parallel_path_matches_eager() {
    let ec = ctx(4, Backend::Virtual);
    let fc = ctx(4, Backend::Virtual);
    let n = 40_000usize;
    let mk = |c: &Ctx| DistArray::<f64>::from_fn(c, &[n], &[PAR], |i| (i[0] % 97) as f64 * 0.125);
    let ae = mk(&ec);
    let af = mk(&fc);

    let t1 = cshift(&ec, &ae, 0, 1);
    let t2 = cshift(&ec, &ae, 0, -1);
    let lap = t1
        .zip_map(&ec, 2, &t2, |a, b| a + b)
        .zip_map(&ec, 2, &ae, |s, u| s - 2.0 * u);
    let eager = lap.map(&ec, 1, |x| 0.25 * x);

    let e = Expr::leaf(&af)
        .shift(0, 1)
        .zip(Expr::leaf(&af).shift(0, -1), 2, |a, b| a + b)
        .zip(Expr::leaf(&af), 2, |s, u| s - 2.0 * u)
        .map(1, |x| 0.25 * x);
    let fused = fuse::eval(&fc, &e);

    assert_eq!(bits(&eager.to_vec()), bits(&fused.to_vec()));
    assert_metrics_equal(&ec, &fc);
}
