//! Differential backend equivalence: every dpf-comm primitive must produce
//! element-identical results, and byte-identical §1.5 metric accounting,
//! under the Virtual (rayon, shared-memory) and Spmd (one worker thread per
//! virtual processor, explicit message passing) backends.
//!
//! The properties sweep random problem sizes, shapes and machine sizes —
//! including `nprocs = 1` (no distribution at all) and, in the targeted
//! tests below, `nprocs = 64` (far more virtual processors than physical
//! cores, so workers genuinely interleave).

use dpf::array::{DistArray, PAR, PAR_THRESHOLD, SER};
use dpf::comm::{
    broadcast, broadcast_scalar, cshift, dot, eoshift, gather, gather_combine, gather_nd, get,
    max_all, maxloc_abs, min_all, product_all, scan_add, scan_add_exclusive, scatter,
    scatter_combine, scatter_nd_combine, segmented_copy_scan, segmented_scan_add, send, sort_keys,
    spread, star_stencil, stencil, sum_all, sum_axis, sum_masked, transpose, transpose_axes,
    Combine, StencilBoundary,
};
use dpf::core::{Backend, Ctx, FaultPlan, LinkFaultKind, Machine};
use proptest::prelude::*;
use std::time::Duration;

fn vctx(p: usize) -> Ctx {
    Ctx::new(Machine::cm5(p))
}

fn sctx(p: usize) -> Ctx {
    Ctx::with_backend(Machine::cm5(p), Backend::Spmd)
}

/// An SPMD context whose simulated links misbehave: every frame has a 15%
/// chance of being dropped, duplicated, reordered or corrupted (or only
/// `kind`, when given). The retransmit timer is shortened so timer-repaired
/// tail drops stay cheap inside a property sweep.
fn lossy_sctx(p: usize, seed: u64, kind: Option<LinkFaultKind>) -> Ctx {
    let mut plan = FaultPlan::default().with_link_faults(0.15);
    plan.seed = seed;
    if let Some(kind) = kind {
        plan = plan.only_link(kind);
    }
    let mut ctx = Ctx::build(Machine::cm5(p), Some(plan), Backend::Spmd);
    ctx.link_cfg.rto = Duration::from_millis(2);
    ctx
}

/// Run `op` under both backends on a fresh `p`-processor machine and demand
/// identical results, identical communication-metric maps and identical
/// FLOP counts. Returns the two contexts for extra, test-specific checks.
fn check<T: PartialEq + std::fmt::Debug>(p: usize, op: impl Fn(&Ctx) -> T) -> (Ctx, Ctx) {
    let v = vctx(p);
    let s = sctx(p);
    let rv = op(&v);
    let rs = op(&s);
    assert_eq!(rv, rs, "backend results differ (p={p})");
    assert_eq!(
        v.instr.comm_snapshot(),
        s.instr.comm_snapshot(),
        "comm metrics differ (p={p})"
    );
    assert_eq!(v.instr.flops(), s.instr.flops(), "FLOPs differ (p={p})");
    assert_eq!(
        v.link.messages(),
        0,
        "virtual backend sent channel messages"
    );
    (v, s)
}

/// Like [`check`], but the SPMD side runs over unreliable links. The
/// reliable-delivery protocol must hide every injected fault: results,
/// comm-metric maps and FLOP counts stay identical to the virtual backend.
fn check_lossy<T: PartialEq + std::fmt::Debug>(
    p: usize,
    seed: u64,
    kind: Option<LinkFaultKind>,
    op: impl Fn(&Ctx) -> T,
) -> Ctx {
    let v = vctx(p);
    let s = lossy_sctx(p, seed, kind);
    let rv = op(&v);
    let rs = op(&s);
    assert_eq!(
        rv, rs,
        "lossy spmd result diverges (p={p}, seed={seed}, kind={kind:?})"
    );
    assert_eq!(
        v.instr.comm_snapshot(),
        s.instr.comm_snapshot(),
        "comm metrics differ under link faults (p={p}, seed={seed}, kind={kind:?})"
    );
    assert_eq!(
        v.instr.flops(),
        s.instr.flops(),
        "FLOPs differ under link faults (p={p}, seed={seed}, kind={kind:?})"
    );
    s
}

fn f(i: usize) -> f64 {
    (i % 23) as f64 - 11.0 + (i % 7) as f64 * 0.125
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn shifts_match(n in 1usize..48, shift in -60isize..60, p in 1usize..9) {
        check(p, |ctx| {
            let a = DistArray::<i32>::from_fn(ctx, &[n], &[PAR], |i| i[0] as i32);
            (
                cshift(ctx, &a, 0, shift).to_vec(),
                eoshift(ctx, &a, 0, shift, -1).to_vec(),
            )
        });
    }

    #[test]
    fn shifts_match_2d(r in 1usize..10, c in 1usize..10, shift in -12isize..12, p in 1usize..9) {
        check(p, |ctx| {
            let a = DistArray::<i32>::from_fn(ctx, &[r, c], &[PAR, PAR], |i| {
                (i[0] * 31 + i[1]) as i32
            });
            (
                cshift(ctx, &a, 0, shift).to_vec(),
                cshift(ctx, &a, 1, shift).to_vec(),
                eoshift(ctx, &a, 1, shift, 0).to_vec(),
            )
        });
    }

    #[test]
    fn spread_and_broadcast_match(n in 1usize..24, copies in 1usize..6, p in 1usize..9) {
        check(p, |ctx| {
            let a = DistArray::<f64>::from_fn(ctx, &[n], &[PAR], |i| f(i[0]));
            (
                spread(ctx, &a, 0, copies, PAR).to_vec(),
                broadcast(ctx, &a, 1, copies, PAR).to_vec(),
                broadcast_scalar(ctx, 2.5f64, &[n, copies], &[PAR, PAR]).to_vec(),
            )
        });
    }

    #[test]
    fn whole_array_reductions_match(n in 1usize..200, p in 1usize..9) {
        check(p, |ctx| {
            let a = DistArray::<f64>::from_fn(ctx, &[n], &[PAR], |i| f(i[0]));
            let mask = DistArray::<bool>::from_fn(ctx, &[n], &[PAR], |i| i[0] % 3 != 0);
            (
                sum_all(ctx, &a),
                sum_masked(ctx, &a, &mask),
                max_all(ctx, &a),
                min_all(ctx, &a),
                maxloc_abs(ctx, &a),
            )
        });
        // product over a scaled-down copy so magnitudes stay finite
        check(p, |ctx| {
            let a = DistArray::<f64>::from_fn(ctx, &[n], &[PAR], |i| 1.0 + f(i[0]) * 0.01);
            product_all(ctx, &a)
        });
    }

    #[test]
    fn dot_matches(n in 1usize..300, p in 1usize..9) {
        check(p, |ctx| {
            let a = DistArray::<f64>::from_fn(ctx, &[n], &[PAR], |i| f(i[0]));
            let b = DistArray::<f64>::from_fn(ctx, &[n], &[PAR], |i| f(i[0] + 5) * 0.5);
            dot(ctx, &a, &b)
        });
    }

    #[test]
    fn sum_axis_and_scans_match(r in 1usize..12, c in 1usize..12, axis in 0usize..2, p in 1usize..9) {
        check(p, |ctx| {
            let a = DistArray::<f64>::from_fn(ctx, &[r, c], &[PAR, PAR], |i| f(i[0] * 13 + i[1]));
            (
                sum_axis(ctx, &a, axis).to_vec(),
                scan_add(ctx, &a, axis).to_vec(),
                scan_add_exclusive(ctx, &a, axis).to_vec(),
            )
        });
    }

    #[test]
    fn segmented_scans_match(n in 1usize..60, p in 1usize..9) {
        check(p, |ctx| {
            let a = DistArray::<f64>::from_fn(ctx, &[n], &[PAR], |i| f(i[0]));
            let seg = DistArray::<bool>::from_fn(ctx, &[n], &[PAR], |i| i[0] % 5 == 0);
            (
                segmented_scan_add(ctx, &a, &seg, 0).to_vec(),
                segmented_copy_scan(ctx, &a, &seg, 0).to_vec(),
            )
        });
    }

    #[test]
    fn gather_family_matches(n in 1usize..60, p in 1usize..9) {
        check(p, |ctx| {
            let src = DistArray::<f64>::from_fn(ctx, &[n], &[PAR], |i| f(i[0]));
            let idx = DistArray::<i32>::from_fn(ctx, &[n], &[PAR], |i| ((i[0] * 7 + 3) % n) as i32);
            (
                gather(ctx, &src, &idx).to_vec(),
                get(ctx, &src, &idx).to_vec(),
            )
        });
    }

    #[test]
    fn gather_nd_matches(r in 1usize..10, c in 1usize..10, p in 1usize..9) {
        check(p, |ctx| {
            let src = DistArray::<f64>::from_fn(ctx, &[r, c], &[PAR, PAR], |i| f(i[0] * 17 + i[1]));
            let m = r * c;
            let ci = DistArray::<i32>::from_fn(ctx, &[m], &[PAR], |i| ((i[0] * 3 + 1) % r) as i32);
            let cj = DistArray::<i32>::from_fn(ctx, &[m], &[PAR], |i| ((i[0] * 5 + 2) % c) as i32);
            gather_nd(ctx, &src, &[&ci, &cj]).to_vec()
        });
    }

    #[test]
    fn scatter_family_matches(n in 1usize..60, p in 1usize..9) {
        check(p, |ctx| {
            let src = DistArray::<f64>::from_fn(ctx, &[n], &[PAR], |i| f(i[0]));
            // Deliberately colliding indices: both backends must agree on
            // last-writer-wins order and on combine accumulation order.
            let idx = DistArray::<i32>::from_fn(ctx, &[n], &[PAR], |i| ((i[0] * 3 + 1) % n) as i32);
            let mut plain = DistArray::<f64>::zeros(ctx, &[n], &[PAR]);
            scatter(ctx, &mut plain, &idx, &src);
            let mut sent = DistArray::<f64>::zeros(ctx, &[n], &[PAR]);
            send(ctx, &mut sent, &idx, &src);
            let mut added = DistArray::<f64>::zeros(ctx, &[n], &[PAR]);
            scatter_combine(ctx, &mut added, &idx, &src, Combine::Add);
            let mut maxed = DistArray::<f64>::full(ctx, &[n], &[PAR], f64::MIN);
            scatter_combine(ctx, &mut maxed, &idx, &src, Combine::Max);
            let mut minned = DistArray::<f64>::full(ctx, &[n], &[PAR], f64::MAX);
            scatter_combine(ctx, &mut minned, &idx, &src, Combine::Min);
            let mut deposited = DistArray::<f64>::zeros(ctx, &[n], &[PAR]);
            gather_combine(ctx, &mut deposited, &idx, &src);
            (
                plain.to_vec(),
                sent.to_vec(),
                added.to_vec(),
                maxed.to_vec(),
                minned.to_vec(),
                deposited.to_vec(),
            )
        });
    }

    #[test]
    fn scatter_nd_combine_matches(r in 1usize..10, c in 1usize..10, p in 1usize..9) {
        check(p, |ctx| {
            let m = r * c;
            let src = DistArray::<f64>::from_fn(ctx, &[m], &[PAR], |i| f(i[0]));
            let ci = DistArray::<i32>::from_fn(ctx, &[m], &[PAR], |i| ((i[0] * 3 + 1) % r) as i32);
            let cj = DistArray::<i32>::from_fn(ctx, &[m], &[PAR], |i| ((i[0] * 5 + 2) % c) as i32);
            let mut dst = DistArray::<f64>::zeros(ctx, &[r, c], &[PAR, PAR]);
            scatter_nd_combine(ctx, &mut dst, &[&ci, &cj], &src, Combine::Add);
            dst.to_vec()
        });
    }

    #[test]
    fn transpose_matches(r in 1usize..14, c in 1usize..14, p in 1usize..9) {
        check(p, |ctx| {
            let a = DistArray::<f64>::from_fn(ctx, &[r, c], &[PAR, PAR], |i| f(i[0] * 19 + i[1]));
            transpose(ctx, &a).to_vec()
        });
    }

    #[test]
    fn transpose_axes_3d_matches(d in 1usize..7, p in 1usize..9) {
        check(p, |ctx| {
            let a = DistArray::<f64>::from_fn(ctx, &[d, d + 1, d + 2], &[PAR, PAR, SER], |i| {
                f(i[0] * 37 + i[1] * 5 + i[2])
            });
            transpose_axes(ctx, &a, 0, 1).to_vec()
        });
    }

    #[test]
    fn stencil_matches(n in 2usize..40, p in 1usize..9) {
        check(p, |ctx| {
            let a = DistArray::<f64>::from_fn(ctx, &[n], &[PAR], |i| f(i[0]));
            let pts = star_stencil(1, -2.0, 1.0);
            (
                stencil(ctx, &a, &pts, StencilBoundary::Cyclic).to_vec(),
                stencil(ctx, &a, &pts, StencilBoundary::Fixed(0.25)).to_vec(),
            )
        });
    }

    #[test]
    fn stencil_2d_matches(r in 2usize..12, c in 2usize..12, p in 1usize..9) {
        check(p, |ctx| {
            let a = DistArray::<f64>::from_fn(ctx, &[r, c], &[PAR, PAR], |i| f(i[0] * 11 + i[1]));
            let pts = star_stencil(2, -4.0, 1.0);
            stencil(ctx, &a, &pts, StencilBoundary::Cyclic).to_vec()
        });
    }

    #[test]
    fn primitives_survive_lossy_links(
        n in 4usize..24,
        p in 2usize..9,
        seed in 0u64..4096,
        kind_idx in 0usize..5,
    ) {
        // kind_idx 0..4 targets a single fault kind; 4 is the full mix.
        let kind = LinkFaultKind::ALL.get(kind_idx).copied();
        check_lossy(p, seed, kind, |ctx| {
            let a = DistArray::<f64>::from_fn(ctx, &[n], &[PAR], |i| f(i[0]));
            let idx = DistArray::<i32>::from_fn(ctx, &[n], &[PAR], |i| ((i[0] * 7 + 3) % n) as i32);
            let m = DistArray::<f64>::from_fn(ctx, &[n, n], &[PAR, PAR], |i| f(i[0] * 29 + i[1]));
            let pts = star_stencil(1, -2.0, 1.0);
            (
                cshift(ctx, &a, 0, 3).to_vec(),
                sum_all(ctx, &a),
                dot(ctx, &a, &a),
                scan_add(ctx, &a, 0).to_vec(),
                gather(ctx, &a, &idx).to_vec(),
                transpose(ctx, &m).to_vec(),
                stencil(ctx, &a, &pts, StencilBoundary::Cyclic).to_vec(),
            )
        });
    }

    #[test]
    fn sort_matches(n in 1usize..80, p in 1usize..9) {
        // Sort stays host-side under both backends (documented exception);
        // results and metrics must still agree.
        check(p, |ctx| {
            let a = DistArray::<i32>::from_fn(ctx, &[n], &[PAR], |i| ((i[0] * 37 + 11) % 64) as i32);
            let (sorted, perm) = sort_keys(ctx, &a);
            (sorted.to_vec(), perm.to_vec())
        });
    }
}

/// The dot product above the rayon parallel threshold exercises the
/// chunk-partial protocol that replays the virtual backend's reduce tree;
/// the result must stay bit-identical, not merely approximately equal.
#[test]
fn dot_above_parallel_threshold_is_bit_identical() {
    let n = PAR_THRESHOLD + 1000;
    for p in [2usize, 7, 8] {
        let (_, s) = check(p, |ctx| {
            let a = DistArray::<f64>::from_fn(ctx, &[n], &[PAR], |i| f(i[0]));
            let b = DistArray::<f64>::from_fn(ctx, &[n], &[PAR], |i| f(i[0] + 3) * 0.25);
            dot(ctx, &a, &b).to_bits()
        });
        assert!(
            s.link.payload_bytes() > 0,
            "p={p}: no bytes crossed a channel"
        );
    }
}

/// More virtual processors than this machine has cores: the SPMD executor
/// must still terminate (no deadlock) and agree with the virtual backend.
#[test]
fn oversubscribed_64_workers_agree() {
    let p = 64;
    check(p, |ctx| {
        let a = DistArray::<f64>::from_fn(ctx, &[257], &[PAR], |i| f(i[0]));
        let idx = DistArray::<i32>::from_fn(ctx, &[257], &[PAR], |i| ((i[0] * 7 + 3) % 257) as i32);
        let m = DistArray::<f64>::from_fn(ctx, &[24, 24], &[PAR, PAR], |i| f(i[0] * 29 + i[1]));
        let pts = star_stencil(2, -4.0, 1.0);
        (
            cshift(ctx, &a, 0, 13).to_vec(),
            sum_all(ctx, &a),
            scan_add(ctx, &a, 0).to_vec(),
            gather(ctx, &a, &idx).to_vec(),
            transpose(ctx, &m).to_vec(),
            stencil(ctx, &m, &pts, StencilBoundary::Cyclic).to_vec(),
        )
    });
}

/// A single virtual processor: nothing is distributed, so the SPMD backend
/// must not move any bytes over channels at all.
#[test]
fn single_processor_moves_no_channel_bytes() {
    let (_, s) = check(1, |ctx| {
        let a = DistArray::<f64>::from_fn(ctx, &[100], &[PAR], |i| f(i[0]));
        let idx = DistArray::<i32>::from_fn(ctx, &[100], &[PAR], |i| ((i[0] * 7) % 100) as i32);
        (
            cshift(ctx, &a, 0, 3).to_vec(),
            sum_all(ctx, &a),
            scan_add(ctx, &a, 0).to_vec(),
            gather(ctx, &a, &idx).to_vec(),
        )
    });
    assert_eq!(s.link.payload_bytes(), 0, "p=1 sent payload over channels");
}

/// Benchmark-level metric parity: a sample of benchmarks from each paper
/// group, run through the harness under both backends, must report the
/// identical `(pattern, src_rank, dst_rank) → {calls, elements, bytes}`
/// map, the identical FLOP count and the identical memory accounting.
#[test]
fn benchmark_comm_metrics_are_backend_invariant() {
    use dpf::suite::{find, run_on, Size, Version};
    // All four §2 communication functions, plus samples of the linear
    // algebra and application groups covering every comm pattern family.
    let sample = [
        "gather",
        "reduction",
        "scatter",
        "transpose",
        "matrix-vector",
        "conj-grad",
        "fft",
        "pcr",
        "step4",
        "ellip-2D",
        "diff-3D",
        "pic-simple",
        "n-body",
        "wave-1D",
    ];
    let machine = Machine::cm5(8);
    for name in sample {
        let entry = find(name).unwrap();
        let rv = run_on(
            &entry,
            Version::Basic,
            &machine,
            Size::Small,
            Backend::Virtual,
        );
        let rs = run_on(&entry, Version::Basic, &machine, Size::Small, Backend::Spmd);
        assert!(rv.report.verify.is_pass(), "{name} failed under virtual");
        assert!(rs.report.verify.is_pass(), "{name} failed under spmd");
        assert_eq!(rv.report.comm, rs.report.comm, "{name}: comm maps differ");
        assert_eq!(
            rv.report.perf.flops, rs.report.perf.flops,
            "{name}: FLOPs differ"
        );
        assert_eq!(
            rv.report.memory_bytes, rs.report.memory_bytes,
            "{name}: memory accounting differs"
        );
    }
}

/// The §1.5 link accounting stays *logical* under faults: a lossy run
/// reports exactly the messages and payload bytes a clean run reports —
/// retransmissions, duplicates and acks live in their own counters — while
/// the fault counters prove the injector really fired.
#[test]
fn lossy_links_keep_logical_meters_invariant() {
    let workload = |ctx: &Ctx| {
        let a = DistArray::<f64>::from_fn(ctx, &[2048], &[PAR], |i| f(i[0]));
        let m = DistArray::<f64>::from_fn(ctx, &[32, 32], &[PAR, PAR], |i| f(i[0] * 31 + i[1]));
        (
            cshift(ctx, &a, 0, 5).to_vec(),
            sum_all(ctx, &a),
            transpose(ctx, &m).to_vec(),
            scan_add(ctx, &a, 0).to_vec(),
        )
    };
    let clean = sctx(8);
    let rv = workload(&clean);
    let lossy = check_lossy(8, 7, None, workload);
    assert_eq!(rv, workload(&vctx(8)), "clean spmd diverged from virtual");
    assert_eq!(
        clean.link.messages(),
        lossy.link.messages(),
        "link faults leaked into the logical message count"
    );
    assert_eq!(
        clean.link.payload_bytes(),
        lossy.link.payload_bytes(),
        "link faults leaked into the logical payload bytes"
    );
    assert!(lossy.link.link_faults() > 0, "no link faults fired");
    assert!(lossy.link.retransmits() > 0, "no retransmissions happened");
    assert!(lossy.link.acks() > 0, "no acks flowed");
    assert_eq!(clean.link.retransmits(), 0);
    assert_eq!(clean.link.link_faults(), 0);
}

/// Every transport counter — including the retransmitted-byte and
/// per-kind fault tallies — is byte-reproducible from the fault seed.
#[test]
fn lossy_transport_accounting_is_reproducible() {
    let run = || {
        let s = lossy_sctx(8, 99, None);
        let a = DistArray::<f64>::from_fn(&s, &[1024], &[PAR], |i| f(i[0]));
        let m = DistArray::<f64>::from_fn(&s, &[24, 24], &[PAR, PAR], |i| f(i[0] * 17 + i[1]));
        let r = (
            cshift(&s, &a, 0, 9).to_vec(),
            transpose(&s, &m).to_vec(),
            sum_all(&s, &a),
        );
        // Ack/nack *control-frame* counts depend on thread scheduling (a
        // cumulative ack covers however many frames arrived before it
        // flushed; a gap may be timer-repaired before it is ever nacked),
        // so only their presence is asserted. Every data-plane counter —
        // including the retransmission tallies — is seed-reproducible.
        assert!(s.link.acks() > 0, "no acks flowed");
        let meters = vec![
            s.link.messages(),
            s.link.payload_bytes(),
            s.link.retransmits(),
            s.link.retransmitted_bytes(),
            s.link.link_faults(),
            s.link.faults_dropped(),
            s.link.faults_duplicated(),
            s.link.faults_reordered(),
            s.link.faults_corrupted(),
            s.link.duplicates_discarded(),
            s.link.crc_rejects(),
        ];
        (r, meters)
    };
    let (r1, m1) = run();
    let (r2, m2) = run();
    assert_eq!(r1, r2, "lossy results are not reproducible");
    assert_eq!(m1, m2, "lossy transport accounting is not reproducible");
}

/// Deterministic fault injection is backend-independent: the same plan on
/// the same seed must produce a byte-identical suite outcome table twice
/// in a row under the SPMD backend.
#[test]
fn spmd_fault_injection_is_deterministic() {
    use dpf::suite::{run_suite, Size, SuiteConfig};
    use dpf::FaultPlan;
    let cfg = SuiteConfig {
        machine: Machine::cm5(8),
        size: Size::Small,
        faults: FaultPlan::new(0.01, 42),
        backend: Backend::Spmd,
        ..SuiteConfig::default()
    };
    let first = run_suite(&cfg).summary();
    let second = run_suite(&cfg).summary();
    assert_eq!(first, second, "fault outcomes are not reproducible");
}

/// On a genuinely distributed layout the SPMD backend's link meter must
/// show traffic: the bytes the Instr reports are bytes that actually
/// crossed a channel, not a model.
#[test]
fn spmd_backend_moves_real_bytes() {
    let s = sctx(8);
    let a = DistArray::<f64>::from_fn(&s, &[4096], &[PAR], |i| f(i[0]));
    let shifted = cshift(&s, &a, 0, 1);
    assert_eq!(shifted.to_vec()[0], f(1));
    assert!(s.link.messages() > 0, "no messages crossed the channels");
    assert!(
        s.link.payload_bytes() > 0,
        "no payload crossed the channels"
    );
}
