//! Self-healing SPMD, end to end: a worker killed mid-run is respawned
//! in place, rehydrated from its buddy's replica, and the healed run is
//! bit-identical — results *and* §1.5 logical metrics — to a clean one.
//! Corrupted replicas must fall back to harness restart (never wrong
//! answers), and the chaos soak must be a pure function of its seed.

use std::time::Duration;

use dpf::core::{Backend, Machine, RecoverMode};
use dpf::suite::{run_guarded, run_soak, RunOutcome, Size, SoakConfig, SuiteConfig, Version};

fn spmd_cfg(nprocs: usize) -> SuiteConfig {
    SuiteConfig {
        machine: Machine::cm5(nprocs),
        size: Size::Small,
        backend: Backend::Spmd,
        timeout: Duration::from_secs(300),
        ..SuiteConfig::default()
    }
}

/// Everything about a completed run that must be fault-invariant: the
/// verification outcome, the output characterization, and the §1.5
/// logical metrics (FLOPs, memory, the whole comm-pattern table).
/// Wall-clock perf fields are deliberately excluded.
fn logical_fingerprint(res: &dpf::suite::GuardedResult) -> String {
    let r = res.result.as_ref().expect("run completed");
    format!(
        "verify={:?} problem={} points={} iters={} flops={} mem={} comm={:?}",
        r.output.verify,
        r.output.problem,
        r.output.points,
        r.output.iterations,
        r.report.perf.flops,
        r.report.memory_bytes,
        r.report.comm
    )
}

fn healed_matches_clean(name: &str, nprocs: usize, kill: (usize, u64)) {
    let entry = dpf::find(name).unwrap();
    let clean = run_guarded(&entry, Version::Basic, &spmd_cfg(nprocs));
    assert_eq!(clean.outcome, RunOutcome::Completed, "{name} clean run");

    let mut cfg = spmd_cfg(nprocs);
    cfg.faults = cfg
        .faults
        .with_kill_worker(kill.0, kill.1)
        .with_recover(RecoverMode::InRun);
    let healed = run_guarded(&entry, Version::Basic, &cfg);
    match healed.outcome {
        RunOutcome::Healed {
            respawns,
            epochs_rewound,
        } => {
            assert!(respawns >= 1, "{name}: kill must cost at least one respawn");
            assert!(epochs_rewound >= 1, "{name}: heal must rewind an epoch");
        }
        other => panic!("{name}: expected in-run heal, got {other}"),
    }
    assert_eq!(healed.attempts, 1, "{name}: healing is not a restart");
    assert_eq!(
        logical_fingerprint(&healed),
        logical_fingerprint(&clean),
        "{name}: healed run must be bit-identical to clean (results and §1.5 metrics)"
    );
}

#[test]
fn kill_mid_run_heals_bit_identically_small_procs() {
    healed_matches_clean("diff-1D", 4, (1, 2));
}

#[test]
fn kill_mid_run_heals_bit_identically_64_worker_oversubscription() {
    healed_matches_clean("diff-1D", 64, (37, 3));
}

/// A corrupted buddy replica must never rehydrate: the CRC check turns
/// the heal into a typed `ReplicaCorrupt` abort, and the harness falls
/// back to checkpoint/restart — one retry, right answer, reported as
/// `recovered` (restart), not `healed` (in-run).
#[test]
fn corrupt_replica_falls_back_to_harness_restart() {
    let entry = dpf::find("diff-1D").unwrap();
    let mut cfg = spmd_cfg(4);
    cfg.retries = 2;
    cfg.faults = cfg
        .faults
        .with_kill_worker(1, 2)
        .with_recover(RecoverMode::InRun)
        .with_replica_corrupt();
    let res = run_guarded(&entry, Version::Basic, &cfg);
    match res.outcome {
        RunOutcome::Recovered { retries } => assert!(retries >= 1),
        other => panic!("expected restart fallback, got {other}"),
    }
    let r = res.result.as_ref().expect("fallback attempt completed");
    assert!(
        r.output.verify.is_pass(),
        "never a wrong answer: {:?}",
        r.output.verify
    );
}

/// Under `--recover off` a worker death is terminal: no in-run heal,
/// and the harness refuses to burn retries on it.
#[test]
fn recover_off_makes_worker_death_terminal() {
    let entry = dpf::find("diff-1D").unwrap();
    let mut cfg = spmd_cfg(4);
    cfg.retries = 3;
    cfg.faults = cfg
        .faults
        .with_kill_worker(1, 2)
        .with_recover(RecoverMode::Off);
    let res = run_guarded(&entry, Version::Basic, &cfg);
    assert!(
        matches!(res.outcome, RunOutcome::Panicked { .. }),
        "got {}",
        res.outcome
    );
    assert_eq!(res.attempts, 1, "terminal failure must not retry");
}

/// The soak summary is a pure function of its configuration: same seed
/// twice → byte-identical text; a different seed draws different kill
/// schedules.
#[test]
fn soak_summary_is_byte_identical_for_the_same_seed() {
    let mut base = spmd_cfg(4);
    base.faults.recover = RecoverMode::InRun;
    let cfg = SoakConfig {
        base,
        iterations: 1,
        kill_rate: 0.2,
        seed: 7,
    };
    let a = run_soak(&cfg);
    let b = run_soak(&cfg);
    assert_eq!(a.summary(), b.summary(), "same seed must replay exactly");
    assert_eq!(a.failures(), 0, "soak under in-run recovery must be clean");
    assert!(
        a.healed() >= 1,
        "rate 0.2 over 32 benchmarks must heal once"
    );
    let mut other = cfg.clone();
    other.seed = 8;
    assert_ne!(run_soak(&other).summary(), a.summary(), "seed must matter");
}
