//! End-to-end integration: every benchmark in the registry runs and
//! verifies on a virtual CM-5, and its report carries the full §1.5
//! metric set.

use dpf::core::Machine;
use dpf::suite::{registry, run_basic, Group, Size};

#[test]
fn all_32_benchmarks_run_and_verify() {
    let machine = Machine::cm5(8);
    for entry in registry() {
        let res = run_basic(&entry, &machine, Size::Small);
        assert!(
            res.report.verify.is_pass(),
            "{} failed verification: {}",
            entry.name,
            res.report.verify
        );
        assert!(
            res.report.perf.elapsed.as_nanos() > 0,
            "{} reported zero elapsed time",
            entry.name
        );
        assert!(res.output.points > 0, "{} reported zero points", entry.name);
    }
}

#[test]
fn communication_codes_move_data_off_processor() {
    // The §2 codes exist to exercise the network: on a multi-processor
    // machine they must report nonzero off-processor volume.
    let machine = Machine::cm5(16);
    for entry in registry()
        .iter()
        .filter(|e| e.group == Group::Communication)
    {
        let res = run_basic(entry, &machine, Size::Small);
        assert!(
            res.report.offproc_bytes() > 0,
            "{} moved nothing off-processor",
            entry.name
        );
    }
}

#[test]
fn single_processor_machine_reports_no_offproc_traffic_for_shifts() {
    // With one virtual processor nothing crosses processor boundaries in
    // the shift/stencil codes.
    let machine = Machine::cm5(1);
    for name in ["step4", "diff-3D", "ellip-2D"] {
        let entry = dpf::suite::find(name).unwrap();
        let res = run_basic(&entry, &machine, Size::Small);
        assert_eq!(
            res.report.offproc_bytes(),
            0,
            "{name} reported off-proc bytes on a 1-processor machine"
        );
    }
}

#[test]
fn flop_counts_are_machine_independent() {
    // The FLOP conventions are analytic: the count must not depend on the
    // virtual machine size (deterministic benchmarks only — iterative
    // solvers may take identical paths too since compute is identical).
    for name in ["matrix-vector", "fft", "diff-3D", "step4", "lu", "gmo"] {
        let entry = dpf::suite::find(name).unwrap();
        let f1 = run_basic(&entry, &Machine::cm5(1), Size::Small)
            .report
            .perf
            .flops;
        let f32 = run_basic(&entry, &Machine::cm5(32), Size::Small)
            .report
            .perf
            .flops;
        assert_eq!(f1, f32, "{name} FLOPs changed with machine size");
    }
}

#[test]
fn results_are_deterministic_across_runs() {
    for name in ["conj-grad", "qcd-kernel", "pic-gather-scatter"] {
        let entry = dpf::suite::find(name).unwrap();
        let a = run_basic(&entry, &Machine::cm5(4), Size::Small);
        let b = run_basic(&entry, &Machine::cm5(4), Size::Small);
        assert_eq!(a.report.perf.flops, b.report.perf.flops, "{name}");
        assert_eq!(a.report.comm_calls(), b.report.comm_calls(), "{name}");
    }
}

#[test]
fn phase_segments_are_reported_for_segmented_codes() {
    // The paper times lu/qr factor and solve separately (§1.5).
    for (name, phases) in [
        ("lu", vec!["lu:factor", "lu:solve"]),
        ("qr", vec!["qr:factor", "qr:solve"]),
    ] {
        let entry = dpf::suite::find(name).unwrap();
        let res = run_basic(&entry, &Machine::cm5(4), Size::Small);
        let got: Vec<String> = res.report.phases.iter().map(|p| p.name.clone()).collect();
        assert_eq!(got, phases, "{name} phases");
        for p in &res.report.phases {
            assert!(p.flops > 0, "{name}/{} recorded no FLOPs", p.name);
        }
    }
}
