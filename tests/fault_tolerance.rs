//! Fault tolerance, end to end: deterministic injection, detection by
//! verification, checkpoint/restart recovery, and the guarded suite
//! sweep that the CI smoke job drives through `dpf all`.

use std::time::Duration;

use dpf::core::{derive_seed, Ctx, FaultKind, FaultPlan, Machine};
use dpf::suite::{run_guarded, run_suite, RunOutcome, Size, SuiteConfig, Version};

fn machine() -> Machine {
    Machine::cm5(8)
}

// ------------------------------------------------------------ determinism

#[test]
fn same_seed_gives_identical_fault_sites() {
    let entry = dpf::find("conj-grad").unwrap();
    let variant = entry.variant(Version::Basic).unwrap();
    let plan = FaultPlan::new(0.05, 42).only(FaultKind::NanPoison);
    let records = |plan: FaultPlan| {
        let ctx = Ctx::with_faults(machine(), plan);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (variant.run)(&ctx, Size::Small)
        }));
        ctx.faults.records()
    };
    let a = records(plan.clone());
    let b = records(plan.clone());
    assert!(!a.is_empty(), "plan injected nothing");
    assert_eq!(a, b, "same seed must hit the same sites");
    // A different seed draws a different decision stream.
    let mut other = plan;
    other.seed = 43;
    assert_ne!(a, records(other));
}

#[test]
fn derive_seed_separates_benchmarks_and_attempts() {
    let base = derive_seed(42, "conj-grad", 0);
    assert_ne!(base, derive_seed(42, "conj-grad", 1));
    assert_ne!(base, derive_seed(42, "jacobi", 0));
    assert_ne!(base, derive_seed(7, "conj-grad", 0));
    assert_eq!(base, derive_seed(42, "conj-grad", 0));
}

#[test]
fn guarded_outcomes_are_deterministic_across_runs() {
    let entry = dpf::find("wave-1D").unwrap();
    let cfg = SuiteConfig {
        machine: machine(),
        size: Size::Small,
        faults: FaultPlan::new(0.02, 42),
        retries: 2,
        ..SuiteConfig::default()
    };
    let a = run_guarded(&entry, Version::Basic, &cfg);
    let b = run_guarded(&entry, Version::Basic, &cfg);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.attempts, b.attempts);
    assert_eq!(a.faults_injected, b.faults_injected);
}

// -------------------------------------------------------------- detection

#[test]
fn injected_corruption_is_never_reported_as_pass() {
    // NaN poison must always be caught: either the kernel panics on it,
    // or it propagates into the residual and verification fails. With no
    // retry budget the guarded outcome can therefore never be a success.
    let entry = dpf::find("conj-grad").unwrap();
    for seed in [1u64, 2, 3, 4, 5] {
        let cfg = SuiteConfig {
            machine: machine(),
            size: Size::Small,
            faults: FaultPlan::new(0.5, seed).only(FaultKind::NanPoison),
            ..SuiteConfig::default()
        };
        let res = run_guarded(&entry, Version::Basic, &cfg);
        let injected_nothing = res.outcome == RunOutcome::Completed && res.faults_injected == 0;
        assert!(
            !res.outcome.is_success() || injected_nothing,
            "seed {seed}: corrupted run reported success: {}",
            res.outcome
        );
    }
}

#[test]
fn forced_abort_is_isolated_and_recovered_by_retry() {
    let entry = dpf::find("fft").unwrap();
    let mut cfg = SuiteConfig {
        machine: machine(),
        size: Size::Small,
        faults: FaultPlan::new(1.0, 9).only(FaultKind::Abort),
        ..SuiteConfig::default()
    };
    // No retries: the panic is caught, not propagated.
    let res = run_guarded(&entry, Version::Basic, &cfg);
    assert!(
        matches!(res.outcome, RunOutcome::Panicked(_)),
        "{}",
        res.outcome
    );
    // One retry: the final attempt runs fault-free and verifies.
    cfg.retries = 1;
    let res = run_guarded(&entry, Version::Basic, &cfg);
    assert_eq!(res.outcome, RunOutcome::Recovered { retries: 1 });
    assert!(res.result.unwrap().report.verify.is_pass());
}

#[test]
fn stalled_run_times_out_instead_of_hanging() {
    let entry = dpf::find("conj-grad").unwrap();
    let cfg = SuiteConfig {
        machine: machine(),
        size: Size::Small,
        faults: FaultPlan::new(1.0, 11)
            .only(FaultKind::Stall)
            .with_stall_ms(30_000),
        timeout: Duration::from_millis(200),
        ..SuiteConfig::default()
    };
    let start = std::time::Instant::now();
    let res = run_guarded(&entry, Version::Basic, &cfg);
    assert_eq!(res.outcome, RunOutcome::TimedOut);
    assert!(start.elapsed() < Duration::from_secs(10));
}

// ------------------------------------------------- checkpoint/restart

#[test]
fn checkpointed_kernel_survives_poison_within_one_run() {
    use dpf::apps::diff_1d;
    let plan = FaultPlan::new(0.02, 0xFA17).only(FaultKind::NanPoison);
    let ctx = Ctx::with_faults(machine(), plan);
    let p = diff_1d::Params::default();
    let (_, v, stats) = diff_1d::run_checkpointed(&ctx, &p, 2, 500).unwrap();
    assert!(ctx.faults.injected() > 0, "plan injected nothing");
    assert!(stats.restores > 0, "no rollback exercised");
    assert!(v.is_pass(), "{v}");
}

#[test]
fn suite_checkpointing_recovers_iterative_kernels() {
    // With --checkpoint-every the gated runners roll back inside a single
    // attempt instead of burning a retry: outcome stays Completed.
    let entry = dpf::find("diff-1D").unwrap();
    let mut plan = FaultPlan::new(0.02, 0xFA17).only(FaultKind::NanPoison);
    plan.checkpoint_every = 2;
    let cfg = SuiteConfig {
        machine: machine(),
        size: Size::Small,
        faults: plan,
        ..SuiteConfig::default()
    };
    let res = run_guarded(&entry, Version::Basic, &cfg);
    assert_eq!(res.outcome, RunOutcome::Completed, "{}", res.outcome);
    let result = res.result.unwrap();
    assert!(
        result.output.problem.contains("ck=2"),
        "{}",
        result.output.problem
    );
}

// ------------------------------------------------------- acceptance sweep

#[test]
fn full_sweep_under_faults_is_clean_and_deterministic() {
    // The ISSUE acceptance run: --faults 0.01 --fault-seed 42 --retries 2.
    // Every outcome must be Completed or Recovered (no aborts, no hangs)
    // and the whole outcome table must reproduce bit-for-bit.
    let cfg = SuiteConfig {
        machine: machine(),
        size: Size::Small,
        faults: FaultPlan::new(0.01, 42),
        retries: 2,
        ..SuiteConfig::default()
    };
    let sweep = |cfg: &SuiteConfig| {
        run_suite(cfg)
            .rows
            .iter()
            .map(|r| (r.name, r.outcome.clone()))
            .collect::<Vec<_>>()
    };
    let a = sweep(&cfg);
    assert_eq!(a.len(), dpf::registry().len());
    for (name, outcome) in &a {
        assert!(
            matches!(
                outcome,
                RunOutcome::Completed | RunOutcome::Recovered { .. }
            ),
            "{name}: {outcome}"
        );
    }
    let b = sweep(&cfg);
    assert_eq!(a, b, "outcome table must be deterministic");
}
