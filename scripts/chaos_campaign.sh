#!/usr/bin/env bash
# Kill–resume chaos harness for the campaign journal.
#
# Usage: scripts/chaos_campaign.sh [spec.toml] [crash_points...]
#
# Runs the campaign clean (serial) to establish reference artifacts,
# then — for each seeded crash point N and for both the serial and the
# concurrent scheduler — re-runs it with the hidden `--crash-after-rows N`
# flag (the process SIGKILLs itself the instant the Nth row is fsync'd
# into the journal, the closest a test can get to a power cut), resumes
# with `--resume`, and byte-diffs the recovered artifacts against the
# reference. Any divergence is a crash-consistency bug.
#
# Defaults: campaigns/golden_s.toml, crash points 1 and 5. CI runs this
# in the crash-resume-smoke job.
set -euo pipefail

cd "$(dirname "$0")/.."

spec="${1:-campaigns/golden_s.toml}"
shift || true
points=("${@:-1 5}")
if [ "${#points[@]}" -eq 1 ]; then
  # Allow "1 5" as one arg or nothing at all.
  read -r -a points <<<"${points[0]}"
fi

dpf="${DPF_BIN:-target/release/dpf}"
if [ ! -x "$dpf" ]; then
  echo "building $dpf..." >&2
  cargo build --release -p dpf-cli
fi

work="${CHAOS_WORK_DIR:-target/chaos-campaign}"
rm -rf "$work"
mkdir -p "$work"

echo "== reference run: $spec -> $work/reference" >&2
"$dpf" campaign "$spec" --serial --out "$work/reference" >/dev/null
if [ -e "$work/reference/journal.jsonl" ]; then
  echo "FAIL: completed run left its journal behind" >&2
  exit 1
fi

fail=0
for mode in serial concurrent; do
  mode_flag=()
  [ "$mode" = serial ] && mode_flag=(--serial)
  for n in "${points[@]}"; do
    out="$work/$mode-crash-$n"
    echo "== $mode, SIGKILL after $n journaled row(s)" >&2
    # The crash run dies by SIGKILL (137); anything else is a bug.
    set +e
    "$dpf" campaign "$spec" "${mode_flag[@]}" --out "$out" \
      --crash-after-rows "$n" >/dev/null 2>&1
    status=$?
    set -e
    if [ "$status" -ne 137 ]; then
      echo "FAIL: expected death by SIGKILL (137), got $status" >&2
      fail=1
      continue
    fi
    if [ ! -s "$out/journal.jsonl" ]; then
      echo "FAIL: no journal survived the crash" >&2
      fail=1
      continue
    fi
    "$dpf" campaign "$spec" "${mode_flag[@]}" --out "$out" --resume >/dev/null
    # Byte-identity of the recovered directory against the reference
    # (the discarded journal is absent from both).
    if ! diff -r "$work/reference" "$out" >&2; then
      echo "FAIL: $mode resume after $n row(s) diverged from the reference" >&2
      fail=1
    else
      echo "   ok: artifacts byte-identical" >&2
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "chaos_campaign: FAILED" >&2
  exit 1
fi
echo "chaos_campaign: all crash points recovered byte-identically" >&2
