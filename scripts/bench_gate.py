#!/usr/bin/env python3
"""Advisory benchmark regression gate.

Compares two snapshots produced by ``scripts/bench_snapshot.sh`` and
fails if any benchmark shared by both got slower than the tolerance
allows. The comparison is ``new``-variant median time per (op, elements)
pair: ``ratio = baseline_median / candidate_median`` (>1 means the
candidate is faster). A pair only present in one snapshot is reported
but never gates — new benchmarks must be able to land alongside the
code they measure.

Usage:
    scripts/bench_gate.py <baseline.json> <candidate.json> [--tolerance 0.95]

Exit status: 0 if every common pair has ratio >= tolerance, 1 otherwise.
Intended as an *advisory* CI job (continue-on-error): microbenchmarks on
shared runners are noisy, so a failure is a prompt to look, not a veto.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        snap = json.load(f)
    out = {}
    for b in snap.get("benches", []):
        if "new" in b:
            out[(b["op"], b["elements"])] = b["new"]["median_ns"]
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.95,
        help="minimum allowed baseline/candidate median-time ratio "
        "(default 0.95, i.e. up to a 5%% slowdown passes)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    common = sorted(set(base) & set(cand))
    if not common:
        print("bench-gate: no common (op, elements) pairs — nothing to compare")
        return 1

    width = max(len(f"{op}@{elems}") for op, elems in common)
    failures = []
    print(f"bench-gate: {args.baseline} -> {args.candidate} (tolerance {args.tolerance})")
    for op, elems in common:
        ratio = base[(op, elems)] / cand[(op, elems)]
        status = "ok" if ratio >= args.tolerance else "SLOWER"
        if status != "ok":
            failures.append((op, elems, ratio))
        name = f"{op}@{elems}"
        print(
            f"  {name:<{width}}  base {base[(op, elems)] / 1e6:10.3f} ms"
            f"  cand {cand[(op, elems)] / 1e6:10.3f} ms"
            f"  ratio {ratio:6.3f}  {status}"
        )
    for key in sorted(set(cand) - set(base)):
        print(f"  {key[0]}@{key[1]}: new benchmark, not gated")
    for key in sorted(set(base) - set(cand)):
        print(f"  {key[0]}@{key[1]}: dropped from candidate, not gated")

    if failures:
        print(
            f"bench-gate: {len(failures)} pair(s) slower than "
            f"{args.tolerance}x baseline: "
            + ", ".join(f"{op}@{e} ({r:.3f})" for op, e, r in failures)
        )
        return 1
    print(f"bench-gate: all {len(common)} common pairs within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
