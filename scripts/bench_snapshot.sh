#!/usr/bin/env bash
# Run the hot-path benchmark harness and assemble its CRITERION_JSON
# lines into a machine-readable snapshot (BENCH_1.json at the repo root).
#
# Usage: scripts/bench_snapshot.sh [output.json]
#
# Each benchmark id has the form <op>/<variant>/<elements>, where variant
# is `new` (current library path) or `seed` (inline transcription of the
# pre-optimization implementation — see benches/hotpath.rs). The snapshot
# groups the two variants per (op, elements) pair and records the
# seed/new median-time ratio, i.e. the throughput speedup.
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_1.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

cargo bench --bench hotpath 2>&1 | tee /dev/stderr | grep '^CRITERION_JSON ' > "$raw"

python3 - "$raw" "$out" <<'EOF'
import json, platform, os, subprocess, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
rows = []
with open(raw_path) as f:
    for line in f:
        rows.append(json.loads(line.split(None, 1)[1]))

results = {}
for r in rows:
    op, variant, elems = r["id"].split("/")
    results.setdefault((op, int(elems)), {})[variant] = r

benches = []
for (op, elems), variants in sorted(results.items()):
    entry = {"op": op, "elements": elems}
    for variant, r in sorted(variants.items()):
        entry[variant] = {
            "median_ns": r["median_ns"],
            "min_ns": r["min_ns"],
            "max_ns": r["max_ns"],
            "elem_per_sec": r.get("elem_per_sec"),
        }
    if "new" in variants and "seed" in variants:
        entry["speedup_seed_over_new"] = round(
            variants["seed"]["median_ns"] / variants["new"]["median_ns"], 3
        )
    benches.append(entry)

try:
    rustc = subprocess.run(
        ["rustc", "--version"], capture_output=True, text=True, check=True
    ).stdout.strip()
except Exception:
    rustc = "unknown"

snapshot = {
    "harness": "benches/hotpath.rs",
    "host": {
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "rustc": rustc,
    },
    "benches": benches,
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(benches)} bench pairs)")
EOF
