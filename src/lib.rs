//! # DPF — the Data Parallel Fortran benchmark suite, in Rust
//!
//! A reproduction of *"DPF: A Data Parallel Fortran Benchmark Suite"*
//! (Hu, Johnsson, Kehagias, Shalaby — IPPS 1997): the HPF-style
//! distributed-array runtime the suite assumes, its collective
//! communication library, and all 32 benchmarks — 4 communication
//! functions, 8 linear-algebra suites and 20 application kernels — fully
//! instrumented with the paper's §1.5 performance metrics.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] ([`dpf_core`]) — machine model, dtypes, FLOP conventions,
//!   instrumentation, reports, the CM-5-class cost model.
//! * [`array`] ([`dpf_array`]) — `DistArray` with `:serial`/`:` axes,
//!   sections, FORALL.
//! * [`comm`] ([`dpf_comm`]) — CSHIFT, SPREAD, reductions, scans,
//!   gather/scatter, sort, AAPC transpose, stencils.
//! * [`fft`] ([`dpf_fft`]) — instrumented radix-2 FFT (1-D/2-D/3-D).
//! * [`linalg`] ([`dpf_linalg`]) — matrix-vector, lu, qr, gauss-jordan,
//!   pcr, conj-grad, jacobi, fft benchmarks.
//! * [`apps`] ([`dpf_apps`]) — the 20 application codes.
//! * [`suite`] ([`dpf_suite`]) — registry, harness, table generators.
//!
//! ## Quickstart
//!
//! ```
//! use dpf::core::{Ctx, Machine};
//! use dpf::suite::{find, run_basic, Size};
//!
//! // Run the conjugate-gradient benchmark on a 32-processor virtual CM-5.
//! let entry = find("conj-grad").unwrap();
//! let result = run_basic(&entry, &Machine::cm5(32), Size::Small);
//! assert!(result.report.verify.is_pass());
//! println!("{}", result.report);
//! # let _ = Ctx::host();
//! ```

#![warn(missing_docs)]

pub use dpf_apps as apps;
pub use dpf_array as array;
pub use dpf_comm as comm;
pub use dpf_core as core;
pub use dpf_fft as fft;
pub use dpf_linalg as linalg;
pub use dpf_suite as suite;

pub use dpf_core::{
    Backend, Ctx, DpfError, FaultKind, FaultPlan, LinkFaultKind, Machine, RecoverMode, Verify,
};
pub use dpf_suite::{
    find, registry, run, run_basic, run_campaign, run_guarded, run_on, run_soak, run_suite,
    CampaignReport, CampaignSpec, ExecMode, ProblemClass, RunOutcome, Size, SoakConfig,
    SuiteConfig, SuiteReport, Version,
};
