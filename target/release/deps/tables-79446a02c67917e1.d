/root/repo/target/release/deps/tables-79446a02c67917e1.d: tests/tables.rs

/root/repo/target/release/deps/tables-79446a02c67917e1: tests/tables.rs

tests/tables.rs:
