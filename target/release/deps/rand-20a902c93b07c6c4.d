/root/repo/target/release/deps/rand-20a902c93b07c6c4.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-20a902c93b07c6c4: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
