/root/repo/target/release/deps/dpf_bench-1ddedec70a9fcd69.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdpf_bench-1ddedec70a9fcd69.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdpf_bench-1ddedec70a9fcd69.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
