/root/repo/target/release/deps/dpf_comm-47ee5f3392a88eca.d: crates/dpf-comm/src/lib.rs crates/dpf-comm/src/gather.rs crates/dpf-comm/src/reduce.rs crates/dpf-comm/src/scan.rs crates/dpf-comm/src/shift.rs crates/dpf-comm/src/sort.rs crates/dpf-comm/src/spread.rs crates/dpf-comm/src/stencil.rs crates/dpf-comm/src/transpose.rs

/root/repo/target/release/deps/dpf_comm-47ee5f3392a88eca: crates/dpf-comm/src/lib.rs crates/dpf-comm/src/gather.rs crates/dpf-comm/src/reduce.rs crates/dpf-comm/src/scan.rs crates/dpf-comm/src/shift.rs crates/dpf-comm/src/sort.rs crates/dpf-comm/src/spread.rs crates/dpf-comm/src/stencil.rs crates/dpf-comm/src/transpose.rs

crates/dpf-comm/src/lib.rs:
crates/dpf-comm/src/gather.rs:
crates/dpf-comm/src/reduce.rs:
crates/dpf-comm/src/scan.rs:
crates/dpf-comm/src/shift.rs:
crates/dpf-comm/src/sort.rs:
crates/dpf-comm/src/spread.rs:
crates/dpf-comm/src/stencil.rs:
crates/dpf-comm/src/transpose.rs:
