/root/repo/target/release/deps/suite_end_to_end-c14d07b5f22ff74c.d: tests/suite_end_to_end.rs

/root/repo/target/release/deps/suite_end_to_end-c14d07b5f22ff74c: tests/suite_end_to_end.rs

tests/suite_end_to_end.rs:
