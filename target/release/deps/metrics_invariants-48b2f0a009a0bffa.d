/root/repo/target/release/deps/metrics_invariants-48b2f0a009a0bffa.d: tests/metrics_invariants.rs

/root/repo/target/release/deps/metrics_invariants-48b2f0a009a0bffa: tests/metrics_invariants.rs

tests/metrics_invariants.rs:
