/root/repo/target/release/deps/zero_alloc_equiv-ba1ecb5942d1abfa.d: tests/zero_alloc_equiv.rs

/root/repo/target/release/deps/zero_alloc_equiv-ba1ecb5942d1abfa: tests/zero_alloc_equiv.rs

tests/zero_alloc_equiv.rs:
