/root/repo/target/release/deps/suite_end_to_end-26ab598be54cf0e1.d: tests/suite_end_to_end.rs

/root/repo/target/release/deps/suite_end_to_end-26ab598be54cf0e1: tests/suite_end_to_end.rs

tests/suite_end_to_end.rs:
