/root/repo/target/release/deps/dpf_fft-a8f548659187a5bf.d: crates/dpf-fft/src/lib.rs

/root/repo/target/release/deps/dpf_fft-a8f548659187a5bf: crates/dpf-fft/src/lib.rs

crates/dpf-fft/src/lib.rs:
