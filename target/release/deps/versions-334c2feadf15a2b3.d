/root/repo/target/release/deps/versions-334c2feadf15a2b3.d: tests/versions.rs

/root/repo/target/release/deps/versions-334c2feadf15a2b3: tests/versions.rs

tests/versions.rs:
