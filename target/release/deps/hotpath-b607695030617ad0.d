/root/repo/target/release/deps/hotpath-b607695030617ad0.d: benches/hotpath.rs

/root/repo/target/release/deps/hotpath-b607695030617ad0: benches/hotpath.rs

benches/hotpath.rs:
