/root/repo/target/release/deps/failure_injection-6812d9206580d531.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-6812d9206580d531: tests/failure_injection.rs

tests/failure_injection.rs:
