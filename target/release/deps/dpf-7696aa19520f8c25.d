/root/repo/target/release/deps/dpf-7696aa19520f8c25.d: src/lib.rs

/root/repo/target/release/deps/dpf-7696aa19520f8c25: src/lib.rs

src/lib.rs:
