/root/repo/target/release/deps/dpf_apps-2856e9aef8a2b1d7.d: crates/dpf-apps/src/lib.rs crates/dpf-apps/src/boson.rs crates/dpf-apps/src/diff_1d.rs crates/dpf-apps/src/diff_2d.rs crates/dpf-apps/src/diff_3d.rs crates/dpf-apps/src/ellip_2d.rs crates/dpf-apps/src/fem_3d.rs crates/dpf-apps/src/fermion.rs crates/dpf-apps/src/gmo.rs crates/dpf-apps/src/ks_spectral.rs crates/dpf-apps/src/md.rs crates/dpf-apps/src/mdcell.rs crates/dpf-apps/src/n_body.rs crates/dpf-apps/src/pic_gather_scatter.rs crates/dpf-apps/src/pic_simple.rs crates/dpf-apps/src/qcd_kernel.rs crates/dpf-apps/src/qmc.rs crates/dpf-apps/src/qptransport.rs crates/dpf-apps/src/rp.rs crates/dpf-apps/src/step4.rs crates/dpf-apps/src/util.rs crates/dpf-apps/src/wave_1d.rs

/root/repo/target/release/deps/libdpf_apps-2856e9aef8a2b1d7.rlib: crates/dpf-apps/src/lib.rs crates/dpf-apps/src/boson.rs crates/dpf-apps/src/diff_1d.rs crates/dpf-apps/src/diff_2d.rs crates/dpf-apps/src/diff_3d.rs crates/dpf-apps/src/ellip_2d.rs crates/dpf-apps/src/fem_3d.rs crates/dpf-apps/src/fermion.rs crates/dpf-apps/src/gmo.rs crates/dpf-apps/src/ks_spectral.rs crates/dpf-apps/src/md.rs crates/dpf-apps/src/mdcell.rs crates/dpf-apps/src/n_body.rs crates/dpf-apps/src/pic_gather_scatter.rs crates/dpf-apps/src/pic_simple.rs crates/dpf-apps/src/qcd_kernel.rs crates/dpf-apps/src/qmc.rs crates/dpf-apps/src/qptransport.rs crates/dpf-apps/src/rp.rs crates/dpf-apps/src/step4.rs crates/dpf-apps/src/util.rs crates/dpf-apps/src/wave_1d.rs

/root/repo/target/release/deps/libdpf_apps-2856e9aef8a2b1d7.rmeta: crates/dpf-apps/src/lib.rs crates/dpf-apps/src/boson.rs crates/dpf-apps/src/diff_1d.rs crates/dpf-apps/src/diff_2d.rs crates/dpf-apps/src/diff_3d.rs crates/dpf-apps/src/ellip_2d.rs crates/dpf-apps/src/fem_3d.rs crates/dpf-apps/src/fermion.rs crates/dpf-apps/src/gmo.rs crates/dpf-apps/src/ks_spectral.rs crates/dpf-apps/src/md.rs crates/dpf-apps/src/mdcell.rs crates/dpf-apps/src/n_body.rs crates/dpf-apps/src/pic_gather_scatter.rs crates/dpf-apps/src/pic_simple.rs crates/dpf-apps/src/qcd_kernel.rs crates/dpf-apps/src/qmc.rs crates/dpf-apps/src/qptransport.rs crates/dpf-apps/src/rp.rs crates/dpf-apps/src/step4.rs crates/dpf-apps/src/util.rs crates/dpf-apps/src/wave_1d.rs

crates/dpf-apps/src/lib.rs:
crates/dpf-apps/src/boson.rs:
crates/dpf-apps/src/diff_1d.rs:
crates/dpf-apps/src/diff_2d.rs:
crates/dpf-apps/src/diff_3d.rs:
crates/dpf-apps/src/ellip_2d.rs:
crates/dpf-apps/src/fem_3d.rs:
crates/dpf-apps/src/fermion.rs:
crates/dpf-apps/src/gmo.rs:
crates/dpf-apps/src/ks_spectral.rs:
crates/dpf-apps/src/md.rs:
crates/dpf-apps/src/mdcell.rs:
crates/dpf-apps/src/n_body.rs:
crates/dpf-apps/src/pic_gather_scatter.rs:
crates/dpf-apps/src/pic_simple.rs:
crates/dpf-apps/src/qcd_kernel.rs:
crates/dpf-apps/src/qmc.rs:
crates/dpf-apps/src/qptransport.rs:
crates/dpf-apps/src/rp.rs:
crates/dpf-apps/src/step4.rs:
crates/dpf-apps/src/util.rs:
crates/dpf-apps/src/wave_1d.rs:
