/root/repo/target/release/deps/comm_patterns-e73a67b046349cdd.d: tests/comm_patterns.rs

/root/repo/target/release/deps/comm_patterns-e73a67b046349cdd: tests/comm_patterns.rs

tests/comm_patterns.rs:
