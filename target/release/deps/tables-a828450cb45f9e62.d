/root/repo/target/release/deps/tables-a828450cb45f9e62.d: tests/tables.rs

/root/repo/target/release/deps/tables-a828450cb45f9e62: tests/tables.rs

tests/tables.rs:
