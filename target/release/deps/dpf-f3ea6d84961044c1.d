/root/repo/target/release/deps/dpf-f3ea6d84961044c1.d: src/lib.rs

/root/repo/target/release/deps/dpf-f3ea6d84961044c1: src/lib.rs

src/lib.rs:
