/root/repo/target/release/deps/dpf_suite-3b89aacf495ee227.d: crates/dpf-suite/src/lib.rs crates/dpf-suite/src/benchmark.rs crates/dpf-suite/src/comm_bench.rs crates/dpf-suite/src/harness.rs crates/dpf-suite/src/registry.rs crates/dpf-suite/src/runners.rs crates/dpf-suite/src/tables.rs

/root/repo/target/release/deps/libdpf_suite-3b89aacf495ee227.rlib: crates/dpf-suite/src/lib.rs crates/dpf-suite/src/benchmark.rs crates/dpf-suite/src/comm_bench.rs crates/dpf-suite/src/harness.rs crates/dpf-suite/src/registry.rs crates/dpf-suite/src/runners.rs crates/dpf-suite/src/tables.rs

/root/repo/target/release/deps/libdpf_suite-3b89aacf495ee227.rmeta: crates/dpf-suite/src/lib.rs crates/dpf-suite/src/benchmark.rs crates/dpf-suite/src/comm_bench.rs crates/dpf-suite/src/harness.rs crates/dpf-suite/src/registry.rs crates/dpf-suite/src/runners.rs crates/dpf-suite/src/tables.rs

crates/dpf-suite/src/lib.rs:
crates/dpf-suite/src/benchmark.rs:
crates/dpf-suite/src/comm_bench.rs:
crates/dpf-suite/src/harness.rs:
crates/dpf-suite/src/registry.rs:
crates/dpf-suite/src/runners.rs:
crates/dpf-suite/src/tables.rs:
