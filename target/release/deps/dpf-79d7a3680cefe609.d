/root/repo/target/release/deps/dpf-79d7a3680cefe609.d: crates/dpf-cli/src/main.rs

/root/repo/target/release/deps/dpf-79d7a3680cefe609: crates/dpf-cli/src/main.rs

crates/dpf-cli/src/main.rs:
