/root/repo/target/release/deps/dpf_comm-09e361d4d846a788.d: crates/dpf-comm/src/lib.rs crates/dpf-comm/src/gather.rs crates/dpf-comm/src/reduce.rs crates/dpf-comm/src/scan.rs crates/dpf-comm/src/shift.rs crates/dpf-comm/src/sort.rs crates/dpf-comm/src/spread.rs crates/dpf-comm/src/stencil.rs crates/dpf-comm/src/transpose.rs

/root/repo/target/release/deps/libdpf_comm-09e361d4d846a788.rlib: crates/dpf-comm/src/lib.rs crates/dpf-comm/src/gather.rs crates/dpf-comm/src/reduce.rs crates/dpf-comm/src/scan.rs crates/dpf-comm/src/shift.rs crates/dpf-comm/src/sort.rs crates/dpf-comm/src/spread.rs crates/dpf-comm/src/stencil.rs crates/dpf-comm/src/transpose.rs

/root/repo/target/release/deps/libdpf_comm-09e361d4d846a788.rmeta: crates/dpf-comm/src/lib.rs crates/dpf-comm/src/gather.rs crates/dpf-comm/src/reduce.rs crates/dpf-comm/src/scan.rs crates/dpf-comm/src/shift.rs crates/dpf-comm/src/sort.rs crates/dpf-comm/src/spread.rs crates/dpf-comm/src/stencil.rs crates/dpf-comm/src/transpose.rs

crates/dpf-comm/src/lib.rs:
crates/dpf-comm/src/gather.rs:
crates/dpf-comm/src/reduce.rs:
crates/dpf-comm/src/scan.rs:
crates/dpf-comm/src/shift.rs:
crates/dpf-comm/src/sort.rs:
crates/dpf-comm/src/spread.rs:
crates/dpf-comm/src/stencil.rs:
crates/dpf-comm/src/transpose.rs:
