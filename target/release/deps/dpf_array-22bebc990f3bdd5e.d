/root/repo/target/release/deps/dpf_array-22bebc990f3bdd5e.d: crates/dpf-array/src/lib.rs crates/dpf-array/src/array.rs crates/dpf-array/src/layout.rs crates/dpf-array/src/mask.rs crates/dpf-array/src/section.rs

/root/repo/target/release/deps/dpf_array-22bebc990f3bdd5e: crates/dpf-array/src/lib.rs crates/dpf-array/src/array.rs crates/dpf-array/src/layout.rs crates/dpf-array/src/mask.rs crates/dpf-array/src/section.rs

crates/dpf-array/src/lib.rs:
crates/dpf-array/src/array.rs:
crates/dpf-array/src/layout.rs:
crates/dpf-array/src/mask.rs:
crates/dpf-array/src/section.rs:
