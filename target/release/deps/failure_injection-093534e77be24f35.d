/root/repo/target/release/deps/failure_injection-093534e77be24f35.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-093534e77be24f35: tests/failure_injection.rs

tests/failure_injection.rs:
