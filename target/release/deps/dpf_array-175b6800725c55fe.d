/root/repo/target/release/deps/dpf_array-175b6800725c55fe.d: crates/dpf-array/src/lib.rs crates/dpf-array/src/array.rs crates/dpf-array/src/layout.rs crates/dpf-array/src/mask.rs crates/dpf-array/src/section.rs

/root/repo/target/release/deps/libdpf_array-175b6800725c55fe.rlib: crates/dpf-array/src/lib.rs crates/dpf-array/src/array.rs crates/dpf-array/src/layout.rs crates/dpf-array/src/mask.rs crates/dpf-array/src/section.rs

/root/repo/target/release/deps/libdpf_array-175b6800725c55fe.rmeta: crates/dpf-array/src/lib.rs crates/dpf-array/src/array.rs crates/dpf-array/src/layout.rs crates/dpf-array/src/mask.rs crates/dpf-array/src/section.rs

crates/dpf-array/src/lib.rs:
crates/dpf-array/src/array.rs:
crates/dpf-array/src/layout.rs:
crates/dpf-array/src/mask.rs:
crates/dpf-array/src/section.rs:
