/root/repo/target/release/deps/rand-19d07640a893d1e8.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-19d07640a893d1e8.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-19d07640a893d1e8.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
