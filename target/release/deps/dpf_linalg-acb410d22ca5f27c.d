/root/repo/target/release/deps/dpf_linalg-acb410d22ca5f27c.d: crates/dpf-linalg/src/lib.rs crates/dpf-linalg/src/conj_grad.rs crates/dpf-linalg/src/fft_bench.rs crates/dpf-linalg/src/gauss_jordan.rs crates/dpf-linalg/src/jacobi.rs crates/dpf-linalg/src/lu.rs crates/dpf-linalg/src/matvec.rs crates/dpf-linalg/src/pcr.rs crates/dpf-linalg/src/qr.rs crates/dpf-linalg/src/reference.rs

/root/repo/target/release/deps/dpf_linalg-acb410d22ca5f27c: crates/dpf-linalg/src/lib.rs crates/dpf-linalg/src/conj_grad.rs crates/dpf-linalg/src/fft_bench.rs crates/dpf-linalg/src/gauss_jordan.rs crates/dpf-linalg/src/jacobi.rs crates/dpf-linalg/src/lu.rs crates/dpf-linalg/src/matvec.rs crates/dpf-linalg/src/pcr.rs crates/dpf-linalg/src/qr.rs crates/dpf-linalg/src/reference.rs

crates/dpf-linalg/src/lib.rs:
crates/dpf-linalg/src/conj_grad.rs:
crates/dpf-linalg/src/fft_bench.rs:
crates/dpf-linalg/src/gauss_jordan.rs:
crates/dpf-linalg/src/jacobi.rs:
crates/dpf-linalg/src/lu.rs:
crates/dpf-linalg/src/matvec.rs:
crates/dpf-linalg/src/pcr.rs:
crates/dpf-linalg/src/qr.rs:
crates/dpf-linalg/src/reference.rs:
