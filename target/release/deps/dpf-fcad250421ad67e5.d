/root/repo/target/release/deps/dpf-fcad250421ad67e5.d: crates/dpf-cli/src/main.rs

/root/repo/target/release/deps/dpf-fcad250421ad67e5: crates/dpf-cli/src/main.rs

crates/dpf-cli/src/main.rs:
