/root/repo/target/release/deps/dpf_fft-7fa334536d9f9c8d.d: crates/dpf-fft/src/lib.rs

/root/repo/target/release/deps/libdpf_fft-7fa334536d9f9c8d.rlib: crates/dpf-fft/src/lib.rs

/root/repo/target/release/deps/libdpf_fft-7fa334536d9f9c8d.rmeta: crates/dpf-fft/src/lib.rs

crates/dpf-fft/src/lib.rs:
