/root/repo/target/release/deps/versions-76cff71c10782ae6.d: tests/versions.rs

/root/repo/target/release/deps/versions-76cff71c10782ae6: tests/versions.rs

tests/versions.rs:
