/root/repo/target/release/deps/dpf_bench-d5e97d09a10f876a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/dpf_bench-d5e97d09a10f876a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
