/root/repo/target/release/deps/dpf_core-6637924847f17f85.d: crates/dpf-core/src/lib.rs crates/dpf-core/src/complex.rs crates/dpf-core/src/cost.rs crates/dpf-core/src/ctx.rs crates/dpf-core/src/dtype.rs crates/dpf-core/src/flops.rs crates/dpf-core/src/instr.rs crates/dpf-core/src/machine.rs crates/dpf-core/src/numeric.rs crates/dpf-core/src/pool.rs crates/dpf-core/src/report.rs crates/dpf-core/src/verify.rs

/root/repo/target/release/deps/libdpf_core-6637924847f17f85.rlib: crates/dpf-core/src/lib.rs crates/dpf-core/src/complex.rs crates/dpf-core/src/cost.rs crates/dpf-core/src/ctx.rs crates/dpf-core/src/dtype.rs crates/dpf-core/src/flops.rs crates/dpf-core/src/instr.rs crates/dpf-core/src/machine.rs crates/dpf-core/src/numeric.rs crates/dpf-core/src/pool.rs crates/dpf-core/src/report.rs crates/dpf-core/src/verify.rs

/root/repo/target/release/deps/libdpf_core-6637924847f17f85.rmeta: crates/dpf-core/src/lib.rs crates/dpf-core/src/complex.rs crates/dpf-core/src/cost.rs crates/dpf-core/src/ctx.rs crates/dpf-core/src/dtype.rs crates/dpf-core/src/flops.rs crates/dpf-core/src/instr.rs crates/dpf-core/src/machine.rs crates/dpf-core/src/numeric.rs crates/dpf-core/src/pool.rs crates/dpf-core/src/report.rs crates/dpf-core/src/verify.rs

crates/dpf-core/src/lib.rs:
crates/dpf-core/src/complex.rs:
crates/dpf-core/src/cost.rs:
crates/dpf-core/src/ctx.rs:
crates/dpf-core/src/dtype.rs:
crates/dpf-core/src/flops.rs:
crates/dpf-core/src/instr.rs:
crates/dpf-core/src/machine.rs:
crates/dpf-core/src/numeric.rs:
crates/dpf-core/src/pool.rs:
crates/dpf-core/src/report.rs:
crates/dpf-core/src/verify.rs:
