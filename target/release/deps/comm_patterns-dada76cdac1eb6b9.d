/root/repo/target/release/deps/comm_patterns-dada76cdac1eb6b9.d: tests/comm_patterns.rs

/root/repo/target/release/deps/comm_patterns-dada76cdac1eb6b9: tests/comm_patterns.rs

tests/comm_patterns.rs:
