/root/repo/target/release/deps/dpf_suite-ba170909dea4a266.d: crates/dpf-suite/src/lib.rs crates/dpf-suite/src/benchmark.rs crates/dpf-suite/src/comm_bench.rs crates/dpf-suite/src/harness.rs crates/dpf-suite/src/registry.rs crates/dpf-suite/src/runners.rs crates/dpf-suite/src/tables.rs

/root/repo/target/release/deps/dpf_suite-ba170909dea4a266: crates/dpf-suite/src/lib.rs crates/dpf-suite/src/benchmark.rs crates/dpf-suite/src/comm_bench.rs crates/dpf-suite/src/harness.rs crates/dpf-suite/src/registry.rs crates/dpf-suite/src/runners.rs crates/dpf-suite/src/tables.rs

crates/dpf-suite/src/lib.rs:
crates/dpf-suite/src/benchmark.rs:
crates/dpf-suite/src/comm_bench.rs:
crates/dpf-suite/src/harness.rs:
crates/dpf-suite/src/registry.rs:
crates/dpf-suite/src/runners.rs:
crates/dpf-suite/src/tables.rs:
