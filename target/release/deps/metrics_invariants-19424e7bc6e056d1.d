/root/repo/target/release/deps/metrics_invariants-19424e7bc6e056d1.d: tests/metrics_invariants.rs

/root/repo/target/release/deps/metrics_invariants-19424e7bc6e056d1: tests/metrics_invariants.rs

tests/metrics_invariants.rs:
