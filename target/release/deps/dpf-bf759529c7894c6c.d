/root/repo/target/release/deps/dpf-bf759529c7894c6c.d: src/lib.rs

/root/repo/target/release/deps/libdpf-bf759529c7894c6c.rlib: src/lib.rs

/root/repo/target/release/deps/libdpf-bf759529c7894c6c.rmeta: src/lib.rs

src/lib.rs:
