/root/repo/target/release/examples/plasma_pic-40f80f680ac590dd.d: examples/plasma_pic.rs

/root/repo/target/release/examples/plasma_pic-40f80f680ac590dd: examples/plasma_pic.rs

examples/plasma_pic.rs:
