/root/repo/target/release/examples/heat_diffusion-20017914c6d734d2.d: examples/heat_diffusion.rs

/root/repo/target/release/examples/heat_diffusion-20017914c6d734d2: examples/heat_diffusion.rs

examples/heat_diffusion.rs:
