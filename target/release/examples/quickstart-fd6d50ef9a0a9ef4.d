/root/repo/target/release/examples/quickstart-fd6d50ef9a0a9ef4.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-fd6d50ef9a0a9ef4: examples/quickstart.rs

examples/quickstart.rs:
