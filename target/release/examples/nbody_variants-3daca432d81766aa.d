/root/repo/target/release/examples/nbody_variants-3daca432d81766aa.d: examples/nbody_variants.rs

/root/repo/target/release/examples/nbody_variants-3daca432d81766aa: examples/nbody_variants.rs

examples/nbody_variants.rs:
