/root/repo/target/release/examples/quickstart-474a252e410f3462.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-474a252e410f3462: examples/quickstart.rs

examples/quickstart.rs:
