/root/repo/target/release/examples/heat_diffusion-09407b82d1395000.d: examples/heat_diffusion.rs

/root/repo/target/release/examples/heat_diffusion-09407b82d1395000: examples/heat_diffusion.rs

examples/heat_diffusion.rs:
