/root/repo/target/release/examples/nbody_variants-0c844536c6dbf0e9.d: examples/nbody_variants.rs

/root/repo/target/release/examples/nbody_variants-0c844536c6dbf0e9: examples/nbody_variants.rs

examples/nbody_variants.rs:
