/root/repo/target/release/examples/compiler_eval-30790d05a46bc887.d: examples/compiler_eval.rs

/root/repo/target/release/examples/compiler_eval-30790d05a46bc887: examples/compiler_eval.rs

examples/compiler_eval.rs:
