/root/repo/target/release/examples/compiler_eval-b0b774005bc3c0d7.d: examples/compiler_eval.rs

/root/repo/target/release/examples/compiler_eval-b0b774005bc3c0d7: examples/compiler_eval.rs

examples/compiler_eval.rs:
