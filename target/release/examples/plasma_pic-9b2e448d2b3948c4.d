/root/repo/target/release/examples/plasma_pic-9b2e448d2b3948c4.d: examples/plasma_pic.rs

/root/repo/target/release/examples/plasma_pic-9b2e448d2b3948c4: examples/plasma_pic.rs

examples/plasma_pic.rs:
