/root/repo/target/debug/examples/quickstart-9cfb5c29d4965d6d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-9cfb5c29d4965d6d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
