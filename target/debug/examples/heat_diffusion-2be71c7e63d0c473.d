/root/repo/target/debug/examples/heat_diffusion-2be71c7e63d0c473.d: examples/heat_diffusion.rs

/root/repo/target/debug/examples/heat_diffusion-2be71c7e63d0c473: examples/heat_diffusion.rs

examples/heat_diffusion.rs:
