/root/repo/target/debug/examples/nbody_variants-36bdeaff48add2da.d: examples/nbody_variants.rs Cargo.toml

/root/repo/target/debug/examples/libnbody_variants-36bdeaff48add2da.rmeta: examples/nbody_variants.rs Cargo.toml

examples/nbody_variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
