/root/repo/target/debug/examples/plasma_pic-f394fff016b949b4.d: examples/plasma_pic.rs

/root/repo/target/debug/examples/plasma_pic-f394fff016b949b4: examples/plasma_pic.rs

examples/plasma_pic.rs:
