/root/repo/target/debug/examples/quickstart-865a8a6ab0daa280.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-865a8a6ab0daa280: examples/quickstart.rs

examples/quickstart.rs:
