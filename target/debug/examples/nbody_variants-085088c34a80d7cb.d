/root/repo/target/debug/examples/nbody_variants-085088c34a80d7cb.d: examples/nbody_variants.rs

/root/repo/target/debug/examples/nbody_variants-085088c34a80d7cb: examples/nbody_variants.rs

examples/nbody_variants.rs:
