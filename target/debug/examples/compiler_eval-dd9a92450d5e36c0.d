/root/repo/target/debug/examples/compiler_eval-dd9a92450d5e36c0.d: examples/compiler_eval.rs

/root/repo/target/debug/examples/compiler_eval-dd9a92450d5e36c0: examples/compiler_eval.rs

examples/compiler_eval.rs:
