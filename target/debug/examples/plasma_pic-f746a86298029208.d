/root/repo/target/debug/examples/plasma_pic-f746a86298029208.d: examples/plasma_pic.rs Cargo.toml

/root/repo/target/debug/examples/libplasma_pic-f746a86298029208.rmeta: examples/plasma_pic.rs Cargo.toml

examples/plasma_pic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
