/root/repo/target/debug/examples/heat_diffusion-b8f9f4d0258b58e4.d: examples/heat_diffusion.rs Cargo.toml

/root/repo/target/debug/examples/libheat_diffusion-b8f9f4d0258b58e4.rmeta: examples/heat_diffusion.rs Cargo.toml

examples/heat_diffusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
