/root/repo/target/debug/examples/compiler_eval-5a844c969197f3d7.d: examples/compiler_eval.rs Cargo.toml

/root/repo/target/debug/examples/libcompiler_eval-5a844c969197f3d7.rmeta: examples/compiler_eval.rs Cargo.toml

examples/compiler_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
