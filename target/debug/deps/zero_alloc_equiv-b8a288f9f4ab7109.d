/root/repo/target/debug/deps/zero_alloc_equiv-b8a288f9f4ab7109.d: tests/zero_alloc_equiv.rs

/root/repo/target/debug/deps/zero_alloc_equiv-b8a288f9f4ab7109: tests/zero_alloc_equiv.rs

tests/zero_alloc_equiv.rs:
