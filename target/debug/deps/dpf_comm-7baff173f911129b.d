/root/repo/target/debug/deps/dpf_comm-7baff173f911129b.d: crates/dpf-comm/src/lib.rs crates/dpf-comm/src/gather.rs crates/dpf-comm/src/reduce.rs crates/dpf-comm/src/scan.rs crates/dpf-comm/src/shift.rs crates/dpf-comm/src/sort.rs crates/dpf-comm/src/spread.rs crates/dpf-comm/src/stencil.rs crates/dpf-comm/src/transpose.rs Cargo.toml

/root/repo/target/debug/deps/libdpf_comm-7baff173f911129b.rmeta: crates/dpf-comm/src/lib.rs crates/dpf-comm/src/gather.rs crates/dpf-comm/src/reduce.rs crates/dpf-comm/src/scan.rs crates/dpf-comm/src/shift.rs crates/dpf-comm/src/sort.rs crates/dpf-comm/src/spread.rs crates/dpf-comm/src/stencil.rs crates/dpf-comm/src/transpose.rs Cargo.toml

crates/dpf-comm/src/lib.rs:
crates/dpf-comm/src/gather.rs:
crates/dpf-comm/src/reduce.rs:
crates/dpf-comm/src/scan.rs:
crates/dpf-comm/src/shift.rs:
crates/dpf-comm/src/sort.rs:
crates/dpf-comm/src/spread.rs:
crates/dpf-comm/src/stencil.rs:
crates/dpf-comm/src/transpose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
