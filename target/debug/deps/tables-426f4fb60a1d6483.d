/root/repo/target/debug/deps/tables-426f4fb60a1d6483.d: tests/tables.rs

/root/repo/target/debug/deps/tables-426f4fb60a1d6483: tests/tables.rs

tests/tables.rs:
