/root/repo/target/debug/deps/dpf_fft-0d4341ea0ef4da04.d: crates/dpf-fft/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdpf_fft-0d4341ea0ef4da04.rmeta: crates/dpf-fft/src/lib.rs Cargo.toml

crates/dpf-fft/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
