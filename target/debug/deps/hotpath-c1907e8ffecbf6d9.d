/root/repo/target/debug/deps/hotpath-c1907e8ffecbf6d9.d: benches/hotpath.rs Cargo.toml

/root/repo/target/debug/deps/libhotpath-c1907e8ffecbf6d9.rmeta: benches/hotpath.rs Cargo.toml

benches/hotpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
