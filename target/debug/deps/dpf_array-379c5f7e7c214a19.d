/root/repo/target/debug/deps/dpf_array-379c5f7e7c214a19.d: crates/dpf-array/src/lib.rs crates/dpf-array/src/array.rs crates/dpf-array/src/layout.rs crates/dpf-array/src/mask.rs crates/dpf-array/src/section.rs Cargo.toml

/root/repo/target/debug/deps/libdpf_array-379c5f7e7c214a19.rmeta: crates/dpf-array/src/lib.rs crates/dpf-array/src/array.rs crates/dpf-array/src/layout.rs crates/dpf-array/src/mask.rs crates/dpf-array/src/section.rs Cargo.toml

crates/dpf-array/src/lib.rs:
crates/dpf-array/src/array.rs:
crates/dpf-array/src/layout.rs:
crates/dpf-array/src/mask.rs:
crates/dpf-array/src/section.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
