/root/repo/target/debug/deps/dpf-d71b8b9218040cf2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdpf-d71b8b9218040cf2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
