/root/repo/target/debug/deps/dpf_core-ae103e7727b7d3f2.d: crates/dpf-core/src/lib.rs crates/dpf-core/src/complex.rs crates/dpf-core/src/cost.rs crates/dpf-core/src/ctx.rs crates/dpf-core/src/dtype.rs crates/dpf-core/src/flops.rs crates/dpf-core/src/instr.rs crates/dpf-core/src/machine.rs crates/dpf-core/src/numeric.rs crates/dpf-core/src/pool.rs crates/dpf-core/src/report.rs crates/dpf-core/src/verify.rs

/root/repo/target/debug/deps/libdpf_core-ae103e7727b7d3f2.rlib: crates/dpf-core/src/lib.rs crates/dpf-core/src/complex.rs crates/dpf-core/src/cost.rs crates/dpf-core/src/ctx.rs crates/dpf-core/src/dtype.rs crates/dpf-core/src/flops.rs crates/dpf-core/src/instr.rs crates/dpf-core/src/machine.rs crates/dpf-core/src/numeric.rs crates/dpf-core/src/pool.rs crates/dpf-core/src/report.rs crates/dpf-core/src/verify.rs

/root/repo/target/debug/deps/libdpf_core-ae103e7727b7d3f2.rmeta: crates/dpf-core/src/lib.rs crates/dpf-core/src/complex.rs crates/dpf-core/src/cost.rs crates/dpf-core/src/ctx.rs crates/dpf-core/src/dtype.rs crates/dpf-core/src/flops.rs crates/dpf-core/src/instr.rs crates/dpf-core/src/machine.rs crates/dpf-core/src/numeric.rs crates/dpf-core/src/pool.rs crates/dpf-core/src/report.rs crates/dpf-core/src/verify.rs

crates/dpf-core/src/lib.rs:
crates/dpf-core/src/complex.rs:
crates/dpf-core/src/cost.rs:
crates/dpf-core/src/ctx.rs:
crates/dpf-core/src/dtype.rs:
crates/dpf-core/src/flops.rs:
crates/dpf-core/src/instr.rs:
crates/dpf-core/src/machine.rs:
crates/dpf-core/src/numeric.rs:
crates/dpf-core/src/pool.rs:
crates/dpf-core/src/report.rs:
crates/dpf-core/src/verify.rs:
