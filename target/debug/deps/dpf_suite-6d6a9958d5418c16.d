/root/repo/target/debug/deps/dpf_suite-6d6a9958d5418c16.d: crates/dpf-suite/src/lib.rs crates/dpf-suite/src/benchmark.rs crates/dpf-suite/src/comm_bench.rs crates/dpf-suite/src/harness.rs crates/dpf-suite/src/registry.rs crates/dpf-suite/src/runners.rs crates/dpf-suite/src/tables.rs

/root/repo/target/debug/deps/libdpf_suite-6d6a9958d5418c16.rlib: crates/dpf-suite/src/lib.rs crates/dpf-suite/src/benchmark.rs crates/dpf-suite/src/comm_bench.rs crates/dpf-suite/src/harness.rs crates/dpf-suite/src/registry.rs crates/dpf-suite/src/runners.rs crates/dpf-suite/src/tables.rs

/root/repo/target/debug/deps/libdpf_suite-6d6a9958d5418c16.rmeta: crates/dpf-suite/src/lib.rs crates/dpf-suite/src/benchmark.rs crates/dpf-suite/src/comm_bench.rs crates/dpf-suite/src/harness.rs crates/dpf-suite/src/registry.rs crates/dpf-suite/src/runners.rs crates/dpf-suite/src/tables.rs

crates/dpf-suite/src/lib.rs:
crates/dpf-suite/src/benchmark.rs:
crates/dpf-suite/src/comm_bench.rs:
crates/dpf-suite/src/harness.rs:
crates/dpf-suite/src/registry.rs:
crates/dpf-suite/src/runners.rs:
crates/dpf-suite/src/tables.rs:
