/root/repo/target/debug/deps/dpf_linalg-ff07eec6b0488eb5.d: crates/dpf-linalg/src/lib.rs crates/dpf-linalg/src/conj_grad.rs crates/dpf-linalg/src/fft_bench.rs crates/dpf-linalg/src/gauss_jordan.rs crates/dpf-linalg/src/jacobi.rs crates/dpf-linalg/src/lu.rs crates/dpf-linalg/src/matvec.rs crates/dpf-linalg/src/pcr.rs crates/dpf-linalg/src/qr.rs crates/dpf-linalg/src/reference.rs Cargo.toml

/root/repo/target/debug/deps/libdpf_linalg-ff07eec6b0488eb5.rmeta: crates/dpf-linalg/src/lib.rs crates/dpf-linalg/src/conj_grad.rs crates/dpf-linalg/src/fft_bench.rs crates/dpf-linalg/src/gauss_jordan.rs crates/dpf-linalg/src/jacobi.rs crates/dpf-linalg/src/lu.rs crates/dpf-linalg/src/matvec.rs crates/dpf-linalg/src/pcr.rs crates/dpf-linalg/src/qr.rs crates/dpf-linalg/src/reference.rs Cargo.toml

crates/dpf-linalg/src/lib.rs:
crates/dpf-linalg/src/conj_grad.rs:
crates/dpf-linalg/src/fft_bench.rs:
crates/dpf-linalg/src/gauss_jordan.rs:
crates/dpf-linalg/src/jacobi.rs:
crates/dpf-linalg/src/lu.rs:
crates/dpf-linalg/src/matvec.rs:
crates/dpf-linalg/src/pcr.rs:
crates/dpf-linalg/src/qr.rs:
crates/dpf-linalg/src/reference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
