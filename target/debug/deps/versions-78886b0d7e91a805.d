/root/repo/target/debug/deps/versions-78886b0d7e91a805.d: tests/versions.rs Cargo.toml

/root/repo/target/debug/deps/libversions-78886b0d7e91a805.rmeta: tests/versions.rs Cargo.toml

tests/versions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
