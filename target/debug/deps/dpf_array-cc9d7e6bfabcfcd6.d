/root/repo/target/debug/deps/dpf_array-cc9d7e6bfabcfcd6.d: crates/dpf-array/src/lib.rs crates/dpf-array/src/array.rs crates/dpf-array/src/layout.rs crates/dpf-array/src/mask.rs crates/dpf-array/src/section.rs Cargo.toml

/root/repo/target/debug/deps/libdpf_array-cc9d7e6bfabcfcd6.rmeta: crates/dpf-array/src/lib.rs crates/dpf-array/src/array.rs crates/dpf-array/src/layout.rs crates/dpf-array/src/mask.rs crates/dpf-array/src/section.rs Cargo.toml

crates/dpf-array/src/lib.rs:
crates/dpf-array/src/array.rs:
crates/dpf-array/src/layout.rs:
crates/dpf-array/src/mask.rs:
crates/dpf-array/src/section.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
