/root/repo/target/debug/deps/tables-92c616f58da8795a.d: tests/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-92c616f58da8795a.rmeta: tests/tables.rs Cargo.toml

tests/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
