/root/repo/target/debug/deps/table6_apps-b6817a8997f69b49.d: crates/bench/benches/table6_apps.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_apps-b6817a8997f69b49.rmeta: crates/bench/benches/table6_apps.rs Cargo.toml

crates/bench/benches/table6_apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
