/root/repo/target/debug/deps/dpf_suite-ad9dee5b6239b53e.d: crates/dpf-suite/src/lib.rs crates/dpf-suite/src/benchmark.rs crates/dpf-suite/src/comm_bench.rs crates/dpf-suite/src/harness.rs crates/dpf-suite/src/registry.rs crates/dpf-suite/src/runners.rs crates/dpf-suite/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libdpf_suite-ad9dee5b6239b53e.rmeta: crates/dpf-suite/src/lib.rs crates/dpf-suite/src/benchmark.rs crates/dpf-suite/src/comm_bench.rs crates/dpf-suite/src/harness.rs crates/dpf-suite/src/registry.rs crates/dpf-suite/src/runners.rs crates/dpf-suite/src/tables.rs Cargo.toml

crates/dpf-suite/src/lib.rs:
crates/dpf-suite/src/benchmark.rs:
crates/dpf-suite/src/comm_bench.rs:
crates/dpf-suite/src/harness.rs:
crates/dpf-suite/src/registry.rs:
crates/dpf-suite/src/runners.rs:
crates/dpf-suite/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
