/root/repo/target/debug/deps/dpf_core-6af3fbace1a77965.d: crates/dpf-core/src/lib.rs crates/dpf-core/src/complex.rs crates/dpf-core/src/cost.rs crates/dpf-core/src/ctx.rs crates/dpf-core/src/dtype.rs crates/dpf-core/src/flops.rs crates/dpf-core/src/instr.rs crates/dpf-core/src/machine.rs crates/dpf-core/src/numeric.rs crates/dpf-core/src/pool.rs crates/dpf-core/src/report.rs crates/dpf-core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libdpf_core-6af3fbace1a77965.rmeta: crates/dpf-core/src/lib.rs crates/dpf-core/src/complex.rs crates/dpf-core/src/cost.rs crates/dpf-core/src/ctx.rs crates/dpf-core/src/dtype.rs crates/dpf-core/src/flops.rs crates/dpf-core/src/instr.rs crates/dpf-core/src/machine.rs crates/dpf-core/src/numeric.rs crates/dpf-core/src/pool.rs crates/dpf-core/src/report.rs crates/dpf-core/src/verify.rs Cargo.toml

crates/dpf-core/src/lib.rs:
crates/dpf-core/src/complex.rs:
crates/dpf-core/src/cost.rs:
crates/dpf-core/src/ctx.rs:
crates/dpf-core/src/dtype.rs:
crates/dpf-core/src/flops.rs:
crates/dpf-core/src/instr.rs:
crates/dpf-core/src/machine.rs:
crates/dpf-core/src/numeric.rs:
crates/dpf-core/src/pool.rs:
crates/dpf-core/src/report.rs:
crates/dpf-core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
