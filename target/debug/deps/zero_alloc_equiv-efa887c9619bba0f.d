/root/repo/target/debug/deps/zero_alloc_equiv-efa887c9619bba0f.d: tests/zero_alloc_equiv.rs Cargo.toml

/root/repo/target/debug/deps/libzero_alloc_equiv-efa887c9619bba0f.rmeta: tests/zero_alloc_equiv.rs Cargo.toml

tests/zero_alloc_equiv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
