/root/repo/target/debug/deps/dpf_array-23e914c4715c26a8.d: crates/dpf-array/src/lib.rs crates/dpf-array/src/array.rs crates/dpf-array/src/layout.rs crates/dpf-array/src/mask.rs crates/dpf-array/src/section.rs

/root/repo/target/debug/deps/libdpf_array-23e914c4715c26a8.rlib: crates/dpf-array/src/lib.rs crates/dpf-array/src/array.rs crates/dpf-array/src/layout.rs crates/dpf-array/src/mask.rs crates/dpf-array/src/section.rs

/root/repo/target/debug/deps/libdpf_array-23e914c4715c26a8.rmeta: crates/dpf-array/src/lib.rs crates/dpf-array/src/array.rs crates/dpf-array/src/layout.rs crates/dpf-array/src/mask.rs crates/dpf-array/src/section.rs

crates/dpf-array/src/lib.rs:
crates/dpf-array/src/array.rs:
crates/dpf-array/src/layout.rs:
crates/dpf-array/src/mask.rs:
crates/dpf-array/src/section.rs:
