/root/repo/target/debug/deps/dpf_bench-fe7f6d2d9e3f21e2.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdpf_bench-fe7f6d2d9e3f21e2.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
