/root/repo/target/debug/deps/failure_injection-514db5af1585ffcb.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-514db5af1585ffcb.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
