/root/repo/target/debug/deps/dpf_bench-43b0df7a6cb82013.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdpf_bench-43b0df7a6cb82013.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
