/root/repo/target/debug/deps/dpf-cf71e8b4a17ea5be.d: src/lib.rs

/root/repo/target/debug/deps/libdpf-cf71e8b4a17ea5be.rlib: src/lib.rs

/root/repo/target/debug/deps/libdpf-cf71e8b4a17ea5be.rmeta: src/lib.rs

src/lib.rs:
