/root/repo/target/debug/deps/dpf_fft-450be5832bfea000.d: crates/dpf-fft/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdpf_fft-450be5832bfea000.rmeta: crates/dpf-fft/src/lib.rs Cargo.toml

crates/dpf-fft/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
