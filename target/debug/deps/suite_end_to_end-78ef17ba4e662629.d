/root/repo/target/debug/deps/suite_end_to_end-78ef17ba4e662629.d: tests/suite_end_to_end.rs

/root/repo/target/debug/deps/suite_end_to_end-78ef17ba4e662629: tests/suite_end_to_end.rs

tests/suite_end_to_end.rs:
