/root/repo/target/debug/deps/table_comm-bbf34729e0eb4575.d: crates/bench/benches/table_comm.rs Cargo.toml

/root/repo/target/debug/deps/libtable_comm-bbf34729e0eb4575.rmeta: crates/bench/benches/table_comm.rs Cargo.toml

crates/bench/benches/table_comm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
