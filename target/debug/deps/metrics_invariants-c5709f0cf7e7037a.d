/root/repo/target/debug/deps/metrics_invariants-c5709f0cf7e7037a.d: tests/metrics_invariants.rs

/root/repo/target/debug/deps/metrics_invariants-c5709f0cf7e7037a: tests/metrics_invariants.rs

tests/metrics_invariants.rs:
