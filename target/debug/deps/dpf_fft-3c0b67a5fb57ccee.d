/root/repo/target/debug/deps/dpf_fft-3c0b67a5fb57ccee.d: crates/dpf-fft/src/lib.rs

/root/repo/target/debug/deps/libdpf_fft-3c0b67a5fb57ccee.rlib: crates/dpf-fft/src/lib.rs

/root/repo/target/debug/deps/libdpf_fft-3c0b67a5fb57ccee.rmeta: crates/dpf-fft/src/lib.rs

crates/dpf-fft/src/lib.rs:
