/root/repo/target/debug/deps/comm_patterns-b44a5e4a6d735d09.d: tests/comm_patterns.rs

/root/repo/target/debug/deps/comm_patterns-b44a5e4a6d735d09: tests/comm_patterns.rs

tests/comm_patterns.rs:
