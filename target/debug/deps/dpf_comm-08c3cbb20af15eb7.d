/root/repo/target/debug/deps/dpf_comm-08c3cbb20af15eb7.d: crates/dpf-comm/src/lib.rs crates/dpf-comm/src/gather.rs crates/dpf-comm/src/reduce.rs crates/dpf-comm/src/scan.rs crates/dpf-comm/src/shift.rs crates/dpf-comm/src/sort.rs crates/dpf-comm/src/spread.rs crates/dpf-comm/src/stencil.rs crates/dpf-comm/src/transpose.rs Cargo.toml

/root/repo/target/debug/deps/libdpf_comm-08c3cbb20af15eb7.rmeta: crates/dpf-comm/src/lib.rs crates/dpf-comm/src/gather.rs crates/dpf-comm/src/reduce.rs crates/dpf-comm/src/scan.rs crates/dpf-comm/src/shift.rs crates/dpf-comm/src/sort.rs crates/dpf-comm/src/spread.rs crates/dpf-comm/src/stencil.rs crates/dpf-comm/src/transpose.rs Cargo.toml

crates/dpf-comm/src/lib.rs:
crates/dpf-comm/src/gather.rs:
crates/dpf-comm/src/reduce.rs:
crates/dpf-comm/src/scan.rs:
crates/dpf-comm/src/shift.rs:
crates/dpf-comm/src/sort.rs:
crates/dpf-comm/src/spread.rs:
crates/dpf-comm/src/stencil.rs:
crates/dpf-comm/src/transpose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
