/root/repo/target/debug/deps/failure_injection-bf415c35721d6dc1.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-bf415c35721d6dc1: tests/failure_injection.rs

tests/failure_injection.rs:
