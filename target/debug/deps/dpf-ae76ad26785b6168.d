/root/repo/target/debug/deps/dpf-ae76ad26785b6168.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdpf-ae76ad26785b6168.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
