/root/repo/target/debug/deps/metrics_invariants-023bed9cd624cbaf.d: tests/metrics_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics_invariants-023bed9cd624cbaf.rmeta: tests/metrics_invariants.rs Cargo.toml

tests/metrics_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
