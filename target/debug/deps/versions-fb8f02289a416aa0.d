/root/repo/target/debug/deps/versions-fb8f02289a416aa0.d: crates/bench/benches/versions.rs Cargo.toml

/root/repo/target/debug/deps/libversions-fb8f02289a416aa0.rmeta: crates/bench/benches/versions.rs Cargo.toml

crates/bench/benches/versions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
