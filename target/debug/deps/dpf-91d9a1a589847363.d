/root/repo/target/debug/deps/dpf-91d9a1a589847363.d: crates/dpf-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdpf-91d9a1a589847363.rmeta: crates/dpf-cli/src/main.rs Cargo.toml

crates/dpf-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
