/root/repo/target/debug/deps/dpf_core-adfcfd7255e9bb10.d: crates/dpf-core/src/lib.rs crates/dpf-core/src/complex.rs crates/dpf-core/src/cost.rs crates/dpf-core/src/ctx.rs crates/dpf-core/src/dtype.rs crates/dpf-core/src/flops.rs crates/dpf-core/src/instr.rs crates/dpf-core/src/machine.rs crates/dpf-core/src/numeric.rs crates/dpf-core/src/pool.rs crates/dpf-core/src/report.rs crates/dpf-core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libdpf_core-adfcfd7255e9bb10.rmeta: crates/dpf-core/src/lib.rs crates/dpf-core/src/complex.rs crates/dpf-core/src/cost.rs crates/dpf-core/src/ctx.rs crates/dpf-core/src/dtype.rs crates/dpf-core/src/flops.rs crates/dpf-core/src/instr.rs crates/dpf-core/src/machine.rs crates/dpf-core/src/numeric.rs crates/dpf-core/src/pool.rs crates/dpf-core/src/report.rs crates/dpf-core/src/verify.rs Cargo.toml

crates/dpf-core/src/lib.rs:
crates/dpf-core/src/complex.rs:
crates/dpf-core/src/cost.rs:
crates/dpf-core/src/ctx.rs:
crates/dpf-core/src/dtype.rs:
crates/dpf-core/src/flops.rs:
crates/dpf-core/src/instr.rs:
crates/dpf-core/src/machine.rs:
crates/dpf-core/src/numeric.rs:
crates/dpf-core/src/pool.rs:
crates/dpf-core/src/report.rs:
crates/dpf-core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
