/root/repo/target/debug/deps/suite_end_to_end-5eb0933c889f714e.d: tests/suite_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libsuite_end_to_end-5eb0933c889f714e.rmeta: tests/suite_end_to_end.rs Cargo.toml

tests/suite_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
