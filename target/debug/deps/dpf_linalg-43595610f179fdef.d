/root/repo/target/debug/deps/dpf_linalg-43595610f179fdef.d: crates/dpf-linalg/src/lib.rs crates/dpf-linalg/src/conj_grad.rs crates/dpf-linalg/src/fft_bench.rs crates/dpf-linalg/src/gauss_jordan.rs crates/dpf-linalg/src/jacobi.rs crates/dpf-linalg/src/lu.rs crates/dpf-linalg/src/matvec.rs crates/dpf-linalg/src/pcr.rs crates/dpf-linalg/src/qr.rs crates/dpf-linalg/src/reference.rs

/root/repo/target/debug/deps/libdpf_linalg-43595610f179fdef.rlib: crates/dpf-linalg/src/lib.rs crates/dpf-linalg/src/conj_grad.rs crates/dpf-linalg/src/fft_bench.rs crates/dpf-linalg/src/gauss_jordan.rs crates/dpf-linalg/src/jacobi.rs crates/dpf-linalg/src/lu.rs crates/dpf-linalg/src/matvec.rs crates/dpf-linalg/src/pcr.rs crates/dpf-linalg/src/qr.rs crates/dpf-linalg/src/reference.rs

/root/repo/target/debug/deps/libdpf_linalg-43595610f179fdef.rmeta: crates/dpf-linalg/src/lib.rs crates/dpf-linalg/src/conj_grad.rs crates/dpf-linalg/src/fft_bench.rs crates/dpf-linalg/src/gauss_jordan.rs crates/dpf-linalg/src/jacobi.rs crates/dpf-linalg/src/lu.rs crates/dpf-linalg/src/matvec.rs crates/dpf-linalg/src/pcr.rs crates/dpf-linalg/src/qr.rs crates/dpf-linalg/src/reference.rs

crates/dpf-linalg/src/lib.rs:
crates/dpf-linalg/src/conj_grad.rs:
crates/dpf-linalg/src/fft_bench.rs:
crates/dpf-linalg/src/gauss_jordan.rs:
crates/dpf-linalg/src/jacobi.rs:
crates/dpf-linalg/src/lu.rs:
crates/dpf-linalg/src/matvec.rs:
crates/dpf-linalg/src/pcr.rs:
crates/dpf-linalg/src/qr.rs:
crates/dpf-linalg/src/reference.rs:
