/root/repo/target/debug/deps/dpf-88feddbdcd82debe.d: src/lib.rs

/root/repo/target/debug/deps/dpf-88feddbdcd82debe: src/lib.rs

src/lib.rs:
