/root/repo/target/debug/deps/ablations-9b1a9daddd103eb0.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-9b1a9daddd103eb0.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
