/root/repo/target/debug/deps/dpf-acff30a08f3054d5.d: crates/dpf-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdpf-acff30a08f3054d5.rmeta: crates/dpf-cli/src/main.rs Cargo.toml

crates/dpf-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
