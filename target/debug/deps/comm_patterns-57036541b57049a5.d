/root/repo/target/debug/deps/comm_patterns-57036541b57049a5.d: tests/comm_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libcomm_patterns-57036541b57049a5.rmeta: tests/comm_patterns.rs Cargo.toml

tests/comm_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
