/root/repo/target/debug/deps/table4_linalg-e463ad4e819bbbf9.d: crates/bench/benches/table4_linalg.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_linalg-e463ad4e819bbbf9.rmeta: crates/bench/benches/table4_linalg.rs Cargo.toml

crates/bench/benches/table4_linalg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
