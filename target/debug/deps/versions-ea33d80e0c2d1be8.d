/root/repo/target/debug/deps/versions-ea33d80e0c2d1be8.d: tests/versions.rs

/root/repo/target/debug/deps/versions-ea33d80e0c2d1be8: tests/versions.rs

tests/versions.rs:
