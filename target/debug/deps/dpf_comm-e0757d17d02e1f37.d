/root/repo/target/debug/deps/dpf_comm-e0757d17d02e1f37.d: crates/dpf-comm/src/lib.rs crates/dpf-comm/src/gather.rs crates/dpf-comm/src/reduce.rs crates/dpf-comm/src/scan.rs crates/dpf-comm/src/shift.rs crates/dpf-comm/src/sort.rs crates/dpf-comm/src/spread.rs crates/dpf-comm/src/stencil.rs crates/dpf-comm/src/transpose.rs

/root/repo/target/debug/deps/libdpf_comm-e0757d17d02e1f37.rlib: crates/dpf-comm/src/lib.rs crates/dpf-comm/src/gather.rs crates/dpf-comm/src/reduce.rs crates/dpf-comm/src/scan.rs crates/dpf-comm/src/shift.rs crates/dpf-comm/src/sort.rs crates/dpf-comm/src/spread.rs crates/dpf-comm/src/stencil.rs crates/dpf-comm/src/transpose.rs

/root/repo/target/debug/deps/libdpf_comm-e0757d17d02e1f37.rmeta: crates/dpf-comm/src/lib.rs crates/dpf-comm/src/gather.rs crates/dpf-comm/src/reduce.rs crates/dpf-comm/src/scan.rs crates/dpf-comm/src/shift.rs crates/dpf-comm/src/sort.rs crates/dpf-comm/src/spread.rs crates/dpf-comm/src/stencil.rs crates/dpf-comm/src/transpose.rs

crates/dpf-comm/src/lib.rs:
crates/dpf-comm/src/gather.rs:
crates/dpf-comm/src/reduce.rs:
crates/dpf-comm/src/scan.rs:
crates/dpf-comm/src/shift.rs:
crates/dpf-comm/src/sort.rs:
crates/dpf-comm/src/spread.rs:
crates/dpf-comm/src/stencil.rs:
crates/dpf-comm/src/transpose.rs:
